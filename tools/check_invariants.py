#!/usr/bin/env python3
"""Repo-invariant linter for the MOPE codebase.

Machine-enforces the correctness conventions that code review used to carry:

  R1 ad-hoc-randomness   rand()/srand()/std::random_device/std::mt19937 are
                         banned outside src/common/random.* — all simulation
                         randomness must flow through mope::Rng (seedable,
                         reproducible) and all crypto randomness through
                         crypto::CtrDrbg. Applies to src/, tests/, bench/,
                         examples/.
  R2 wall-clock          time(), clock(), gettimeofday, clock_gettime and
                         std::chrono clocks are banned in src/ — experiment
                         code must be bit-deterministic from its seed.
                         (bench/ measures wall time on purpose and is exempt.)
  R3 ignored-result      Regex backstop for discarded Status/Result values
                         the compiler can't see (e.g. behind #ifdef): a
                         bare-statement call to a known Status/Result API is
                         a violation anywhere in src/.
  R4 void-cast-crypto    `(void)` casts of call expressions and
                         MOPE_IGNORE_STATUS are banned in src/crypto/ and
                         src/ope/ — crypto paths propagate errors, never
                         swallow them.
  R5 assert-crypto       assert() is banned in src/crypto/: it vanishes in
                         NDEBUG builds, silently removing the check from the
                         exact builds that ship. Use MOPE_CHECK (always on)
                         or return a Status.
  R6 raw-socket          socket/send/recv syscalls (and ::-qualified
                         connect/bind/listen/accept/poll/shutdown) are banned
                         outside src/net/ — all networking goes through
                         net::Transport so deadlines, retries and fault
                         injection stay in one audited layer. Applies to
                         src/, tests/, bench/, examples/.
  R7 clock-injection     std::chrono::steady_clock / system_clock /
                         high_resolution_clock are banned everywhere (src/,
                         tests/, bench/, examples/) except src/obs/clock.*,
                         the one sanctioned wall-clock shim. Everything that
                         measures time takes an obs::Clock so tests can
                         substitute a ManualClock and trace/latency output
                         stays deterministic under test.
  R8 auditor-ciphertext-only
                         src/obs/leakage.* must not include any src/ope/,
                         src/proxy/ or src/sql/ header. The live leakage
                         auditor models what the *untrusted server* can
                         compute from the ciphertext stream; an include of
                         key-holding or plaintext-holding layers would let
                         trusted-side data leak into that model and silently
                         overstate the monitor's power. The trust boundary
                         is enforced mechanically, not by review.
  R9 raw-mutex           Raw standard mutex/lock/condvar types are banned
                         outside src/common/: locking goes through the
                         annotated mope::Mutex / mope::MutexLock wrappers
                         (common/thread_annotations.h) so Clang's Thread
                         Safety Analysis sees every acquisition. Applies to
                         src/, tests/, bench/, examples/.
     mutex-unannotated   (companion file-level check) A src/ file outside
                         src/common/ that declares a mope::Mutex or
                         mope::SharedMutex member must annotate at least one
                         member with MOPE_GUARDED_BY / MOPE_PT_GUARDED_BY —
                         a capability nothing is guarded by protects
                         nothing, and the analysis silently passes the file.
  R10 raw-file-io        fopen/open/creat and the std::fstream family are
                         banned in src/ outside src/storage/ — every file
                         touch goes through storage::Env (env.h) so fsync
                         discipline, atomic replace and fault injection live
                         in one audited layer. Catalog snapshots, CSV
                         import/export and the storage engine all ride the
                         same seam; tests swap in InMemEnv/FaultyEnv.
  R11 raw-output         printf/fprintf/puts/fputs and std::cout/cerr/clog
                         are banned in src/ and tools/ outside src/obs/log.*
                         (the logger's own stderr sink) — operational
                         messages go through the structured logger so they
                         are parseable, leveled, rate-limited and serialized
                         under one sink lock. Interactive output (usage
                         text, --metrics dumps, abort-path diagnostics that
                         cannot trust the logger) opts out per line with
                         `// invariant-ok: R11 <reason>`.
  R12 operator-hook-override
                         (file-level check) In a file that defines an
                         engine::Operator subclass, overriding the public
                         `Open()` / `Next()` entry points is banned:
                         subclasses implement the protected `OpenImpl()` /
                         `NextImpl()` hooks instead. The public methods are
                         the *instrumented* non-virtual dispatch points —
                         an operator that overrides them silently drops out
                         of EXPLAIN ANALYZE (no OpStats, no per-type
                         histograms), and profiling-off still pays whatever
                         the override does. Applies to src/, tests/, bench/,
                         examples/.
  R13 fatal-handler-unsafe
                         (file-level check) A handler registered for a fatal
                         signal (SIGSEGV/SIGABRT/SIGBUS/SIGILL/SIGFPE via
                         std::signal or a sigaction assignment) may only call
                         async-signal-safe code. Inside the handler body the
                         linter bans the structured logger (MOPE_LOG takes
                         the sink lock — self-deadlock if the signal landed
                         mid-log), stdio, heap allocation (new/malloc and
                         allocating std:: containers) and mutex acquisition.
                         The sanctioned crash path is the flight recorder's
                         FatalSignalDump() — pre-opened fd, lock-free rings,
                         hand-rolled formatting — plus std::signal/std::raise
                         to re-deliver with default disposition. Applies to
                         every linted tree.

A line may opt out with a trailing `// invariant-ok: <reason>` comment; the
reason is mandatory and greppable. Exit status: 0 clean, 1 violations,
2 usage error.

Usage:  python3 tools/check_invariants.py [--root DIR]
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

SOURCE_SUFFIXES = {".h", ".hpp", ".cc", ".cpp", ".cxx"}
ESCAPE_RE = re.compile(r"//\s*invariant-ok:\s*\S")

# Status/Result-returning APIs covered by the R3 regex backstop. A line that
# *starts* with a call to one of these (no assignment, no return, no macro
# wrapper, not a continuation of an enclosing call) is discarding the error
# channel. Names with void-returning homonyms elsewhere in the tree (e.g.
# BPlusTree::Insert) are deliberately absent — the compiler's [[nodiscard]]
# covers those; this backstop exists for code the compiler may not see
# (#ifdef'd configs, generated amalgamations).
NODISCARD_API = (
    "Encrypt|Decrypt|EncryptRange|DecryptFloorCeil|"
    "CreateIndex|CreateTable|DropTable|SaveCatalog|LoadCatalog|"
    "SerializeCatalog|DeserializeCatalog|HgdSample|RotateKey"
)


class Rule:
    def __init__(self, rule_id, pattern, message, includes, excludes=(),
                 statement_level_only=False, match_raw=False):
        self.rule_id = rule_id
        self.pattern = re.compile(pattern)
        self.message = message
        self.includes = includes  # path-prefix allowlist (relative, POSIX)
        self.excludes = excludes  # path-prefix denylist
        # Only fire when the line starts at paren depth 0, i.e. is not a
        # continuation of an enclosing multi-line call such as
        # MOPE_ASSIGN_OR_RETURN(x,\n    scheme.Encrypt(m));
        self.statement_level_only = statement_level_only
        # Match against the raw line instead of the string-stripped one —
        # needed by rules that inspect #include "..." paths, which live
        # inside string literals.
        self.match_raw = match_raw

    def applies_to(self, rel: str) -> bool:
        if not any(rel.startswith(p) for p in self.includes):
            return False
        return not any(rel.startswith(p) for p in self.excludes)


RULES = [
    Rule(
        "ad-hoc-randomness",
        r"std::mt19937|std::random_device|\b[sd]?rand\s*\(|\bsrandom\s*\(",
        "ad-hoc RNG: use mope::Rng (simulation) or crypto::CtrDrbg (crypto), "
        "both seedable via BitSource",
        includes=("src/", "tests/", "bench/", "examples/"),
        excludes=("src/common/random.",),
    ),
    Rule(
        "wall-clock",
        r"(?<![\w])time\s*\(|\bclock\s*\(\s*\)|\bgettimeofday\b|"
        r"\bclock_gettime\b|std::chrono::(system|steady|high_resolution)_clock",
        "wall-clock in deterministic experiment code: derive all variation "
        "from the experiment seed",
        includes=("src/",),
        excludes=("src/obs/clock.",),
    ),
    # The C-level primitives above are R2's concern; R7 is specifically the
    # std::chrono clock types, in *all* trees: bench and tests time things
    # legitimately, but must do it through an injected obs::Clock (steady in
    # production, ManualClock in tests) or results aren't reproducible.
    Rule(
        "clock-injection",
        r"std::chrono::(system|steady|high_resolution)_clock",
        "direct std::chrono clock: take an obs::Clock (obs/clock.h) so time "
        "is injectable and tests stay deterministic",
        includes=("src/", "tests/", "bench/", "examples/"),
        excludes=("src/obs/clock.",),
    ),
    Rule(
        "ignored-result",
        r"^\s*(?:[A-Za-z_]\w*(?:\.|->))*(?:" + NODISCARD_API +
        r")\s*\([^;]*\)\s*;\s*(?://(?!\s*invariant-ok).*)?$",
        "bare-statement call to a Status/Result API discards the error: "
        "propagate it or branch on it",
        includes=("src/",),
        statement_level_only=True,
    ),
    Rule(
        "void-cast-crypto",
        r"\(\s*void\s*\)\s*[A-Za-z_(]|MOPE_IGNORE_STATUS",
        "error swallowed on a crypto path: src/crypto/ and src/ope/ must "
        "propagate Status/Result, not (void)-cast or MOPE_IGNORE_STATUS it",
        includes=("src/crypto/", "src/ope/"),
    ),
    Rule(
        "assert-crypto",
        r"(?<![\w])assert\s*\(",
        "assert() disappears under NDEBUG; use MOPE_CHECK or return Status",
        includes=("src/crypto/",),
    ),
    # Unambiguous socket syscalls are matched by bare name; the generic-verb
    # ones (connect, bind, accept, poll, ...) only when ::-qualified, so an
    # `accept(visitor)` method or std::bind stays legal outside src/net/.
    Rule(
        "raw-socket",
        r"(?<![\w:])(?:socket|send|recv|sendto|recvfrom|getaddrinfo)\s*\(|"
        r"(?<![\w:])::(?:connect|bind|listen|accept|poll|shutdown)\s*\(",
        "raw socket call outside src/net/: go through net::Transport / "
        "net::TcpListener so deadlines, retries and fault injection apply",
        includes=("src/", "tests/", "bench/", "examples/"),
        excludes=("src/net/",),
    ),
    # The include pattern matches both "ope/..." (the repo's canonical
    # spelling, -I src) and a "src/ope/..." or "../ope/..." relative path.
    Rule(
        "raw-mutex",
        r"std::(?:recursive_|timed_|shared_timed_|shared_)?mutex\b|"
        r"std::(?:lock_guard|unique_lock|scoped_lock|shared_lock)\b|"
        r"std::condition_variable",
        "raw standard mutex/lock type: use mope::Mutex / mope::MutexLock / "
        "mope::CondVar (common/thread_annotations.h) so the thread safety "
        "analysis sees the acquisition",
        includes=("src/", "tests/", "bench/", "examples/"),
        excludes=("src/common/",),
    ),
    # Bare lowercase open()/creat() are matched only when not preceded by an
    # identifier char, ':', '.' or '>', so Wal::Open, pool->Open and
    # "reopen" stay legal; the fstream family and f*open are matched by name.
    Rule(
        "raw-file-io",
        r"std::(?:i|o)?fstream\b|std::filebuf\b|"
        r"(?<![\w:])(?:fopen|freopen|tmpfile|mkstemp)\s*\(|"
        r"(?<![\w:.>])(?:open|openat|creat)\s*\(",
        "raw file I/O outside src/storage/: go through storage::Env "
        "(storage/env.h) so fsync discipline, atomic replace and fault "
        "injection stay in one audited layer",
        includes=("src/",),
        excludes=("src/storage/",),
    ),
    # Operational messages must be structured (one parseable line, level,
    # subsystem, rate limit, single sink lock) — a stray fprintf interleaves
    # mid-line with the log under concurrency and is invisible to scrapers.
    # Interactive surfaces (usage text, --metrics dumps, abort diagnostics
    # that cannot trust the logger) opt out per-line with invariant-ok.
    Rule(
        "raw-output",
        r"(?<![\w.>])(?:v?f?printf|puts|fputs|fputc|putchar)\s*\(|"
        r"std::c(?:out|err|log)\b",
        "raw stdio/stream output: operational messages go through the "
        "structured logger (obs/log.h, MOPE_LOG); interactive usage/help "
        "text may opt out with invariant-ok",
        includes=("src/", "tools/"),
        excludes=("src/obs/log.",),
    ),
    Rule(
        "auditor-ciphertext-only",
        r'#\s*include\s*["<](?:\.\./)*(?:src/)?(?:ope|proxy|sql)/',
        "the leakage auditor is ciphertext-only: src/obs/leakage.* must not "
        "see key-holding (ope/, proxy/) or plaintext-holding (sql/) layers — "
        "it models what the untrusted server can compute",
        includes=("src/obs/leakage.",),
        match_raw=True,
    ),
]


def strip_strings(line: str) -> str:
    """Blanks out string/char literal contents so rules don't match inside
    them (e.g. an error message mentioning \"time(\")."""
    out = []
    quote = None
    i = 0
    while i < len(line):
        ch = line[i]
        if quote:
            if ch == "\\":
                i += 2
                out.append("..")
                continue
            if ch == quote:
                quote = None
                out.append(ch)
            else:
                out.append(".")
        else:
            if ch in "\"'":
                quote = ch
            out.append(ch)
        i += 1
    return "".join(out)


# File-level companion to R9: a wrapper-mutex *member declaration* (as
# opposed to a MutexLock/CondVar local) obliges the file to annotate what it
# guards. MutexLock/WriterMutexLock/... don't match: the name must end right
# after "Mutex" followed by whitespace and an identifier.
MUTEX_DECL_RE = re.compile(r"\b(?:mope::)?(?:Shared)?Mutex\s+[A-Za-z_]\w*\s*[;{(=]")
GUARD_ANNOTATION_RE = re.compile(r"\bMOPE_(?:PT_)?GUARDED_BY\s*\(")


def check_mutex_annotations(rel: str, lines: list[tuple[int, str, str]]
                            ) -> list[str]:
    """lines: (lineno, raw, comment-and-string-stripped code)."""
    if not rel.startswith("src/") or rel.startswith("src/common/"):
        return []
    decls = [(lineno, raw) for lineno, raw, code in lines
             if MUTEX_DECL_RE.search(code) and not ESCAPE_RE.search(raw)]
    if not decls:
        return []
    if any(GUARD_ANNOTATION_RE.search(code) for _, _, code in lines):
        return []
    lineno, raw = decls[0]
    return [
        f"{rel}:{lineno}: [mutex-unannotated] file declares a mope::Mutex "
        "but annotates nothing with MOPE_GUARDED_BY / MOPE_PT_GUARDED_BY — "
        "state the capability's protectees or the analysis checks nothing\n"
        f"    {raw.strip()}"
    ]


# R12: a class inheriting (possibly indirectly qualified) engine::Operator.
OPERATOR_SUBCLASS_RE = re.compile(
    r"\bclass\s+\w+(?:\s+final)?\s*:\s*public\s+(?:\w+::)*Operator\b")
# An override of the public hook names. `OpenImpl(` / `NextImpl(` do not
# match: the word boundary requires `(` right after Open/Next.
PUBLIC_HOOK_OVERRIDE_RE = re.compile(
    r"\b(?:Open|Next)\s*\([^)]*\)\s*(?:const\s*)?override\b")


def check_operator_hooks(rel: str, lines: list[tuple[int, str, str]]
                         ) -> list[str]:
    """R12: Operator subclasses must implement OpenImpl/NextImpl, never
    override the public Open/Next — those are the non-virtual instrumented
    dispatch points that keep EXPLAIN ANALYZE's actuals complete.

    lines: (lineno, raw, comment-and-string-stripped code)."""
    if not any(rel.startswith(p)
               for p in ("src/", "tests/", "bench/", "examples/")):
        return []
    if not any(OPERATOR_SUBCLASS_RE.search(code) for _, _, code in lines):
        return []
    violations = []
    for lineno, raw, code in lines:
        if ESCAPE_RE.search(raw):
            continue
        if PUBLIC_HOOK_OVERRIDE_RE.search(code):
            violations.append(
                f"{rel}:{lineno}: [operator-hook-override] Operator "
                "subclasses must not override the public Open()/Next() — "
                "implement the protected OpenImpl()/NextImpl() hooks so the "
                "instrumented base dispatch (OpStats, EXPLAIN ANALYZE) "
                "stays on the call path\n"
                f"    {raw.strip()}"
            )
    return violations


# R13: handlers registered for fatal signals. The direct std::signal form
# names both the signal and the handler; the sigaction form only names the
# handler, so it counts as fatal when the file mentions a fatal signal.
FATAL_SIGNAL_RE = re.compile(r"\bSIG(?:SEGV|ABRT|BUS|ILL|FPE)\b")
SIGNAL_REGISTER_RE = re.compile(
    r"\b(?:std::)?signal\s*\(\s*SIG(?:SEGV|ABRT|BUS|ILL|FPE)\s*,\s*"
    r"&?\s*([A-Za-z_]\w*)\s*\)")
SIGACTION_HANDLER_RE = re.compile(
    r"(?:\.|->)sa_(?:sigaction|handler)\s*=\s*&?\s*([A-Za-z_]\w*)")
# Async-signal-UNSAFE constructs: the logger (sink lock), stdio (flockfile /
# malloc inside), heap allocation, allocating containers, and mutexes. The
# flight recorder's FatalSignalDump / std::signal / std::raise are the
# sanctioned vocabulary and none of them match.
UNSAFE_IN_FATAL_HANDLER_RE = re.compile(
    r"\bMOPE_LOG\b|\bMOPE_CHECK\b|"
    r"(?<![\w.>])v?(?:f|s|sn)?printf\s*\(|"
    r"(?<![\w.>])(?:puts|fputs|fputc|putchar|fflush|fwrite)\s*\(|"
    r"std::c(?:out|err|log)\b|"
    r"\b(?:malloc|calloc|realloc|free)\s*\(|"
    r"(?<!\w)new\s+[A-Za-z_:]|"
    r"std::(?:string|to_string|vector|map|unordered_map|ostringstream)\b|"
    r"\b(?:Writer)?MutexLock\b|\block_guard\b|\bunique_lock\b")


def check_fatal_handlers(rel: str, lines: list[tuple[int, str, str]]
                         ) -> list[str]:
    """R13: fatal-signal handlers may only call the async-signal-safe
    flight-recorder dump API (obs::FlightRecorder::FatalSignalDump) and
    re-raise machinery — never the logger, stdio, the heap, or a mutex.

    lines: (lineno, raw, comment-and-string-stripped code)."""
    handlers = set()
    file_mentions_fatal = any(FATAL_SIGNAL_RE.search(code)
                              for _, _, code in lines)
    for _, _, code in lines:
        for m in SIGNAL_REGISTER_RE.finditer(code):
            handlers.add(m.group(1))
        if file_mentions_fatal:
            for m in SIGACTION_HANDLER_RE.finditer(code):
                handlers.add(m.group(1))
    handlers -= {"SIG_DFL", "SIG_IGN"}
    if not handlers:
        return []

    violations = []
    for name in sorted(handlers):
        # The handler's definition, if it lives in this file: brace-match the
        # body of `... Name(int ...) {`.
        definition_re = re.compile(
            r"\b" + re.escape(name) + r"\s*\(\s*(?:int|const\s+int)\b")
        in_body = False
        depth = 0
        seen_open = False
        for lineno, raw, code in lines:
            if not in_body:
                if definition_re.search(code) and ";" not in code.split(
                        name, 1)[1].split("{", 1)[0]:
                    in_body = True
                    depth = 0
                    seen_open = False
                else:
                    continue
            depth += code.count("{") - code.count("}")
            if code.count("{") > 0:
                seen_open = True
            if seen_open and not ESCAPE_RE.search(raw):
                m = UNSAFE_IN_FATAL_HANDLER_RE.search(code)
                if m:
                    violations.append(
                        f"{rel}:{lineno}: [fatal-handler-unsafe] "
                        f"`{m.group(0).strip()}` inside fatal-signal handler "
                        f"{name}(): handlers run with arbitrary locks held "
                        "and may only call async-signal-safe code — use "
                        "obs::FlightRecorder::FatalSignalDump() (pre-opened "
                        "fd, lock-free rings) and std::signal/std::raise to "
                        "re-deliver\n"
                        f"    {raw.strip()}"
                    )
            if seen_open and depth <= 0:
                in_body = False
    return violations


def lint_file(root: Path, rel: str) -> list[str]:
    violations = []
    rules = [r for r in RULES if r.applies_to(rel)]
    try:
        text = (root / rel).read_text(encoding="utf-8", errors="replace")
    except OSError as err:
        return [f"{rel}: unreadable: {err}"]
    depth = 0  # running ( ... ) nesting depth at the start of each line
    stripped_lines = []  # (lineno, raw, comment-and-string-stripped code)
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = strip_strings(raw)
        code = line.split("//", 1)[0]
        stripped_lines.append((lineno, raw, code))
        depth_at_start = depth
        depth = max(0, depth + code.count("(") - code.count(")"))
        if ESCAPE_RE.search(raw):
            continue
        for rule in rules:
            if rule.statement_level_only and depth_at_start > 0:
                continue
            if rule.pattern.search(raw if rule.match_raw else line):
                violations.append(
                    f"{rel}:{lineno}: [{rule.rule_id}] {rule.message}\n"
                    f"    {raw.strip()}"
                )
    violations.extend(check_mutex_annotations(rel, stripped_lines))
    violations.extend(check_operator_hooks(rel, stripped_lines))
    violations.extend(check_fatal_handlers(rel, stripped_lines))
    return violations


def collect_sources(root: Path) -> list[str]:
    rels = []
    for top in ("src", "tests", "bench", "examples", "tools"):
        base = root / top
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in SOURCE_SUFFIXES and path.is_file():
                rels.append(path.relative_to(root).as_posix())
    return rels


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        type=Path,
        default=Path(__file__).resolve().parent.parent,
        help="repository root to lint (default: this script's repo)",
    )
    args = parser.parse_args(argv)
    root = args.root.resolve()
    if not root.is_dir():
        print(f"check_invariants: no such directory: {root}", file=sys.stderr)
        return 2

    sources = collect_sources(root)
    if not sources:
        print(f"check_invariants: no sources under {root}", file=sys.stderr)
        return 2

    violations = []
    for rel in sources:
        violations.extend(lint_file(root, rel))

    if violations:
        print(f"check_invariants: {len(violations)} violation(s):\n")
        for v in violations:
            print(v)
        return 1
    print(f"check_invariants: OK ({len(sources)} files clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
