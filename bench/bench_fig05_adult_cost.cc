/// Figure 5 — Bandwidth (5a) and Requests (5b) costs for the Adult query
/// distribution with sigma = 5 and 10, under QueryU ("n/a") and QueryP with
/// periods 5 and 10.
///
/// The Adult domain (74 ages) is padded to 80 so the paper's periods divide
/// it, as QueryP requires (rho | M); the pad carries no records or queries.

#include "bench/bench_util.h"

int main() {
  mope::bench::PrintHeader("Figure 5", "Adult cost vs period");
  mope::bench::JsonReport report("fig05_adult_cost");
  mope::bench::RunPeriodSweep(mope::workload::DatasetKind::kAdult,
                              {5.0, 10.0}, /*k=*/10, {0, 5, 10},
                              /*pad_to=*/80, /*num_queries=*/2000, &report);
  report.Write();
  return 0;
}
