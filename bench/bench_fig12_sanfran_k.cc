/// Figure 12 — Bandwidth (12a) and Requests (12b) costs for the SanFran
/// query pattern across fixed lengths k, period 25.

#include "bench/bench_util.h"

int main() {
  mope::bench::PrintHeader("Figure 12", "SanFran cost vs fixed length k");
  mope::bench::JsonReport report("fig12_sanfran_k");
  mope::bench::RunLengthSweep(mope::workload::DatasetKind::kSanFran,
                              {5.0, 10.0, 25.0},
                              {5, 10, 25, 50, 100, 200, 400, 800},
                              /*period=*/25, /*pad_to=*/0,
                              /*num_queries=*/300, &report);
  report.Write();
  return 0;
}
