/// Figure 16 — "The number of fake queries executed for [each] round of 10
/// real queries in SanFran10 (16a) and Q14 of TPC-H (16b). The
/// AdaptiveQueryU converges really fast, especially for Q14."
///
/// AdaptiveQueryU learns the query distribution online from a buffer.
/// Early rounds are dominated by fakes (after one observation the estimate
/// is a point mass, so alpha = 1/M); as the buffer fills, the per-round fake
/// count converges to the non-adaptive QueryU rate E[fakes] = µ_Q·M - 1.

#include <cstdio>

#include "bench/tpch_util.h"
#include "workload/datasets.h"
#include "workload/generator.h"

namespace mope {
namespace {

void RunSeries(const char* name, uint64_t domain, uint64_t k,
               const std::function<query::RangeQuery(mope::BitSource*)>& sample,
               int rounds, int print_every, double reference_fakes,
               Rng* rng, bench::JsonReport* report) {
  auto algorithm = query::AdaptiveQueryAlgorithm::Create({domain, k}, 0);
  MOPE_CHECK(algorithm.ok(), "adaptive");

  std::printf("\n%s (M = %llu, k = %llu); QueryU steady state ~%.0f fakes "
              "per 10 queries:\n",
              name, static_cast<unsigned long long>(domain),
              static_cast<unsigned long long>(k), 10.0 * reference_fakes);
  bench::TablePrinter table({"round", "fakes/10 real", "buffer size"});
  for (int round = 0; round < rounds; ++round) {
    uint64_t fakes = 0;
    for (int i = 0; i < 10; ++i) {
      auto batch = (*algorithm)->Process(sample(rng), rng);
      MOPE_CHECK(batch.ok(), "process");
      for (const auto& fq : *batch) {
        if (fq.kind == query::QueryKind::kFake) ++fakes;
      }
    }
    if (round % print_every == 0 || round == rounds - 1) {
      table.Row({std::to_string(round), std::to_string(fakes),
                 std::to_string((*algorithm)->buffer().size())});
      report->BeginRow()
          .Field("series", name)
          .Field("round", round)
          .Field("fakes_per_10_real", fakes)
          .Field("buffer_size",
                 static_cast<uint64_t>((*algorithm)->buffer().size()))
          .Field("steady_state_fakes_per_10", 10.0 * reference_fakes);
    }
  }
}

void Run(bench::JsonReport* report) {
  Rng rng(0xF1616);

  // 16a: SanFran with sigma = 10.
  const dist::Distribution sanfran =
      workload::MakeDataset(workload::DatasetKind::kSanFran);
  auto starts =
      workload::BuildStartDistribution(sanfran, {10.0}, 10, 20000, &rng);
  auto plan = dist::MakeUniformPlan(starts);
  MOPE_CHECK(plan.ok(), "plan");
  RunSeries(
      "SanFran10", sanfran.size(), 10,
      [&sanfran](mope::BitSource* r) {
        return workload::GenerateQuery(sanfran, {10.0}, r);
      },
      100, 10, plan->expected_fakes_per_real(), &rng, report);

  // 16b: TPC-H Q14 (month ranges over ~84 distinct start months).
  auto q14 = [](mope::BitSource* r) { return workload::SampleQ14(r).shipdate; };
  const dist::Distribution q14_starts =
      bench::TemplateStarts(q14, 30, 20000, &rng);
  auto q14_plan = dist::MakeUniformPlan(q14_starts);
  MOPE_CHECK(q14_plan.ok(), "plan");
  RunSeries("TPC-H Q14", workload::kTpchDateDomain, 30, q14, 1000, 100,
            q14_plan->expected_fakes_per_real(), &rng, report);
}

}  // namespace
}  // namespace mope

int main() {
  mope::bench::PrintHeader("Figure 16",
                           "AdaptiveQueryU convergence (fakes per 10 reals)");
  mope::bench::JsonReport report("fig16_adaptive");
  mope::Run(&report);
  report.Write();
  return 0;
}
