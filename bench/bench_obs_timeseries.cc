/// Sampler overhead of the in-process time-series history (PR: telemetry
/// over time).
///
/// The TimeSeriesSampler's design claim is a fixed cost per sample: one
/// registry snapshot plus one ring append per series, under a hard memory
/// budget — the ring never grows once full, so steady-state sampling (the
/// mode a long-lived daemon lives in) performs no ring allocation at all,
/// only the snapshot's own.
///
/// This bench drives SampleOnce() over registries of 1k and 10k metrics in
/// two phases:
///
///   fill   — the first window_capacity samples, where rings still grow,
///   steady — past capacity, where every append evicts the oldest point.
///
/// Wall time is reported on stdout (per sample and per metric), but wall
/// clocks drift percent-level on shared CI runners, so the *gated*
/// measurement is deterministic instead: this binary overrides global
/// operator new and counts heap allocations per steady-state SampleOnce().
/// The same registry sampled again allocates exactly the same number of
/// times, so the committed baseline under bench/baselines/ holds to the
/// last allocation and the CI threshold catches any real regression — a
/// per-series leak adds ~N allocations against the snapshot's own ~N, and
/// a ring that re-grows in steady state trips the in-bench equality check
/// before the baseline even sees it.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <atomic>
#include <new>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "obs/clock.h"
#include "obs/registry.h"
#include "obs/timeseries.h"

// ---------------------------------------------------------------------------
// Deterministic allocation counting (same scheme as bench_explain): every
// heap allocation in the process bumps one relaxed counter.
// ---------------------------------------------------------------------------

namespace {
std::atomic<uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, std::align_val_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align), size)) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace mope {
namespace {

constexpr size_t kWindowCapacity = 64;
constexpr int kSteadyReps = 32;  ///< timed steady-state samples per size

/// Half counters, half gauges — the two kinds the snapshot walks without
/// expanding (histograms fan out into five series each and would make the
/// series count a function of registry internals rather than this bench).
void FillRegistry(obs::MetricsRegistry* registry, size_t metrics) {
  for (size_t i = 0; i < metrics; ++i) {
    char name[48];
    std::snprintf(name, sizeof(name), "bench.ts.%c.%06zu",
                  i % 2 == 0 ? 'c' : 'g', i);
    if (i % 2 == 0) {
      registry->GetCounter(name)->Increment(i);
    } else {
      registry->GetGauge(name)->Set(static_cast<int64_t>(i));
    }
  }
}

struct Measurement {
  double fill_us_per_sample = 0.0;
  double steady_us_per_sample = 0.0;
  uint64_t steady_allocs = 0;  ///< heap allocations per steady SampleOnce
};

Measurement MeasureAt(size_t metrics) {
  obs::MetricsRegistry registry;
  FillRegistry(&registry, metrics);
  obs::ManualClock clock(1);
  obs::TimeSeriesOptions options;
  options.window_capacity = kWindowCapacity;
  options.max_series = 2 * metrics + 16;  // the cap is not what's measured
  obs::TimeSeriesSampler sampler(&registry, options, &clock);

  Measurement m;
  // Fill phase: rings grow from empty to capacity.
  {
    bench::Stopwatch watch;
    for (size_t i = 0; i < kWindowCapacity; ++i) {
      clock.AdvanceNanos(1'000'000'000);
      sampler.SampleOnce();
    }
    m.fill_us_per_sample =
        watch.ElapsedMs() * 1000.0 / static_cast<double>(kWindowCapacity);
  }

  // Steady state: every append evicts. The allocation count per sample must
  // reproduce exactly — a ring that re-grows once full would differ between
  // passes (vector growth is geometric, not periodic) and any difference is
  // a determinism bug worth failing on.
  for (int pass = 0; pass < 2; ++pass) {
    clock.AdvanceNanos(1'000'000'000);
    const uint64_t before = g_allocs.load(std::memory_order_relaxed);
    sampler.SampleOnce();
    const uint64_t sampled =
        g_allocs.load(std::memory_order_relaxed) - before;
    MOPE_CHECK(pass == 0 || sampled == m.steady_allocs,
               "steady-state sampling allocation count must be deterministic");
    m.steady_allocs = sampled;
  }

  {
    bench::Stopwatch watch;
    for (int i = 0; i < kSteadyReps; ++i) {
      clock.AdvanceNanos(1'000'000'000);
      sampler.SampleOnce();
    }
    m.steady_us_per_sample =
        watch.ElapsedMs() * 1000.0 / static_cast<double>(kSteadyReps);
  }
  return m;
}

}  // namespace
}  // namespace mope

int main() {
  using namespace mope;  // NOLINT

  std::printf(
      "Time-series sampler overhead: SampleOnce() over N registered "
      "metrics,\nwindow capacity %zu (fill = rings growing, steady = every "
      "append evicts).\n\n",
      kWindowCapacity);

  bench::JsonReport report("obs_timeseries");
  bench::TablePrinter printer({"metrics", "fill us/sample",
                               "steady us/sample", "ns/metric",
                               "steady allocs"});
  for (const size_t metrics : {size_t{1000}, size_t{10000}}) {
    const Measurement m = MeasureAt(metrics);
    char fill[32], steady[32], per[32], allocs[32];
    std::snprintf(fill, sizeof(fill), "%.1f", m.fill_us_per_sample);
    std::snprintf(steady, sizeof(steady), "%.1f", m.steady_us_per_sample);
    std::snprintf(per, sizeof(per), "%.1f",
                  m.steady_us_per_sample * 1000.0 /
                      static_cast<double>(metrics));
    std::snprintf(allocs, sizeof(allocs), "%llu",
                  static_cast<unsigned long long>(m.steady_allocs));
    printer.Row({std::to_string(metrics), fill, steady, per, allocs});

    // Steady-state eviction must not be slower than ring growth by more
    // than noise allows: a wide-margin tripwire against an eviction path
    // that copies or reallocates instead of overwriting in place.
    MOPE_CHECK(m.steady_us_per_sample < 8.0 * m.fill_us_per_sample + 50.0,
               "steady-state sampling crept far past the fill phase: "
               "eviction is doing more than overwriting one slot");
    // Only the deterministic allocation count is gated; wall times travel
    // as stdout.
    report.BeginRow()
        .Field("series", static_cast<uint64_t>(metrics))
        .Field("metric", "allocs_per_steady_sample")
        .Field("value", static_cast<double>(m.steady_allocs));
  }

  std::printf(
      "\nsteady allocs is exact and reproducible: the snapshot's own "
      "allocations\nare the whole per-sample cost — rings at capacity "
      "allocate nothing. The\ncommitted baseline holds to the last "
      "allocation; the CI gate trips on any\nper-sample leak.\n");
  return report.Write() ? 0 : 1;
}
