/// Figure 11 — Bandwidth (11a) and Requests (11b) costs for the Covertype
/// query pattern across fixed lengths k, period 25.

#include "bench/bench_util.h"

int main() {
  mope::bench::PrintHeader("Figure 11", "Covertype cost vs fixed length k");
  mope::bench::JsonReport report("fig11_covertype_k");
  mope::bench::RunLengthSweep(mope::workload::DatasetKind::kCovertype,
                              {5.0, 10.0}, {5, 10, 25, 50, 100, 200, 400},
                              /*period=*/25, /*pad_to=*/0,
                              /*num_queries=*/600, &report);
  report.Write();
  return 0;
}
