/// Figure 15 — "Combining multiple ranges into a single query results in
/// dramatic speedups of the QueryU algorithm."
///
/// The multiple-query optimization of Section 5.1: the proxy ORs many
/// (real + fake) ranges into one disjunctive server request, which the
/// engine answers with a single coalesced B+-tree sweep. The bench runs the
/// Q6 and Q14 templates under QueryU with batch sizes n/a(=1), 100, 250,
/// 500, 750 and 1000 and reports wall-clock normalized to 1000 queries.

#include <cstdio>

#include "bench/tpch_util.h"

namespace mope {
namespace {

void Run(bench::JsonReport* report) {
  workload::TpchConfig config;
  config.scale_factor = bench::kBenchScaleFactor;
  const workload::TpchData data = workload::GenerateTpch(config);
  std::printf("\nscale factor %.3f: %zu LINEITEM rows; QueryU (period n/a)\n",
              config.scale_factor, data.lineitem.size());

  struct Template {
    const char* name;
    uint64_t k;
    uint64_t queries;
    std::function<query::RangeQuery(mope::BitSource*)> sample;
  };
  const Template templates[] = {
      {"QUERY6", 365, 25,
       [](mope::BitSource* rng) { return workload::SampleQ6(rng).shipdate; }},
      {"QUERY14", 30, 100,
       [](mope::BitSource* rng) { return workload::SampleQ14(rng).shipdate; }},
  };
  const size_t batch_sizes[] = {1, 100, 250, 500, 750, 1000};

  Rng rng(0xF1615);
  // The embedded server answers a request with a function call; the paper's
  // server is across a network behind a SQL front end. To report wall-clock
  // on the paper's terms, a per-request overhead (parse + plan + round trip)
  // is added to the measured engine time.
  constexpr double kRequestOverheadMs = 1.0;
  std::printf(
      "\nper 1000 queries (engine time, server requests, wire traffic, and "
      "wall-clock with a %.0fms per-request RTT):\n",
      kRequestOverheadMs);
  bench::TablePrinter table({"batch size", "Q6 engine", "Q6 req/query",
                             "Q6 KB/query", "Q6 wall", "Q14 engine",
                             "Q14 req/query", "Q14 KB/query", "Q14 wall"});
  for (size_t batch : batch_sizes) {
    std::vector<std::string> row{batch == 1 ? "n/a" : std::to_string(batch)};
    for (const Template& tmpl : templates) {
      const dist::Distribution starts =
          bench::TemplateStarts(tmpl.sample, tmpl.k, 20000, &rng);
      // via_wire: requests travel the real protocol (encode, frame, CRC,
      // dispatch), so byte counters reflect what TCP would actually carry.
      auto system = bench::MakeEncryptedLineitem(data, starts, tmpl.k,
                                                 /*period=*/0, batch,
                                                 /*seed=*/0x79C4,
                                                 /*via_wire=*/true);
      system->server()->ResetStats();
      bench::Stopwatch watch;
      for (uint64_t i = 0; i < tmpl.queries; ++i) {
        auto resp = system->Query("lineitem", "l_shipdate", tmpl.sample(&rng));
        MOPE_CHECK(resp.ok(), "encrypted query");
      }
      const double engine_ms =
          watch.ElapsedMs() * 1000.0 / static_cast<double>(tmpl.queries);
      const engine::ServerStats stats = system->server()->stats();
      const double requests_per_query =
          static_cast<double>(stats.batches_received) /
          static_cast<double>(tmpl.queries);
      const double kb_per_query =
          static_cast<double>(stats.bytes_received + stats.bytes_sent) /
          1024.0 / static_cast<double>(tmpl.queries);
      const double wall_ms =
          engine_ms + kRequestOverheadMs * requests_per_query * 1000.0;
      row.push_back(bench::FmtMs(engine_ms));
      row.push_back(bench::Fmt(requests_per_query, 1));
      row.push_back(bench::Fmt(kb_per_query, 1));
      row.push_back(bench::FmtMs(wall_ms));
      report->BeginRow()
          .Field("template", tmpl.name)
          .Field("batch_size", static_cast<uint64_t>(batch))
          .Field("engine_ms_per_1000", engine_ms)
          .Field("requests_per_query", requests_per_query)
          .Field("kb_per_query", kb_per_query)
          .Field("wall_ms_per_1000", wall_ms);
    }
    table.Row(row);
  }
  std::printf(
      "\n(batching wins twice: far fewer round trips, and overlapping "
      "ranges\ncoalesce into shared index sweeps so duplicated rows ship "
      "once — the\nKB/query column shows bandwidth falling with the round "
      "trips.)\n");
}

}  // namespace
}  // namespace mope

int main() {
  mope::bench::PrintHeader("Figure 15",
                           "multi-range batched execution speedup");
  mope::bench::JsonReport report("fig15_batching");
  mope::Run(&report);
  report.Write();
  return 0;
}
