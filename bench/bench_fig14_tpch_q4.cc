/// Figure 14 — "The Bandwidth cost when trying to hide the query pattern
/// for Q4. A single query takes around 4 seconds to execute, so we can
/// predict the actual running time."
///
/// Q4 ranges over 3 months of o_orderdate (k = 90). Like the paper, this
/// bench skips execution and reports the Requests overhead factor per
/// period — multiply by the single-query runtime to predict wall-clock.

#include <cstdio>

#include "bench/tpch_util.h"

namespace mope {
namespace {

void Run(bench::JsonReport* report) {
  constexpr uint64_t kK = 90;
  constexpr uint64_t kQueries = 2000;
  Rng rng(0xF1614);

  const auto sample = [](mope::BitSource* r) {
    return workload::SampleQ4(r).orderdate;
  };
  const dist::Distribution starts =
      bench::TemplateStarts(sample, kK, 20000, &rng);

  // Record counts: orders per o_orderdate day.
  workload::TpchConfig config;
  config.scale_factor = bench::kBenchScaleFactor;
  const workload::TpchData data = workload::GenerateTpch(config);
  Histogram order_days(workload::kTpchDateDomain);
  for (const auto& row : data.orders) {
    order_days.Add(static_cast<uint64_t>(
        std::get<int64_t>(row[workload::tpch_cols::kOrderDate])));
  }
  const query::RecordCounter counter =
      query::RecordCounter::FromHistogram(order_days);

  const uint64_t periods[] = {0,
                              workload::kPeriod15Days,
                              workload::kPeriod1Month,
                              workload::kPeriod2Months,
                              workload::kPeriod3Months,
                              workload::kPeriod6Months,
                              workload::kPeriod1Year};

  bench::TablePrinter table(
      {"period", "Requests", "Bandwidth", "pred. runtime"});
  for (uint64_t period : periods) {
    const query::QueryConfig qc{workload::kTpchDateDomain, kK};
    std::unique_ptr<query::QueryAlgorithm> algorithm;
    if (period == 0) {
      auto alg = query::UniformQueryAlgorithm::Create(qc, starts);
      MOPE_CHECK(alg.ok(), "QueryU");
      algorithm = std::move(alg).value();
    } else {
      auto alg = query::PeriodicQueryAlgorithm::Create(qc, starts, period);
      MOPE_CHECK(alg.ok(), "QueryP");
      algorithm = std::move(alg).value();
    }
    query::CostAccumulator cost(&counter, kK);
    for (uint64_t i = 0; i < kQueries; ++i) {
      const query::RangeQuery q = sample(&rng);
      auto batch = algorithm->Process(q, &rng);
      MOPE_CHECK(batch.ok(), "process");
      cost.AddBatch(q, *batch);
    }
    // The paper's prediction: one plaintext Q4 ~ 4 seconds, so predicted
    // time per query ~ factor * 4s.
    const double predicted_s = cost.Requests() * 4.0;
    table.Row({bench::PeriodLabel(period), bench::Fmt(cost.Requests()),
               bench::Fmt(cost.Bandwidth()),
               bench::Fmt(predicted_s, 1) + "s"});
    report->BeginRow()
        .Field("period", bench::PeriodLabel(period))
        .Field("requests", cost.Requests())
        .Field("bandwidth", cost.Bandwidth())
        .Field("predicted_runtime_s", predicted_s);
  }
  std::printf(
      "\n(Requests is the factor over running each Q4 once; the paper "
      "reports\n this factor because a single Q4 takes ~4s on its testbed.)\n");
}

}  // namespace
}  // namespace mope

int main() {
  mope::bench::PrintHeader("Figure 14", "TPC-H Q4 request overhead vs period");
  mope::bench::JsonReport report("fig14_tpch_q4");
  mope::Run(&report);
  report.Write();
  return 0;
}
