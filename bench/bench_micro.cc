/// Micro-benchmarks (google-benchmark): primitive costs underlying the
/// figure benches, plus ablations of two design choices called out in
/// DESIGN.md §4 — the geometric fast path for fake-query counts and the
/// coalesced shared sweep for disjunctive range batches.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "crypto/aes.h"
#include "crypto/hgd.h"
#include "dist/completion.h"
#include "engine/btree.h"
#include "engine/executor.h"
#include "ope/mope.h"
#include "ope/ope.h"
#include "proxy/system.h"

namespace mope {
namespace {

void BM_AesEncryptBlock(benchmark::State& state) {
  crypto::Key128 key{};
  key[0] = 0x42;
  const crypto::Aes128 aes(key);
  crypto::Block block{};
  for (auto _ : state) {
    block = aes.EncryptBlock(block);
    benchmark::DoNotOptimize(block);
  }
}
BENCHMARK(BM_AesEncryptBlock);

void BM_HgdSample(benchmark::State& state) {
  const uint64_t total = static_cast<uint64_t>(state.range(0));
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        crypto::SampleHypergeometric(total, total / 4, total / 2, &rng));
  }
}
BENCHMARK(BM_HgdSample)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_OpeEncrypt(benchmark::State& state) {
  const uint64_t domain = static_cast<uint64_t>(state.range(0));
  Rng rng(2);
  auto scheme = ope::OpeScheme::Create({domain, ope::SuggestRange(domain)},
                                       ope::OpeKey::Generate(&rng));
  uint64_t m = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme->Encrypt(m).value());
    m = (m + 7919) % domain;
  }
}
BENCHMARK(BM_OpeEncrypt)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_MopeDecrypt(benchmark::State& state) {
  const uint64_t domain = static_cast<uint64_t>(state.range(0));
  Rng rng(3);
  auto scheme =
      ope::MopeScheme::Create({domain, ope::SuggestRange(domain)},
                              ope::MopeKey::Generate(domain, &rng));
  std::vector<uint64_t> ciphers;
  for (uint64_t m = 0; m < 64; ++m) {
    ciphers.push_back(scheme->Encrypt(m * (domain / 64)).value());
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme->Decrypt(ciphers[i]).value());
    i = (i + 1) % ciphers.size();
  }
}
BENCHMARK(BM_MopeDecrypt)->Arg(1 << 10)->Arg(1 << 14);

void BM_BTreeInsert(benchmark::State& state) {
  Rng rng(4);
  for (auto _ : state) {
    state.PauseTiming();
    engine::BPlusTree tree;
    state.ResumeTiming();
    for (int i = 0; i < state.range(0); ++i) {
      tree.Insert(rng.UniformUint64(1 << 20), static_cast<uint64_t>(i));
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BTreeInsert)->Arg(10000);

void BM_BTreeRangeScan(benchmark::State& state) {
  engine::BPlusTree tree;
  Rng rng(5);
  for (int i = 0; i < 100000; ++i) {
    tree.Insert(rng.UniformUint64(1 << 20), static_cast<uint64_t>(i));
  }
  for (auto _ : state) {
    uint64_t sink = 0;
    tree.ScanRange(1 << 18, (1 << 18) + (1 << 16),
                   [&sink](uint64_t k, uint64_t) { sink += k; });
    benchmark::DoNotOptimize(sink);
  }
}
BENCHMARK(BM_BTreeRangeScan);

/// Ablation: per-trial Bernoulli loop vs one geometric draw for the number
/// of fake queries (identical distribution; Section 5).
void BM_FakeCountBernoulliLoop(benchmark::State& state) {
  Rng rng(6);
  const double alpha = 1.0 / 200.0;
  for (auto _ : state) {
    uint64_t fakes = 0;
    while (!rng.Bernoulli(alpha)) ++fakes;
    benchmark::DoNotOptimize(fakes);
  }
}
BENCHMARK(BM_FakeCountBernoulliLoop);

void BM_FakeCountGeometric(benchmark::State& state) {
  Rng rng(7);
  const double alpha = 1.0 / 200.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.Geometric(alpha));
  }
}
BENCHMARK(BM_FakeCountGeometric);

/// Ablation: answering a 200-range disjunctive batch with one coalesced
/// sweep vs one index scan per range (Section 5.1).
class MultiRangeFixture : public benchmark::Fixture {
 public:
  void SetUp(const benchmark::State&) override {
    if (table_) return;
    table_ = std::make_unique<engine::Table>(
        "t", engine::Schema({{"k", engine::ValueType::kInt}}));
    for (int64_t i = 0; i < 200000; ++i) {
      (void)table_->Insert({i % 4096});
    }
    (void)table_->CreateIndex("k");
    Rng rng(8);
    for (int i = 0; i < 200; ++i) {
      const uint64_t lo = rng.UniformUint64(4000);
      segments_.push_back(Segment{lo, lo + 60});
    }
  }

 protected:
  std::unique_ptr<engine::Table> table_;
  std::vector<Segment> segments_;
};

BENCHMARK_F(MultiRangeFixture, CoalescedSharedSweep)(benchmark::State& state) {
  const auto* index = table_->GetIndex("k").value();
  for (auto _ : state) {
    uint64_t rows = 0;
    for (const Segment& seg : engine::CoalesceSegments(segments_)) {
      rows += index->ScanRange(seg.lo, seg.hi, [](uint64_t, uint64_t) {});
    }
    benchmark::DoNotOptimize(rows);
  }
}

BENCHMARK_F(MultiRangeFixture, OneScanPerRange)(benchmark::State& state) {
  const auto* index = table_->GetIndex("k").value();
  for (auto _ : state) {
    uint64_t rows = 0;
    for (const Segment& seg : segments_) {
      rows += index->ScanRange(seg.lo, seg.hi, [](uint64_t, uint64_t) {});
    }
    benchmark::DoNotOptimize(rows);
  }
}

/// Ablation: mean-anchored HGD inversion vs the linear reference sampler
/// (identical distribution; the anchored sweep is O(stddev) instead of
/// O(support) — DESIGN.md §4).
void BM_HgdAnchored(benchmark::State& state) {
  const uint64_t total = static_cast<uint64_t>(state.range(0));
  Rng rng(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        crypto::SampleHypergeometric(total, total / 2, total / 2, &rng));
  }
}
BENCHMARK(BM_HgdAnchored)->Arg(1 << 12)->Arg(1 << 16);

void BM_HgdLinearReference(benchmark::State& state) {
  const uint64_t total = static_cast<uint64_t>(state.range(0));
  Rng rng(10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        crypto::SampleHypergeometricLinear(total, total / 2, total / 2, &rng));
  }
}
BENCHMARK(BM_HgdLinearReference)->Arg(1 << 12)->Arg(1 << 16);

/// Key rotation throughput: full-column re-encryption (decrypt + encrypt +
/// index maintenance per row).
void BM_KeyRotation(benchmark::State& state) {
  const uint64_t rows = static_cast<uint64_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    proxy::MopeSystem system(state.iterations());
    proxy::EncryptedColumnSpec spec;
    spec.column = "v";
    spec.domain = 4096;
    spec.k = 16;
    spec.mode = proxy::QueryMode::kAdaptiveUniform;
    std::vector<engine::Row> data;
    for (uint64_t r = 0; r < rows; ++r) {
      data.push_back(engine::Row{static_cast<int64_t>(r % 4096)});
    }
    (void)system.LoadTable("t",
                           engine::Schema({{"v", engine::ValueType::kInt}}),
                           data, spec);
    state.ResumeTiming();
    benchmark::DoNotOptimize(system.RotateKey("t", "v").value());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(rows));
}
BENCHMARK(BM_KeyRotation)->Arg(2000)->Unit(benchmark::kMillisecond);

/// Completion-plan construction cost (the adaptive algorithm pays this once
/// per incoming query piece).
void BM_UniformPlanBuild(benchmark::State& state) {
  const uint64_t m = static_cast<uint64_t>(state.range(0));
  std::vector<double> w(m);
  for (uint64_t i = 0; i < m; ++i) w[i] = 1.0 / static_cast<double>(1 + i);
  auto q = dist::Distribution::FromWeights(std::move(w));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dist::MakeUniformPlan(*q).value().alpha);
  }
}
BENCHMARK(BM_UniformPlanBuild)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace mope

BENCHMARK_MAIN();
