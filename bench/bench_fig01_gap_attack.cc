/// Figure 1 — "The gap in the query distribution reveals the displacement."
///
/// Reproduces the paper's motivating attack: domain [0, 100], fixed query
/// length k = 10, secret offset j = 20. Executing all valid range queries
/// through naive MOPE leaves a band of never-queried (shifted) start points
/// just below the wrap, and the adversary reads the offset straight off the
/// histogram. A second run uses sampled skewed queries to show the attack
/// still works against realistic streams.

#include <cstdio>

#include "attack/gap_attack.h"
#include "bench/bench_util.h"
#include "common/random.h"

namespace mope {
namespace {

void RunExhaustive(bench::JsonReport* report) {
  constexpr uint64_t kDomain = 101;  // [0, 100]
  constexpr uint64_t kK = 10;
  constexpr uint64_t kOffset = 20;

  attack::GapAttack attack(kDomain);
  for (uint64_t start = 0; start + kK <= kDomain; ++start) {
    attack.ObserveStart((start + kOffset) % kDomain);
  }

  std::printf(
      "\nAll valid length-%llu queries executed once; observed (shifted) "
      "start histogram:\n\n",
      static_cast<unsigned long long>(kK));
  std::printf("%s\n", attack.observed().ToAscii(50, 21).c_str());

  const auto estimate = attack.EstimateOffset();
  std::printf("longest uncovered arc : %llu start points\n",
              static_cast<unsigned long long>(attack.LongestGap()));
  std::printf("true offset j         : %llu\n",
              static_cast<unsigned long long>(kOffset));
  std::printf("recovered offset      : %s\n",
              estimate.ok() ? std::to_string(estimate.value()).c_str()
                            : estimate.status().ToString().c_str());
  report->BeginRow()
      .Field("case", "exhaustive")
      .Field("true_offset", kOffset)
      .Field("recovered",
             estimate.ok() ? std::to_string(estimate.value()) : "none")
      .Field("gap", static_cast<uint64_t>(attack.LongestGap()));
}

void RunSampled(bench::JsonReport* report) {
  constexpr uint64_t kDomain = 1000;
  constexpr uint64_t kK = 25;
  Rng rng(0xF161);

  std::printf(
      "\nSampled skewed workloads (10k queries each), larger domain "
      "M = %llu, k = %llu:\n\n",
      static_cast<unsigned long long>(kDomain),
      static_cast<unsigned long long>(kK));
  bench::TablePrinter table({"offset j", "recovered", "gap length", "hit"});
  int hits = 0;
  for (int trial = 0; trial < 8; ++trial) {
    const uint64_t offset = rng.UniformUint64(kDomain);
    std::vector<double> w(kDomain, 0.0);
    for (uint64_t s = 0; s + kK <= kDomain; ++s) {
      w[s] = 1.0 / static_cast<double>(1 + (s % 37));
    }
    auto q = dist::Distribution::FromWeights(std::move(w));
    MOPE_CHECK(q.ok(), "weights");
    attack::GapAttack attack(kDomain);
    for (int i = 0; i < 10000; ++i) {
      attack.ObserveStart((q->Sample(&rng) + offset) % kDomain);
    }
    const auto est = attack.EstimateOffset();
    const bool hit = est.ok() && est.value() == offset;
    hits += hit ? 1 : 0;
    table.Row({std::to_string(offset),
               est.ok() ? std::to_string(est.value()) : "none",
               std::to_string(attack.LongestGap()), hit ? "yes" : "no"});
    report->BeginRow()
        .Field("case", "sampled")
        .Field("trial", trial)
        .Field("true_offset", offset)
        .Field("recovered", est.ok() ? std::to_string(est.value()) : "none")
        .Field("gap", static_cast<uint64_t>(attack.LongestGap()))
        .Field("hit", hit ? 1 : 0);
  }
  std::printf("\nrecovered %d/8 offsets exactly.\n", hits);
}

}  // namespace
}  // namespace mope

int main() {
  mope::bench::PrintHeader(
      "Figure 1", "the gap attack on naive MOPE query execution");
  mope::bench::JsonReport report("fig01_gap_attack");
  mope::RunExhaustive(&report);
  mope::RunSampled(&report);
  report.Write();
  return 0;
}
