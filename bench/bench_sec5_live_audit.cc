/// Section 5, live — the leakage auditor watching both regimes.
///
/// Two experiments validate the online attack statistics end to end:
///
///  1. "raw": naive MOPE streams (no fakes) replayed in rank space. The
///     auditor must recover the secret offset exactly as the offline
///     GapAttack harness does (Figure 1), with the alert latched.
///  2. "queryu_wire": a full client/proxy/server stack with QueryU mixing,
///     every request crossing the real wire protocol, the auditor hooked
///     inside the server, and its gauges *fetched over the wire* from the
///     stats endpoint. The perceived stream is uniform, so the windowed
///     chi-square must sit below its critical value with no alert.

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "attack/gap_attack.h"
#include "bench/bench_util.h"
#include "common/random.h"
#include "dist/distribution.h"
#include "net/remote_connection.h"
#include "obs/leakage.h"
#include "proxy/system.h"

namespace mope {
namespace {

void RunRawStreams(bench::JsonReport* report) {
  constexpr uint64_t kDomain = 101;
  constexpr uint64_t kK = 20;
  constexpr int kQueries = 3000;
  Rng rng(0x5EC5);

  std::printf(
      "\nNaive MOPE (no fakes), rank-space replay: M = %llu, k = %llu, "
      "%d queries per trial.\n\n",
      static_cast<unsigned long long>(kDomain),
      static_cast<unsigned long long>(kK), kQueries);
  bench::TablePrinter table(
      {"offset j", "recovered", "margin", "confidence", "alert", "hit"});

  int hits = 0;
  constexpr int kTrials = 6;
  for (int trial = 0; trial < kTrials; ++trial) {
    const uint64_t offset = rng.UniformUint64(kDomain);

    obs::LeakageAuditConfig config;
    config.space = kDomain;
    config.domain = kDomain;
    config.buckets = 16;
    config.window = 1024;
    auto auditor = obs::LeakageAuditor::Create(config, nullptr);
    MOPE_CHECK(auditor.ok(), "auditor config");
    attack::GapAttack offline(kDomain);

    for (int i = 0; i < kQueries; ++i) {
      const uint64_t start = rng.UniformUint64(kDomain - kK + 1);
      const uint64_t shifted = (start + offset) % kDomain;
      (*auditor)->ObserveStart(shifted);
      offline.ObserveStart(shifted);
    }

    const obs::LeakageVerdict v = (*auditor)->Verdict();
    const auto offline_est = offline.EstimateOffset();
    MOPE_CHECK(offline_est.ok(), "offline estimate");
    MOPE_CHECK(v.offset_estimate == *offline_est,
               "online and offline gap attacks disagree");
    const bool hit = v.offset_estimate == offset;
    hits += hit ? 1 : 0;
    MOPE_CHECK(v.alert, "raw MOPE stream must raise the leakage alert");

    char conf[32];
    std::snprintf(conf, sizeof(conf), "%.4f", v.confidence);
    table.Row({std::to_string(offset), std::to_string(v.offset_estimate),
               std::to_string(v.gap_margin), conf, v.alert ? "yes" : "no",
               hit ? "yes" : "no"});
    report->BeginRow()
        .Field("case", "raw")
        .Field("trial", trial)
        .Field("true_offset", offset)
        .Field("recovered", std::to_string(v.offset_estimate))
        .Field("margin", static_cast<double>(v.gap_margin))
        .Field("confidence", v.confidence)
        .Field("alert", v.alert ? 1 : 0)
        .Field("hit", hit ? 1 : 0);
  }
  std::printf("\nrecovered %d/%d offsets exactly; every trial alerted.\n",
              hits, kTrials);
  MOPE_CHECK(hits == kTrials, "gap attack must converge on raw streams");
}

void RunQueryUOverWire(bench::JsonReport* report) {
  constexpr uint64_t kDomain = 120;
  constexpr uint64_t kK = 12;
  constexpr int kUserQueries = 600;

  std::printf(
      "\nQueryU over the wire: M = %llu, k = %llu, %d user queries through "
      "proxy -> wire protocol -> audited server.\n",
      static_cast<unsigned long long>(kDomain),
      static_cast<unsigned long long>(kK), kUserQueries);

  proxy::MopeSystem system(0x5811);
  system.set_connection_factory(
      [&system]() -> Result<std::unique_ptr<proxy::ServerConnection>> {
        return net::MakeLoopbackWireConnection(system.server());
      });

  engine::Schema schema({engine::Column{"v", engine::ValueType::kInt}});
  std::vector<engine::Row> rows;
  for (int64_t v = 0; v < static_cast<int64_t>(kDomain); ++v) {
    rows.push_back(engine::Row{v});
  }
  std::vector<double> w(kDomain);
  for (uint64_t i = 0; i < kDomain; ++i) {
    w[i] = 1.0 / static_cast<double>(1 + i);
  }
  auto q = dist::Distribution::FromWeights(std::move(w));
  MOPE_CHECK(q.ok(), "weights");

  proxy::EncryptedColumnSpec spec;
  spec.column = "v";
  spec.domain = kDomain;
  spec.k = kK;
  spec.mode = proxy::QueryMode::kUniform;
  spec.batch_size = 16;
  MOPE_CHECK(system.LoadTable("t", schema, rows, spec, &*q).ok(), "load");
  MOPE_CHECK(system.EnableLeakageAudit(kDomain).ok(), "enable audit");

  bench::Stopwatch watch;
  Rng user_rng(0xD1CE);
  uint64_t fakes = 0;
  for (int i = 0; i < kUserQueries; ++i) {
    uint64_t start = q->Sample(&user_rng);
    if (start > kDomain - kK) start = kDomain - kK;
    auto resp = system.Query("t", "v", query::RangeQuery{start, start + kK - 1});
    MOPE_CHECK(resp.ok(), "query failed");
    fakes += resp->fake_queries_sent;
  }
  const double elapsed_ms = watch.ElapsedMs();

  // Read the verdict exactly as an operator would: the leakage gauges
  // travel the same wire protocol as every query.
  auto proxy = system.GetProxy("t", "v");
  MOPE_CHECK(proxy.ok(), "proxy");
  auto stats = (*proxy)->FetchServerStats();
  MOPE_CHECK(stats.ok(), "stats over the wire");
  std::map<std::string, uint64_t> gauges(stats->begin(), stats->end());

  const uint64_t observations =
      gauges[obs::LeakageAuditor::kGaugeObservations];
  const double chi2 =
      static_cast<double>(gauges[obs::LeakageAuditor::kGaugeChi2Milli]) /
      1000.0;
  const double chi2_critical =
      static_cast<double>(
          gauges[obs::LeakageAuditor::kGaugeChi2CriticalMilli]) /
      1000.0;
  const uint64_t alert = gauges[obs::LeakageAuditor::kGaugeAlert];

  std::printf("\n%s\n",
              obs::LeakageAuditor::DescribeStats(*stats).c_str());
  std::printf("(%llu starts audited, %llu fakes mixed in, %.1f ms)\n",
              static_cast<unsigned long long>(observations),
              static_cast<unsigned long long>(fakes), elapsed_ms);

  MOPE_CHECK(observations > 512, "audit stream too short to judge");
  MOPE_CHECK(chi2_critical > 0.0, "chi-square not yet computed");
  MOPE_CHECK(chi2 < chi2_critical,
             "QueryU mix must pass the uniformity audit");
  MOPE_CHECK(alert == 0, "QueryU mix must not alert");

  report->BeginRow()
      .Field("case", "queryu_wire")
      .Field("observations", observations)
      .Field("chi2", chi2)
      .Field("chi2_critical", chi2_critical)
      .Field("alert", alert)
      .Field("fakes", fakes);
}

}  // namespace
}  // namespace mope

int main() {
  mope::bench::PrintHeader(
      "Section 5, live",
      "the leakage auditor on raw and QueryU-mixed streams");
  mope::bench::JsonReport report("sec5_live_audit");
  mope::RunRawStreams(&report);
  mope::RunQueryUOverWire(&report);
  report.Write();
  return 0;
}
