/// Figure 9 — Bandwidth (9a) and Requests (9b) costs for the Zipf
/// (power-law) query pattern across fixed lengths k, period 25.

#include "bench/bench_util.h"

int main() {
  mope::bench::PrintHeader("Figure 9", "Zipf cost vs fixed length k");
  mope::bench::JsonReport report("fig09_zipf_k");
  mope::bench::RunLengthSweep(mope::workload::DatasetKind::kZipf,
                              {5.0, 10.0, 25.0},
                              {5, 10, 25, 50, 100, 200, 400, 800},
                              /*period=*/25, /*pad_to=*/0,
                              /*num_queries=*/400, &report);
  report.Write();
  return 0;
}
