/// Profiling overhead of the instrumented executor (PR: query-level
/// observability).
///
/// Every operator's public Open()/Next() routes through the instrumented
/// base hook; the design claim is that with profiling OFF the hook costs
/// one predicted-not-taken branch — indistinguishable from the
/// pre-instrumentation executor — while profiling ON pays clock reads and
/// stat updates only for the queries that asked (EXPLAIN ANALYZE).
///
/// This bench drives the same physical plans the SQL layer builds
/// (scan->filter->aggregate and a multi-segment index scan) in three modes:
///
///   raw  — a hand-rolled loop doing the same row work with no operator
///          framework at all (the "pre-instrumentation" floor),
///   off  — the real plan with profiling disabled (the production default),
///   on   — the real plan under EXPLAIN ANALYZE profiling.
///
/// Wall time is reported on stdout and tripwired in-bench (the off path
/// must stay far below the on path — a leak of the whole profiling block
/// onto the off path aborts the bench, and the bench is a blocking CI
/// step). But wall-clock ratios on shared runners drift by several percent
/// between runs, so the *gated* measurement is deterministic instead: this
/// binary overrides global operator new and counts heap allocations per
/// profiling-off drain. Executor allocation behaviour is exactly
/// reproducible — the same plan over the same table allocates the same
/// number of times — so the committed baseline under bench/baselines/ holds
/// to the last allocation, and the 2% CI threshold catches any real
/// regression: a per-row leak adds ~kRows allocations, and even a one-time
/// setup leak adds ≥1 against a two-digit constant. The off path allocates
/// nothing the raw loop doesn't, which is the "near-zero overhead when
/// off" acceptance criterion in enforceable form.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "engine/btree.h"
#include "engine/executor.h"
#include "engine/table.h"
#include "obs/clock.h"

// ---------------------------------------------------------------------------
// Deterministic allocation counting: every heap allocation in the process
// bumps one relaxed counter. Replacing the global throwing operators is
// enough — std::allocator and make_unique route through these.
// ---------------------------------------------------------------------------

namespace {
std::atomic<uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, std::align_val_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align), size)) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace mope {
namespace {

constexpr int64_t kRows = 200000;
// Time reps interleave (raw,off,on, raw,off,on, ...) so frequency scaling
// and cache temperature hit all modes equally; the per-mode estimate is a
// 20%-trimmed mean, robust to interference spikes without the
// single-lucky-rep bias of taking the minimum. (Times are reported, not
// gated — the gated measurement is the deterministic allocation count.)
constexpr int kTimeReps = 15;

std::unique_ptr<engine::Table> BuildTable() {
  auto table = std::make_unique<engine::Table>(
      "numbers",
      engine::Schema({engine::Column{"v", engine::ValueType::kInt},
                      engine::Column{"d", engine::ValueType::kDouble}}));
  for (int64_t i = 0; i < kRows; ++i) {
    MOPE_CHECK(table->Insert({i, static_cast<double>(i) * 0.25}).ok(),
               "bench table insert");
  }
  MOPE_CHECK(table->CreateIndex("v").ok(), "bench table index");
  return table;
}

/// scan -> filter -> aggregate: the shape every TPC-H query in the repo
/// bottoms out in. Rebuilt per run because operators are single-use.
std::unique_ptr<engine::Operator> ScanFilterAgg(const engine::Table* table) {
  auto scan = std::make_unique<engine::SeqScanOp>(table);
  auto filter = std::make_unique<engine::FilterOp>(
      std::move(scan), [](const engine::Row& row) -> Result<bool> {
        return std::get<int64_t>(row[0]) % 3 == 0;
      });
  std::vector<engine::AggSpec> aggs;
  aggs.push_back({engine::AggKind::kCount, nullptr});
  return std::make_unique<engine::AggregateOp>(std::move(filter),
                                               std::move(aggs));
}

/// The same row work as ScanFilterAgg with no operator framework: copy each
/// row into a reused buffer (SeqScanOp feeding the volcano loop's row
/// slot), filter it, count survivors.
uint64_t RawScanFilterAgg(const engine::Table* table) {
  uint64_t count = 0;
  const uint64_t n = table->row_count();
  engine::Row row;
  for (uint64_t id = 0; id < n; ++id) {
    row = table->row(id);
    if (std::get<int64_t>(row[0]) % 3 == 0) ++count;
  }
  return count;
}

constexpr uint64_t kSegALo = 0;
constexpr uint64_t kSegAHi = kRows / 8;
constexpr uint64_t kSegBLo = kRows / 2;
constexpr uint64_t kSegBHi = kRows / 2 + kRows / 8;

/// Multi-segment B+-tree scan: the Section 5.1 shared-sweep path, where the
/// per-sweep node attribution lives.
std::unique_ptr<engine::Operator> IndexScan(const engine::Table* table) {
  return std::make_unique<engine::IndexRangeScanOp>(
      table, *table->GetIndex("v"),
      std::vector<Segment>{{kSegALo, kSegAHi}, {kSegBLo, kSegBHi}});
}

/// The same work as IndexScan drained through engine::Collect, with no
/// operator framework: sweep both segments collecting row ids (OpenImpl's
/// cost), then materialize every matched row (NextImpl + Collect's cost).
uint64_t RawIndexScan(const engine::Table* table) {
  const engine::BPlusTree* index = *table->GetIndex("v");
  std::vector<uint64_t> row_ids;
  const auto collect = [&row_ids](uint64_t, uint64_t row_id) {
    row_ids.push_back(row_id);
  };
  index->ScanRange(kSegALo, kSegAHi, collect);
  index->ScanRange(kSegBLo, kSegBHi, collect);
  std::vector<engine::Row> rows;
  for (const uint64_t id : row_ids) rows.push_back(table->row(id));
  return rows.size();
}

struct Measurement {
  double raw_ms = 0.0;
  double off_ms = 0.0;
  double on_ms = 0.0;
  uint64_t off_allocs = 0;  ///< Heap allocations per profiling-off drain.
};

double TrimmedMean(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  const size_t trim = xs.size() / 5;  // drop the bottom and top 20%
  double sum = 0.0;
  for (size_t i = trim; i < xs.size() - trim; ++i) sum += xs[i];
  return sum / static_cast<double>(xs.size() - 2 * trim);
}

/// Times all three modes over kTimeReps interleaved triples, then counts
/// the off-mode drain's allocations twice (the second count must reproduce
/// the first — executor allocation behaviour is deterministic, and the
/// baseline gate depends on it). The on-path uses the real SystemClock —
/// the cost being measured includes the clock reads a production EXPLAIN
/// ANALYZE pays.
template <typename MakePlan, typename RawDrain>
Measurement Measure(const MakePlan& make, const RawDrain& raw) {
  engine::ProfileContext ctx;
  ctx.clock = obs::SystemClock();
  std::vector<double> raw_times, off_times, on_times;
  for (int rep = 0; rep < 3 * kTimeReps + 3; ++rep) {
    const int mode = rep % 3;
    bench::Stopwatch watch;
    if (mode == 0) {
      MOPE_CHECK(raw() > 0, "raw drain must visit rows");
    } else {
      std::unique_ptr<engine::Operator> plan = make();
      if (mode == 2) plan->EnableProfiling(&ctx);
      auto rows = engine::Collect(plan.get());
      MOPE_CHECK(rows.ok(), "bench plan must execute");
    }
    const double elapsed = watch.ElapsedMs();
    if (rep < 3) continue;  // one warmup triple primes caches and branches
    (mode == 0 ? raw_times : mode == 1 ? off_times : on_times)
        .push_back(elapsed);
  }

  uint64_t off_allocs = 0;
  for (int pass = 0; pass < 2; ++pass) {
    std::unique_ptr<engine::Operator> plan = make();
    const uint64_t before = g_allocs.load(std::memory_order_relaxed);
    auto rows = engine::Collect(plan.get());
    const uint64_t drained = g_allocs.load(std::memory_order_relaxed) - before;
    MOPE_CHECK(rows.ok(), "bench plan must execute");
    MOPE_CHECK(pass == 0 || drained == off_allocs,
               "profiling-off allocation count must be deterministic");
    off_allocs = drained;
  }

  return Measurement{TrimmedMean(std::move(raw_times)),
                     TrimmedMean(std::move(off_times)),
                     TrimmedMean(std::move(on_times)), off_allocs};
}

}  // namespace
}  // namespace mope

int main() {
  using namespace mope;  // NOLINT

  std::printf(
      "Executor instrumentation overhead: %lld-row plans, trimmed mean of "
      "%d interleaved time reps per mode.\n\n",
      static_cast<long long>(kRows), kTimeReps);

  auto table = BuildTable();
  bench::JsonReport report("explain");
  bench::TablePrinter printer(
      {"plan", "raw ms", "off ms", "on ms", "off/on", "off allocs"});

  struct Shape {
    std::string name;
    std::unique_ptr<engine::Operator> (*make)(const engine::Table*);
    uint64_t (*raw)(const engine::Table*);
    // Wall-clock tripwire: profiling-off must stay well below this share of
    // the profiling-on time. The margins are wide on both sides — the
    // measured ratios sit far below, and leaking even one clock read per
    // Next() onto the off path pushes far above — so run-to-run drift
    // cannot flip the check.
    double max_off_over_on;
  };
  const std::vector<Shape> shapes = {
      {"scan_filter_agg", &ScanFilterAgg, &RawScanFilterAgg, 0.40},
      {"index_scan", &IndexScan, &RawIndexScan, 0.75}};
  for (const auto& shape : shapes) {
    const engine::Table* t = table.get();
    const Measurement m =
        Measure([&] { return shape.make(t); }, [&] { return shape.raw(t); });
    const double off_over_on = m.off_ms / m.on_ms;
    char raw[32], off[32], on[32], r[32], a[32];
    std::snprintf(raw, sizeof(raw), "%.3f", m.raw_ms);
    std::snprintf(off, sizeof(off), "%.3f", m.off_ms);
    std::snprintf(on, sizeof(on), "%.3f", m.on_ms);
    std::snprintf(r, sizeof(r), "%.4f", off_over_on);
    std::snprintf(a, sizeof(a), "%llu",
                  static_cast<unsigned long long>(m.off_allocs));
    printer.Row({shape.name, raw, off, on, r, a});
    MOPE_CHECK(off_over_on < shape.max_off_over_on,
               "profiling-off wall time crept toward profiling-on: "
               "work is leaking onto the off path");
    // Only the deterministic allocation count is a gated measurement
    // ("value"); wall times drift percent-level on shared runners and
    // travel as stdout, so the 2% CI threshold stays meaningful.
    report.BeginRow().Field("plan", shape.name)
        .Field("metric", "allocs_profiling_off")
        .Field("value", static_cast<double>(m.off_allocs));
  }

  std::printf(
      "\noff allocs is exact and reproducible: the committed baseline holds\n"
      "to the last allocation, so the 2%% CI gate trips on any real leak\n"
      "onto the profiling-off path (a per-row leak adds ~%lld). off/on is\n"
      "the wall-clock tripwire for allocation-free leaks (clock reads).\n",
      static_cast<long long>(kRows));
  return report.Write() ? 0 : 1;
}
