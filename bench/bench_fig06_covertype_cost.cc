/// Figure 6 — Bandwidth (6a) and Requests (6b) costs for the Covertype
/// (elevation) query distribution with sigma = 5 and 10, periods
/// n/a, 25, 50, 100, 200.
///
/// Covertype's elevation histogram is smooth, so QueryP's class maxima stay
/// close to the global maximum and the periodic algorithm helps far less
/// than on Adult/SanFran — the paper's observation in Section 6.1.2.

#include "bench/bench_util.h"

int main() {
  mope::bench::PrintHeader("Figure 6", "Covertype cost vs period");
  mope::bench::JsonReport report("fig06_covertype_cost");
  mope::bench::RunPeriodSweep(mope::workload::DatasetKind::kCovertype,
                              {5.0, 10.0}, /*k=*/10, {0, 25, 50, 100, 200},
                              /*pad_to=*/0, /*num_queries=*/1000, &report);
  report.Write();
  return 0;
}
