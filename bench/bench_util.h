#ifndef MOPE_BENCH_BENCH_UTIL_H_
#define MOPE_BENCH_BENCH_UTIL_H_

/// \file bench_util.h
/// Shared helpers for the figure-reproduction benches: fixed-width table
/// printing (every bench prints the series of its paper figure), workload
/// setup, a stopwatch over the injectable obs::Clock, and a JSON report
/// writer so every figure's numbers land in a machine-readable
/// BENCH_<name>.json next to the human-readable table.

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "dist/distribution.h"
#include "obs/clock.h"
#include "query/algorithms.h"
#include "query/cost.h"
#include "workload/datasets.h"
#include "workload/generator.h"

namespace mope::bench {

/// Prints a banner naming the figure being reproduced.
inline void PrintHeader(const std::string& figure, const std::string& what) {
  std::printf("\n=== %s — %s ===\n", figure.c_str(), what.c_str());
}

/// Fixed-width table printer.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> columns, int width = 14)
      : columns_(std::move(columns)), width_(width) {
    for (const auto& col : columns_) {
      std::printf("%*s", width_, col.c_str());
    }
    std::printf("\n");
    for (size_t i = 0; i < columns_.size(); ++i) {
      std::printf("%*s", width_, "------------");
    }
    std::printf("\n");
  }

  void Row(const std::vector<std::string>& cells) const {
    for (const auto& cell : cells) {
      std::printf("%*s", width_, cell.c_str());
    }
    std::printf("\n");
  }

 private:
  std::vector<std::string> columns_;
  int width_;
};

inline std::string Fmt(double v, int precision = 2) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

inline std::string FmtMs(double ms) {
  char buf[32];
  if (ms >= 1000.0) {
    std::snprintf(buf, sizeof(buf), "%.2fs", ms / 1000.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fms", ms);
  }
  return buf;
}

/// Wall-time stopwatch over an injectable clock (R7: no direct
/// std::chrono clocks outside src/obs/clock.*). Benches use the default
/// SystemClock; tests of bench helpers can pass a ManualClock.
class Stopwatch {
 public:
  explicit Stopwatch(obs::Clock* clock = nullptr)
      : clock_(clock != nullptr ? clock : obs::SystemClock()),
        start_ns_(clock_->NowNanos()) {}
  double ElapsedMs() const {
    return static_cast<double>(clock_->NowNanos() - start_ns_) / 1e6;
  }

 private:
  obs::Clock* clock_;
  uint64_t start_ns_;
};

/// Collects one flat JSON object per data point and writes them to
/// BENCH_<name>.json, so plots and regression checks can consume a bench
/// run without scraping its tables. Usage:
///
///   JsonReport report("fig05_adult_cost");
///   report.BeginRow().Field("metric", "bandwidth").Field("value", 12.5);
///   report.Write();   // -> BENCH_fig05_adult_cost.json in the cwd
class JsonReport {
 public:
  explicit JsonReport(std::string name) : name_(std::move(name)) {}

  JsonReport& BeginRow() {
    rows_.emplace_back();
    return *this;
  }
  JsonReport& Field(const std::string& key, const std::string& value) {
    rows_.back().emplace_back(key, "\"" + Escape(value) + "\"");
    return *this;
  }
  JsonReport& Field(const std::string& key, const char* value) {
    return Field(key, std::string(value));
  }
  JsonReport& Field(const std::string& key, double value) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.10g", value);
    rows_.back().emplace_back(key, buf);
    return *this;
  }
  JsonReport& Field(const std::string& key, uint64_t value) {
    rows_.back().emplace_back(key, std::to_string(value));
    return *this;
  }
  JsonReport& Field(const std::string& key, int value) {
    return Field(key, static_cast<uint64_t>(value));
  }

  /// Serializes {"bench": <name>, "rows": [...]} to BENCH_<name>.json in
  /// the working directory. Returns false (and prints to stderr) on I/O
  /// failure — benches report it but still exit 0 on good numbers.
  bool Write() const {
    const std::string path = "BENCH_" + name_ + ".json";
    std::string out = "{\n  \"bench\": \"" + Escape(name_) + "\",\n"
                      "  \"rows\": [\n";
    for (size_t i = 0; i < rows_.size(); ++i) {
      out += "    {";
      for (size_t f = 0; f < rows_[i].size(); ++f) {
        if (f > 0) out += ", ";
        out += "\"" + Escape(rows_[i][f].first) + "\": " + rows_[i][f].second;
      }
      out += i + 1 < rows_.size() ? "},\n" : "}\n";
    }
    out += "  ]\n}\n";
    std::FILE* file = std::fopen(path.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
      return false;
    }
    const bool ok =
        std::fwrite(out.data(), 1, out.size(), file) == out.size();
    std::fclose(file);
    if (ok) std::printf("\n[%s written: %zu rows]\n", path.c_str(),
                        rows_.size());
    return ok;
  }

 private:
  static std::string Escape(const std::string& in) {
    std::string out;
    out.reserve(in.size());
    for (const char ch : in) {
      if (ch == '"' || ch == '\\') out.push_back('\\');
      if (static_cast<unsigned char>(ch) < 0x20) {
        out += ' ';
        continue;
      }
      out.push_back(ch);
    }
    return out;
  }

  std::string name_;
  // Each row: ordered (key, already-JSON-encoded value) pairs.
  std::vector<std::vector<std::pair<std::string, std::string>>> rows_;
};

/// One dataset-driven cost experiment (the common core of Figs. 5-12):
/// generate `num_queries` user queries (centers from the dataset, lengths
/// from |N(0, sigma^2)|), run them through QueryU (period == 0) or
/// QueryP[period], and evaluate the Section 6 cost functions against a
/// deterministically-populated database of `num_records` records.
struct CostRunResult {
  double bandwidth = 0.0;
  double requests = 0.0;
};

/// Pads a distribution with zero-probability elements up to `size` (used to
/// make the Adult domain divisible by the Figure 5/10 periods; queries never
/// land in the pad, fake queries may).
inline dist::Distribution PadDistribution(const dist::Distribution& d,
                                          uint64_t size) {
  MOPE_CHECK(size >= d.size(), "pad size must not shrink the domain");
  std::vector<double> weights(d.probs());
  weights.resize(size, 0.0);
  auto padded = dist::Distribution::FromWeights(std::move(weights));
  MOPE_CHECK(padded.ok(), "padding failed");
  return std::move(padded).value();
}

inline CostRunResult RunCostExperiment(workload::DatasetKind kind,
                                       double sigma, uint64_t k,
                                       uint64_t period, uint64_t num_queries,
                                       uint64_t pad_to = 0,
                                       uint64_t seed = 0xC057) {
  dist::Distribution data = workload::MakeDataset(kind);
  if (pad_to > data.size()) data = PadDistribution(data, pad_to);
  Rng rng(seed ^ (period * 0x9E37) ^ k ^ static_cast<uint64_t>(sigma * 7));

  // Database contents follow the dataset distribution.
  const query::RecordCounter counter(
      workload::DeterministicCounts(data, 50 * data.size()));

  // Query-start distribution learned from a large sample (the proxy's
  // a-priori knowledge in the non-adaptive algorithms).
  const dist::Distribution starts =
      workload::BuildStartDistribution(data, {sigma}, k, 20000, &rng);

  const query::QueryConfig config{data.size(), k};
  std::unique_ptr<query::QueryAlgorithm> algorithm;
  if (period == 0) {
    auto alg = query::UniformQueryAlgorithm::Create(config, starts);
    MOPE_CHECK(alg.ok(), "QueryU creation failed");
    algorithm = std::move(alg).value();
  } else {
    auto alg = query::PeriodicQueryAlgorithm::Create(config, starts, period);
    MOPE_CHECK(alg.ok(), "QueryP creation failed");
    algorithm = std::move(alg).value();
  }

  query::CostAccumulator cost(&counter, k);
  for (uint64_t i = 0; i < num_queries; ++i) {
    const query::RangeQuery q = workload::GenerateQuery(data, {sigma}, &rng);
    auto batch = algorithm->Process(q, &rng);
    MOPE_CHECK(batch.ok(), "query processing failed");
    cost.AddBatch(q, *batch);
  }
  return CostRunResult{cost.Bandwidth(), cost.Requests()};
}

/// Formats a period column value ("n/a" for QueryU).
inline std::string PeriodLabel(uint64_t period) {
  return period == 0 ? "n/a" : std::to_string(period);
}

/// The Figures 5-7 shape: Bandwidth and Requests vs period, one curve per
/// sigma. `pad_to` pads the domain so every period divides it (0 = none).
inline void RunPeriodSweep(workload::DatasetKind kind,
                           const std::vector<double>& sigmas, uint64_t k,
                           const std::vector<uint64_t>& periods,
                           uint64_t pad_to, uint64_t num_queries,
                           JsonReport* report = nullptr) {
  const std::string name = workload::DatasetName(kind);
  for (const char* metric : {"Bandwidth", "Requests"}) {
    std::printf("\n%s cost — %s query distribution (k = %llu):\n", metric,
                name.c_str(), static_cast<unsigned long long>(k));
    std::vector<std::string> header{"period"};
    for (double sigma : sigmas) {
      header.push_back(name + std::to_string(static_cast<int>(sigma)));
    }
    TablePrinter table(header, 16);
    for (uint64_t period : periods) {
      std::vector<std::string> row{PeriodLabel(period)};
      for (double sigma : sigmas) {
        const CostRunResult r =
            RunCostExperiment(kind, sigma, k, period, num_queries, pad_to);
        const double value = metric[0] == 'B' ? r.bandwidth : r.requests;
        row.push_back(Fmt(value));
        if (report != nullptr) {
          report->BeginRow()
              .Field("metric", metric[0] == 'B' ? "bandwidth" : "requests")
              .Field("dataset", name)
              .Field("period", period)
              .Field("sigma", sigma)
              .Field("k", k)
              .Field("value", value);
        }
      }
      table.Row(row);
    }
  }
}

/// The Figures 8-12 shape: Bandwidth and Requests vs fixed length k at a
/// fixed period, one curve per sigma.
inline void RunLengthSweep(workload::DatasetKind kind,
                           const std::vector<double>& sigmas,
                           const std::vector<uint64_t>& ks, uint64_t period,
                           uint64_t pad_to, uint64_t num_queries,
                           JsonReport* report = nullptr) {
  const std::string name = workload::DatasetName(kind);
  for (const char* metric : {"Bandwidth", "Requests"}) {
    std::printf("\n%s cost — %s query pattern (period = %s):\n", metric,
                name.c_str(), PeriodLabel(period).c_str());
    std::vector<std::string> header{"length k"};
    for (double sigma : sigmas) {
      header.push_back(name + std::to_string(static_cast<int>(sigma)));
    }
    TablePrinter table(header, 16);
    for (uint64_t k : ks) {
      std::vector<std::string> row{std::to_string(k)};
      for (double sigma : sigmas) {
        const CostRunResult r =
            RunCostExperiment(kind, sigma, k, period, num_queries, pad_to);
        const double value = metric[0] == 'B' ? r.bandwidth : r.requests;
        row.push_back(Fmt(value));
        if (report != nullptr) {
          report->BeginRow()
              .Field("metric", metric[0] == 'B' ? "bandwidth" : "requests")
              .Field("dataset", name)
              .Field("period", period)
              .Field("sigma", sigma)
              .Field("k", k)
              .Field("value", value);
        }
      }
      table.Row(row);
    }
  }
}

}  // namespace mope::bench

#endif  // MOPE_BENCH_BENCH_UTIL_H_
