/// Storage engine costs on a real file system: what durability charges
/// the serving path.
///
/// Three experiments, all against the posix Env in a scratch directory:
///
///  1. "wal_fsync": inserts/sec through DurableCatalog as the group-commit
///     interval varies. sync_every=1 fsyncs per insert (the durability
///     ceiling), larger groups amortize it, 0 defers every fsync to one
///     final Sync — the gap between the rows IS the fsync cost.
///  2. "scan": full-range scan latency over an on-disk B+-tree as the
///     buffer pool shrinks from fits-everything to 8 frames, cold and
///     warm. The warm pass shows the pool's hit rate doing its job; the
///     cold pass shows what a page miss costs.
///  3. "recovery": WAL replay time for a crash-state directory — the
///     price of restarting without a checkpoint.

#include <cstdio>
#include <string>
#include <vector>

#include <unistd.h>

#include "bench/bench_util.h"
#include "engine/durability.h"
#include "engine/table.h"
#include "obs/registry.h"
#include "storage/btree_file.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/env.h"

namespace mope {
namespace {

std::string ScratchDir() {
  const char* tmp = std::getenv("TMPDIR");
  std::string dir = std::string(tmp != nullptr ? tmp : "/tmp") +
                    "/mope_bench_storage_" + std::to_string(::getpid());
  MOPE_CHECK(storage::Env::Posix()->CreateDir(dir).ok(),
             "cannot create scratch dir");
  return dir;
}

void WipeDir(const std::string& dir) {
  storage::Env* env = storage::Env::Posix();
  for (const char* f : {"pages.db", "wal.log", "storage.meta", "tree.db"}) {
    const std::string path = dir + "/" + f;
    if (env->FileExists(path)) {
      MOPE_CHECK(env->RemoveFile(path).ok(), "cannot wipe scratch file");
    }
  }
}

engine::Schema BenchSchema() {
  return engine::Schema({engine::Column{"c", engine::ValueType::kInt},
                         engine::Column{"payload",
                                        engine::ValueType::kString}});
}

engine::Row BenchRow(uint64_t i) {
  return {static_cast<int64_t>(i * 2654435761u % 100000),
          "payload-" + std::to_string(i) + std::string(40, 'x')};
}

/// Experiment 1: insert throughput vs the WAL group-commit interval.
void RunWalFsyncSweep(const std::string& dir, bench::JsonReport* report) {
  constexpr uint64_t kRows = 2000;
  std::printf("\nInsert throughput vs WAL group commit (%llu rows, indexed "
              "int + ~60B string per row):\n\n",
              static_cast<unsigned long long>(kRows));
  bench::TablePrinter table(
      {"sync_every", "elapsed", "inserts/sec", "wal syncs"});

  for (const uint64_t sync_every : {uint64_t{1}, uint64_t{8}, uint64_t{64},
                                    uint64_t{0}}) {
    WipeDir(dir);
    obs::MetricsRegistry metrics;
    engine::Catalog catalog;
    engine::DurableCatalog::Options options;
    options.wal_sync_every = sync_every;
    options.metrics = &metrics;
    auto durable = engine::DurableCatalog::Open(dir, &catalog, options);
    MOPE_CHECK(durable.ok(), "open scratch catalog");
    auto table_ptr = catalog.CreateTable("bench", BenchSchema());
    MOPE_CHECK(table_ptr.ok(), "create table");
    MOPE_CHECK((*table_ptr)->CreateIndex("c").ok(), "create index");

    bench::Stopwatch watch;
    for (uint64_t i = 0; i < kRows; ++i) {
      MOPE_CHECK((*table_ptr)->Insert(BenchRow(i)).ok(), "insert");
    }
    // Deferred-group runs still pay one final fsync so every row compares
    // durable-to-durable.
    MOPE_CHECK((*durable)->Sync().ok(), "final sync");
    const double ms = watch.ElapsedMs();

    const uint64_t syncs = metrics.GetCounter("storage.wal.syncs")->Value();
    const double per_sec = static_cast<double>(kRows) / (ms / 1000.0);
    table.Row({sync_every == 0 ? "deferred" : std::to_string(sync_every),
               bench::FmtMs(ms), bench::Fmt(per_sec, 0),
               std::to_string(syncs)});
    report->BeginRow()
        .Field("case", "wal_fsync")
        .Field("sync_every", sync_every)
        .Field("rows", kRows)
        .Field("ms", ms);
  }
}

/// Experiment 2: range-scan latency vs buffer pool size, cold and warm.
void RunScanSweep(const std::string& dir, bench::JsonReport* report) {
  constexpr uint64_t kEntries = 60000;
  WipeDir(dir);
  const std::string tree_path = dir + "/tree.db";

  // Build the tree once and flush it to disk; every pool size then reopens
  // the same file.
  storage::PageId root = storage::kInvalidPageId;
  {
    obs::MetricsRegistry metrics;
    auto disk = storage::DiskManager::Open(storage::Env::Posix(), tree_path,
                                           &metrics);
    MOPE_CHECK(disk.ok(), "open tree file");
    storage::BufferPool pool(
        disk->get(), 4096, [](uint64_t) { return Status::OK(); }, &metrics);
    auto tree = storage::BTreeFile::Open(&pool, storage::kInvalidPageId);
    MOPE_CHECK(tree.ok(), "open tree");
    for (uint64_t i = 0; i < kEntries; ++i) {
      MOPE_CHECK((*tree)->Insert(i * 2654435761u % (1u << 24), i).ok(),
                 "tree insert");
    }
    root = (*tree)->root();
    MOPE_CHECK(pool.FlushAll().ok(), "flush tree");
    MOPE_CHECK((*disk)->Sync().ok(), "sync tree");
  }

  std::printf("\nFull-range scan latency vs buffer pool size (%llu entries, "
              "~%llu leaf pages):\n\n",
              static_cast<unsigned long long>(kEntries),
              static_cast<unsigned long long>(kEntries / 254));
  bench::TablePrinter table(
      {"frames", "cold scan", "warm scan", "warm hit %"});

  for (const size_t frames : {size_t{8}, size_t{64}, size_t{256},
                              size_t{4096}}) {
    obs::MetricsRegistry metrics;
    auto disk = storage::DiskManager::Open(storage::Env::Posix(), tree_path,
                                           &metrics);
    MOPE_CHECK(disk.ok(), "reopen tree file");
    storage::BufferPool pool(
        disk->get(), frames, [](uint64_t) { return Status::OK(); }, &metrics);
    auto tree = storage::BTreeFile::Open(&pool, root);
    MOPE_CHECK(tree.ok(), "reopen tree");

    const auto scan_all = [&]() -> double {
      bench::Stopwatch watch;
      uint64_t seen = 0;
      auto n = (*tree)->ScanRange(0, ~uint64_t{0},
                                  [&seen](uint64_t, uint64_t) { ++seen; });
      MOPE_CHECK(n.ok() && seen == kEntries, "scan mismatch");
      return watch.ElapsedMs();
    };

    const double cold_ms = scan_all();
    const uint64_t hits_before = metrics.GetCounter("storage.pool.hits")->Value();
    const uint64_t misses_before =
        metrics.GetCounter("storage.pool.misses")->Value();
    const double warm_ms = scan_all();
    const uint64_t hits =
        metrics.GetCounter("storage.pool.hits")->Value() - hits_before;
    const uint64_t misses =
        metrics.GetCounter("storage.pool.misses")->Value() - misses_before;
    const double hit_pct =
        100.0 * static_cast<double>(hits) /
        static_cast<double>(hits + misses == 0 ? 1 : hits + misses);

    table.Row({std::to_string(frames), bench::FmtMs(cold_ms),
               bench::FmtMs(warm_ms), bench::Fmt(hit_pct, 1)});
    report->BeginRow()
        .Field("case", "scan_cold")
        .Field("frames", static_cast<uint64_t>(frames))
        .Field("entries", kEntries)
        .Field("ms", cold_ms);
    // Hit rate stays out of the JSON: bench_compare treats "value" as
    // higher-is-worse, and a hit percentage regresses by shrinking.
    report->BeginRow()
        .Field("case", "scan_warm")
        .Field("frames", static_cast<uint64_t>(frames))
        .Field("entries", kEntries)
        .Field("ms", warm_ms);
  }
}

/// Experiment 3: WAL replay cost — reopen a crash-state directory.
void RunRecoveryCost(const std::string& dir, bench::JsonReport* report) {
  constexpr uint64_t kRows = 4000;
  WipeDir(dir);
  {
    obs::MetricsRegistry metrics;
    engine::Catalog catalog;
    engine::DurableCatalog::Options options;
    options.wal_sync_every = 0;  // build the crash state fast
    options.metrics = &metrics;
    auto durable = engine::DurableCatalog::Open(dir, &catalog, options);
    MOPE_CHECK(durable.ok(), "open for seed");
    auto table = catalog.CreateTable("bench", BenchSchema());
    MOPE_CHECK(table.ok(), "create table");
    MOPE_CHECK((*table)->CreateIndex("c").ok(), "create index");
    for (uint64_t i = 0; i < kRows; ++i) {
      MOPE_CHECK((*table)->Insert(BenchRow(i)).ok(), "insert");
    }
    MOPE_CHECK((*durable)->Sync().ok(), "make the WAL durable");
    // No checkpoint and no clean shutdown: the next Open must replay.
  }

  obs::MetricsRegistry metrics;
  engine::Catalog catalog;
  engine::DurableCatalog::Options options;
  options.metrics = &metrics;
  bench::Stopwatch watch;
  auto durable = engine::DurableCatalog::Open(dir, &catalog, options);
  const double ms = watch.ElapsedMs();
  MOPE_CHECK(durable.ok(), "recovery open");
  MOPE_CHECK((*durable)->recovered_from_crash(), "must be a crash state");
  auto table = catalog.GetTable("bench");
  MOPE_CHECK(table.ok() && (*table)->row_count() == kRows,
             "recovery must restore every row");

  std::printf("\nCrash recovery: replayed %llu rows (WAL + index rebuild) "
              "in %s.\n",
              static_cast<unsigned long long>(kRows),
              bench::FmtMs(ms).c_str());
  report->BeginRow()
      .Field("case", "recovery")
      .Field("rows", kRows)
      .Field("ms", ms);
}

}  // namespace
}  // namespace mope

int main() {
  mope::bench::PrintHeader("Storage engine",
                           "WAL fsync cost, buffer pool scan latency, "
                           "crash recovery replay");
  mope::bench::JsonReport report("storage");
  const std::string dir = mope::ScratchDir();
  mope::RunWalFsyncSweep(dir, &report);
  mope::RunScanSweep(dir, &report);
  mope::RunRecoveryCost(dir, &report);
  mope::WipeDir(dir);
  report.Write();
  return 0;
}
