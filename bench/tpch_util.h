#ifndef MOPE_BENCH_TPCH_UTIL_H_
#define MOPE_BENCH_TPCH_UTIL_H_

/// \file tpch_util.h
/// Shared TPC-H setup for the Figure 13-16 benches: a plaintext catalog for
/// the unencrypted baselines, encrypted systems per proxy configuration,
/// and start-point distributions for the Q4/Q6/Q14 range templates.

#include <functional>
#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "engine/table.h"
#include "net/remote_connection.h"
#include "proxy/system.h"
#include "sql/planner.h"
#include "workload/tpch.h"

namespace mope::bench {

/// Scale used by the runtime benches. The paper uses SF = 1 on PostgreSQL;
/// Figures 13-15 report relative runtimes, which survive scaling
/// (DESIGN.md §3). 0.002 -> ~12k LINEITEM rows.
inline constexpr double kBenchScaleFactor = 0.002;

/// Start-point distribution of a range-query template after τk
/// decomposition (what the proxy's non-adaptive algorithms are given).
inline dist::Distribution TemplateStarts(
    const std::function<query::RangeQuery(mope::BitSource*)>& sample_range,
    uint64_t k, uint64_t samples, mope::BitSource* rng) {
  Histogram hist(workload::kTpchDateDomain);
  for (uint64_t i = 0; i < samples; ++i) {
    const query::RangeQuery q = sample_range(rng);
    for (const auto& piece :
         query::Decompose(q, k, workload::kTpchDateDomain)) {
      hist.Add(piece.start);
    }
  }
  auto d = dist::Distribution::FromHistogram(hist);
  MOPE_CHECK(d.ok(), "template starts");
  return std::move(d).value();
}

/// Plaintext catalog (lineitem indexed on l_shipdate, orders on
/// o_orderdate) for baselines.
inline std::unique_ptr<engine::Catalog> MakePlainCatalog(
    const workload::TpchData& data) {
  auto catalog = std::make_unique<engine::Catalog>();
  auto li = catalog->CreateTable("lineitem", data.lineitem_schema);
  MOPE_CHECK(li.ok(), "lineitem");
  for (const auto& row : data.lineitem) {
    MOPE_CHECK((*li)->Insert(row).ok(), "insert");
  }
  MOPE_CHECK((*li)->CreateIndex("l_shipdate").ok(), "index");
  auto ord = catalog->CreateTable("orders", data.orders_schema);
  MOPE_CHECK(ord.ok(), "orders");
  for (const auto& row : data.orders) {
    MOPE_CHECK((*ord)->Insert(row).ok(), "insert");
  }
  MOPE_CHECK((*ord)->CreateIndex("o_orderdate").ok(), "index");
  auto part = catalog->CreateTable("part", data.part_schema);
  MOPE_CHECK(part.ok(), "part");
  for (const auto& row : data.part) {
    MOPE_CHECK((*part)->Insert(row).ok(), "insert");
  }
  return catalog;
}

/// Encrypted system over LINEITEM with the given query-algorithm settings
/// on l_shipdate. period == 0 selects QueryU. With via_wire, every proxy
/// request runs through the complete wire protocol (encode, frame, CRC,
/// dispatch) against the in-process server, so ServerStats picks up honest
/// bytes_received/bytes_sent numbers.
inline std::unique_ptr<proxy::MopeSystem> MakeEncryptedLineitem(
    const workload::TpchData& data, const dist::Distribution& starts,
    uint64_t k, uint64_t period, size_t batch_size, uint64_t seed = 0x79C4,
    bool via_wire = false) {
  auto system = std::make_unique<proxy::MopeSystem>(seed);
  if (via_wire) {
    proxy::MopeSystem* raw = system.get();
    system->set_connection_factory(
        [raw]() -> Result<std::unique_ptr<proxy::ServerConnection>> {
      return net::MakeLoopbackWireConnection(raw->server());
    });
  }
  proxy::EncryptedColumnSpec spec;
  spec.column = "l_shipdate";
  spec.domain = workload::kTpchDateDomain;
  spec.k = k;
  spec.mode =
      period == 0 ? proxy::QueryMode::kUniform : proxy::QueryMode::kPeriodic;
  spec.period = period;
  spec.batch_size = batch_size;
  MOPE_CHECK(system
                 ->LoadTable("lineitem", data.lineitem_schema, data.lineitem,
                             spec, &starts)
                 .ok(),
             "encrypted load");
  return system;
}

}  // namespace mope::bench

#endif  // MOPE_BENCH_TPCH_UTIL_H_
