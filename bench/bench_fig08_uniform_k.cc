/// Figure 8 — Bandwidth (8a) and Requests (8b) costs for the Uniform query
/// pattern across fixed lengths k, QueryP with period 25, sigma = 5/10/25.
///
/// Bandwidth grows with k (each fake fetches a k-wide range) while Requests
/// falls (fewer tau_k pieces per query) — pick k above the median query
/// length (Section 6.2).

#include "bench/bench_util.h"

int main() {
  mope::bench::PrintHeader("Figure 8", "Uniform cost vs fixed length k");
  mope::bench::JsonReport report("fig08_uniform_k");
  mope::bench::RunLengthSweep(mope::workload::DatasetKind::kUniform,
                              {5.0, 10.0, 25.0},
                              {5, 10, 25, 50, 100, 200, 400, 800},
                              /*period=*/25, /*pad_to=*/0,
                              /*num_queries=*/400, &report);
  report.Write();
  return 0;
}
