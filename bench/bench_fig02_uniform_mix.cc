/// Figure 2 — "The query distribution after we add the fake queries. The
/// real queries are obfuscated and the displacement gap is hidden."
///
/// Runs the same toy workload as Figure 1 through QueryU and shows the
/// perceived (shifted) start distribution becoming uniform: the histogram
/// flattens, the chi-square statistic is consistent with uniform, and the
/// gap attack finds nothing to orient by.

#include <cstdio>

#include "attack/gap_attack.h"
#include "bench/bench_util.h"
#include "common/math_util.h"
#include "common/random.h"
#include "query/algorithms.h"
#include "workload/generator.h"

namespace mope {
namespace {

void Run(bench::JsonReport* report) {
  constexpr uint64_t kDomain = 101;
  constexpr uint64_t kK = 10;
  constexpr uint64_t kOffset = 20;
  constexpr int kUserQueries = 4000;
  Rng rng(0xF162);

  // Skewed user query-start distribution on valid starts.
  std::vector<double> w(kDomain, 0.0);
  for (uint64_t s = 0; s + kK <= kDomain; ++s) {
    w[s] = 1.0 / static_cast<double>(1 + s % 17);
  }
  auto q_starts = dist::Distribution::FromWeights(std::move(w));
  MOPE_CHECK(q_starts.ok(), "weights");

  auto algorithm =
      query::UniformQueryAlgorithm::Create({kDomain, kK}, *q_starts);
  MOPE_CHECK(algorithm.ok(), "QueryU");
  std::printf("\ncoin bias alpha        : %.4f\n", (*algorithm)->plan().alpha);
  std::printf("E[fakes per real query]: %.2f\n",
              (*algorithm)->plan().expected_fakes_per_real());

  attack::GapAttack attack(kDomain);
  uint64_t total_queries = 0;
  for (int i = 0; i < kUserQueries; ++i) {
    uint64_t start = q_starts->Sample(&rng);
    if (start + kK > kDomain) start = kDomain - kK;
    auto batch = (*algorithm)->Process({start, start + kK - 1}, &rng);
    MOPE_CHECK(batch.ok(), "process");
    for (const auto& fq : *batch) {
      attack.ObserveStart((fq.start + kOffset) % kDomain);
      ++total_queries;
    }
  }

  std::printf(
      "\nperceived (shifted) start histogram after mixing "
      "(%llu queries total):\n\n",
      static_cast<unsigned long long>(total_queries));
  std::printf("%s\n", attack.observed().ToAscii(50, 21).c_str());

  const double chi2 = attack.observed().ChiSquareVsUniform();
  const double crit = ChiSquareCriticalValue(kDomain - 1, 0.01);
  std::printf("chi-square vs uniform  : %.1f (crit @ 0.01 = %.1f) -> %s\n",
              chi2, crit,
              chi2 < crit ? "consistent with uniform" : "NOT uniform");
  std::printf("longest uncovered arc  : %llu\n",
              static_cast<unsigned long long>(attack.LongestGap()));
  const auto est = attack.EstimateOffset();
  std::printf("gap attack             : %s (true offset %llu)\n",
              est.ok() ? ("recovered " + std::to_string(est.value())).c_str()
                       : "no gap — attack defeated",
              static_cast<unsigned long long>(kOffset));
  report->BeginRow()
      .Field("alpha", (*algorithm)->plan().alpha)
      .Field("expected_fakes_per_real",
             (*algorithm)->plan().expected_fakes_per_real())
      .Field("total_queries", total_queries)
      .Field("chi_square", chi2)
      .Field("chi_square_crit", crit)
      .Field("uniform", chi2 < crit ? 1 : 0)
      .Field("longest_gap", static_cast<uint64_t>(attack.LongestGap()))
      .Field("attack_recovered",
             est.ok() ? std::to_string(est.value()) : "none");
}

}  // namespace
}  // namespace mope

int main() {
  mope::bench::PrintHeader("Figure 2",
                           "QueryU hides the displacement gap");
  mope::bench::JsonReport report("fig02_uniform_mix");
  mope::Run(&report);
  report.Write();
  return 0;
}
