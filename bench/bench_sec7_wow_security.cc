/// Section 7 — empirical window one-wayness (WOW*-L / WOW*-D, Figure 17).
///
/// Runs the location and distance one-wayness games against the ideal
/// objects for each scheme/query-algorithm pair and prints the measured
/// adversary success rates next to the paper's analytical reference points:
///
///   * plain OPE           : location leaks (~half the high bits);
///   * MOPE, naive queries : the gap attack recovers j, location leaks again;
///   * MOPE + QueryU       : location advantage ~ w/M        (Theorem 3);
///   * MOPE + QueryP[rho]  : location advantage <= rho*w/M   (Theorem 5);
///   * distance            : leaks ~sqrt(M) for every scheme (Theorems 2/4).

#include <cstdio>

#include "attack/wow.h"
#include "bench/bench_util.h"

namespace mope {
namespace {

void Run() {
  attack::WowConfig config;
  config.domain = 1024;
  config.range = 8192;
  config.db_size = 24;
  config.window = 48;
  config.num_queries = 60000;
  config.k = 8;
  config.period = 32;
  config.trials = 150;

  // Skewed user query distribution (class-structured, so QueryP's phase
  // attack has signal to find — the honest worst case for it).
  std::vector<double> w(config.domain);
  for (uint64_t i = 0; i < config.domain; ++i) {
    w[i] = (i % 32 < 8) ? 1.0 : 0.03;
  }
  auto q = dist::Distribution::FromWeights(std::move(w));
  MOPE_CHECK(q.ok(), "weights");

  std::printf(
      "\nM = %llu, N = %llu, n = %llu, w = %llu, q = %llu, k = %llu, "
      "rho = %llu, %llu trials\n",
      static_cast<unsigned long long>(config.domain),
      static_cast<unsigned long long>(config.range),
      static_cast<unsigned long long>(config.db_size),
      static_cast<unsigned long long>(config.window),
      static_cast<unsigned long long>(config.num_queries),
      static_cast<unsigned long long>(config.k),
      static_cast<unsigned long long>(config.period),
      static_cast<unsigned long long>(config.trials));
  const double wm = static_cast<double>(config.window + 1) /
                    static_cast<double>(config.domain);
  std::printf("random-guess location baseline w/M = %.3f; QueryP bound "
              "rho*w/M = %.3f\n",
              wm, static_cast<double>(config.period) * wm);

  struct SchemeRow {
    const char* name;
    attack::WowScheme scheme;
  };
  const SchemeRow schemes[] = {
      {"plain OPE", attack::WowScheme::kOpe},
      {"MOPE, naive queries", attack::WowScheme::kMopeNaive},
      {"MOPE + QueryU", attack::WowScheme::kMopeQueryU},
      {"MOPE + QueryP[32]", attack::WowScheme::kMopeQueryP},
  };

  Rng rng(0x5EC7);
  bench::TablePrinter table(
      {"scheme", "loc adv", "dist adv", "offset rec"}, 22);
  for (const SchemeRow& s : schemes) {
    auto result = attack::RunWowExperiment(config, s.scheme, &*q, &rng);
    MOPE_CHECK(result.ok(), "experiment");
    table.Row({s.name, bench::Fmt(result->location_advantage, 3),
               bench::Fmt(result->distance_advantage, 3),
               bench::Fmt(result->offset_recovery_rate, 3)});
  }
  std::printf(
      "\nreading: QueryU pushes location advantage to the w/M floor while\n"
      "QueryP trades some of that margin (bounded by rho*w/M) for its much\n"
      "lower fake-query cost; distance leaks for the whole OPE family.\n");
}

}  // namespace
}  // namespace mope

int main() {
  mope::bench::PrintHeader("Section 7", "empirical WOW*-L / WOW*-D games");
  mope::Run();
  return 0;
}
