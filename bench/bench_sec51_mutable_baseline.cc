/// Section 5.1 — MOPE vs the interactive ideal-security baseline (mOPE).
///
/// "An advantage of our MOPE schemes compared to another recently proposed
/// scheme that offers increased security over basic OPE [30] is that we do
/// not need to modify the underlying DBMS."
///
/// This bench makes the comparison quantitative: loading n values and
/// running range queries under (a) MOPE — non-interactive, one shot per
/// value, zero stored-value mutations, stock DBMS — and (b) mOPE (Popa et
/// al.) — O(log n) interaction rounds per operation and periodic
/// re-encodings of already-stored values, requiring a protocol-aware server.
/// mOPE's payoff is leaking *only* order (no half-the-bits leakage), which
/// is why the paper treats it as the security ceiling.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/random.h"
#include "ope/mope.h"
#include "ope/mutable_ope.h"

namespace mope {
namespace {

void Run() {
  constexpr uint64_t kDomain = 1 << 20;
  const uint64_t sizes[] = {1000, 10000, 50000};

  std::printf(
      "\nloading n random values (domain 2^20) and running 100 range "
      "queries:\n\n");
  bench::TablePrinter table(
      {"n", "scheme", "rounds/insert", "re-encodings", "rounds/query",
       "load time"},
      15);

  for (uint64_t n : sizes) {
    // --- MOPE: non-interactive. One encryption per value; a range query is
    // one message (two ciphertexts); nothing stored ever changes.
    {
      Rng rng(n);
      auto scheme = ope::MopeScheme::Create(
          {kDomain, ope::SuggestRange(kDomain)},
          ope::MopeKey::Generate(kDomain, &rng));
      MOPE_CHECK(scheme.ok(), "scheme");
      bench::Stopwatch watch;
      for (uint64_t i = 0; i < n; ++i) {
        MOPE_CHECK(scheme->Encrypt(rng.UniformUint64(kDomain)).ok(), "enc");
      }
      for (int q = 0; q < 100; ++q) {
        const uint64_t first = rng.UniformUint64(kDomain - 100);
        MOPE_CHECK(scheme
                       ->EncryptRange(ModularInterval::FromEndpoints(
                           first, first + 99, kDomain))
                       .ok(),
                   "range");
      }
      table.Row({std::to_string(n), "MOPE", "1", "0", "1",
                 bench::FmtMs(watch.ElapsedMs())});
    }

    // --- mOPE: interactive inserts + interactive boundary lookups.
    {
      Rng rng(n ^ 0xFACE);
      crypto::Key128 key;
      key.fill(0x42);
      ope::MutableOpeServer server;
      ope::MutableOpeClient client(key, &server);
      bench::Stopwatch watch;
      for (uint64_t i = 0; i < n; ++i) {
        MOPE_CHECK(client.Insert(rng.UniformUint64(kDomain)).ok(), "insert");
      }
      const uint64_t insert_rounds = server.interaction_rounds();
      for (int q = 0; q < 100; ++q) {
        const uint64_t first = rng.UniformUint64(kDomain - 100);
        MOPE_CHECK(client.LowerBoundEncoding(first).ok(), "lb");
        MOPE_CHECK(client.LowerBoundEncoding(first + 100).ok(), "ub");
      }
      const uint64_t query_rounds =
          server.interaction_rounds() - insert_rounds;
      table.Row({std::to_string(n), "mOPE [30]",
                 bench::Fmt(static_cast<double>(insert_rounds) /
                                static_cast<double>(n),
                            1),
                 std::to_string(server.reencodings()),
                 bench::Fmt(static_cast<double>(query_rounds) / 100.0, 1),
                 bench::FmtMs(watch.ElapsedMs())});
    }
  }
  // Worst case for the mutable part: sorted (e.g. time-ordered) inserts
  // repeatedly exhaust the path budget and each rebalance re-encodes the
  // whole stored column.
  {
    constexpr uint64_t kN = 10000;
    crypto::Key128 key;
    key.fill(0x43);
    ope::MutableOpeServer server;
    ope::MutableOpeClient client(key, &server);
    bench::Stopwatch watch;
    for (uint64_t v = 0; v < kN; ++v) {
      MOPE_CHECK(client.Insert(v).ok(), "insert");
    }
    table.Row({std::to_string(kN) + "*", "mOPE sorted",
               bench::Fmt(static_cast<double>(server.interaction_rounds()) /
                              static_cast<double>(kN),
                          1),
               std::to_string(server.reencodings()), "-",
               bench::FmtMs(watch.ElapsedMs())});
    std::printf(
        "\n(* sorted insert order, e.g. an append-only date column: %llu "
        "rebalances\nre-encoded %llu stored ciphertexts — every one a "
        "server-side UPDATE.)\n",
        static_cast<unsigned long long>(server.rebalances()),
        static_cast<unsigned long long>(server.reencodings()));
  }

  std::printf(
      "\nreading: mOPE buys ideal security (order-only leakage) at O(log n)\n"
      "interactive rounds per operation, re-encoding storms on rebalance,\n"
      "and a DBMS that must speak the protocol. MOPE + QueryU/QueryP keeps\n"
      "the stock-DBMS, one-shot model and instead spends bandwidth on fake\n"
      "queries to protect the offset (Figures 5-15).\n");
}

}  // namespace
}  // namespace mope

int main() {
  mope::bench::PrintHeader(
      "Section 5.1", "MOPE vs the interactive mOPE baseline [30]");
  mope::Run();
  return 0;
}
