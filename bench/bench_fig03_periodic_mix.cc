/// Figure 3 — "The periodic query distribution after we add the fake
/// queries."
///
/// Same toy workload as Figures 1-2, processed by QueryP with period
/// rho = 20: the perceived (shifted) start distribution becomes rho-periodic
/// — cheaper than QueryU, while the phase attack can recover only
/// j mod rho (the log(rho) least-significant bits of the offset).

#include <cstdio>

#include "attack/gap_attack.h"
#include "bench/bench_util.h"
#include "common/random.h"
#include "query/algorithms.h"

namespace mope {
namespace {

void Run(bench::JsonReport* report) {
  constexpr uint64_t kDomain = 100;
  constexpr uint64_t kK = 10;
  constexpr uint64_t kPeriod = 20;
  constexpr uint64_t kOffset = 47;
  constexpr int kUserQueries = 6000;
  Rng rng(0xF163);

  std::vector<double> w(kDomain, 0.0);
  for (uint64_t s = 0; s + kK <= kDomain; ++s) {
    w[s] = 1.0 / static_cast<double>(1 + s % 17);
  }
  auto q_starts = dist::Distribution::FromWeights(std::move(w));
  MOPE_CHECK(q_starts.ok(), "weights");

  auto query_u = query::UniformQueryAlgorithm::Create({kDomain, kK}, *q_starts);
  auto query_p =
      query::PeriodicQueryAlgorithm::Create({kDomain, kK}, *q_starts, kPeriod);
  MOPE_CHECK(query_u.ok() && query_p.ok(), "algorithms");
  std::printf("\nE[fakes per real]  QueryU: %.2f   QueryP[%llu]: %.2f\n",
              (*query_u)->plan().expected_fakes_per_real(),
              static_cast<unsigned long long>(kPeriod),
              (*query_p)->plan().expected_fakes_per_real());

  Histogram observed(kDomain);
  for (int i = 0; i < kUserQueries; ++i) {
    uint64_t start = q_starts->Sample(&rng);
    if (start + kK > kDomain) start = kDomain - kK;
    auto batch = (*query_p)->Process({start, start + kK - 1}, &rng);
    MOPE_CHECK(batch.ok(), "process");
    for (const auto& fq : *batch) {
      observed.Add((fq.start + kOffset) % kDomain);
    }
  }

  std::printf("\nperceived (shifted) start histogram under QueryP[%llu]:\n\n",
              static_cast<unsigned long long>(kPeriod));
  std::printf("%s\n", observed.ToAscii(50, 25).c_str());

  // Periodicity check: correlate bins one period apart.
  double max_period_gap = 0.0;
  const auto probs = observed.Normalized();
  for (uint64_t i = 0; i + kPeriod < kDomain; ++i) {
    max_period_gap =
        std::max(max_period_gap, std::abs(probs[i] - probs[i + kPeriod]));
  }
  std::printf("max |p(i) - p(i+rho)|  : %.4f (0 = perfectly periodic)\n",
              max_period_gap);

  const auto phase =
      attack::EstimatePhase(observed, (*query_p)->plan().perceived, kPeriod);
  std::printf("phase attack           : recovered j mod rho = %s\n",
              phase.ok() ? std::to_string(phase.value()).c_str() : "none");
  std::printf("ground truth           : j = %llu, j mod rho = %llu\n",
              static_cast<unsigned long long>(kOffset),
              static_cast<unsigned long long>(kOffset % kPeriod));
  std::printf(
      "-> the adversary learns the low bits (j mod %llu = %llu) but the\n"
      "   %llu candidate high parts remain equally likely.\n",
      static_cast<unsigned long long>(kPeriod),
      static_cast<unsigned long long>(kOffset % kPeriod),
      static_cast<unsigned long long>(kDomain / kPeriod));
  report->BeginRow()
      .Field("fakes_per_real_query_u",
             (*query_u)->plan().expected_fakes_per_real())
      .Field("fakes_per_real_query_p",
             (*query_p)->plan().expected_fakes_per_real())
      .Field("period", kPeriod)
      .Field("max_period_gap", max_period_gap)
      .Field("phase_recovered",
             phase.ok() ? std::to_string(phase.value()) : "none")
      .Field("offset_mod_period", kOffset % kPeriod)
      .Field("candidate_high_parts", kDomain / kPeriod);
}

}  // namespace
}  // namespace mope

int main() {
  mope::bench::PrintHeader("Figure 3",
                           "QueryP[20] — periodic perceived distribution");
  mope::bench::JsonReport report("fig03_periodic_mix");
  mope::Run(&report);
  report.Write();
  return 0;
}
