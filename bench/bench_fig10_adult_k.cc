/// Figure 10 — Bandwidth (10a) and Requests (10b) costs for the Adult query
/// pattern across fixed lengths k = 5, 10, 25, period 25 (domain padded to
/// 100 so the period divides it).

#include "bench/bench_util.h"

int main() {
  mope::bench::PrintHeader("Figure 10", "Adult cost vs fixed length k");
  mope::bench::JsonReport report("fig10_adult_k");
  mope::bench::RunLengthSweep(mope::workload::DatasetKind::kAdult,
                              {5.0, 10.0}, {5, 10, 25},
                              /*period=*/25, /*pad_to=*/100,
                              /*num_queries=*/2000, &report);
  report.Write();
  return 0;
}
