/// Figure 7 — Bandwidth (7a) and Requests (7b) costs for the SanFran
/// (road-network longitude) query distribution with sigma = 5, 10 and 25,
/// periods n/a, 25, 50, 100, 200, 400.
///
/// SanFran's isolated dense bins give eta_Q << mu_Q, so even small periods
/// slash the fake-query cost — the paper's best case for QueryP.

#include "bench/bench_util.h"

int main() {
  mope::bench::PrintHeader("Figure 7", "SanFran cost vs period");
  mope::bench::JsonReport report("fig07_sanfran_cost");
  mope::bench::RunPeriodSweep(mope::workload::DatasetKind::kSanFran,
                              {5.0, 10.0, 25.0}, /*k=*/10,
                              {0, 25, 50, 100, 200, 400},
                              /*pad_to=*/0, /*num_queries=*/400, &report);
  report.Write();
  return 0;
}
