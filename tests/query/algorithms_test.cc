#include "query/algorithms.h"

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "common/random.h"

namespace mope::query {
namespace {

dist::Distribution Skewed(uint64_t m) {
  std::vector<double> w(m);
  for (uint64_t i = 0; i < m; ++i) w[i] = 1.0 / static_cast<double>(1 + i);
  return std::move(dist::Distribution::FromWeights(std::move(w))).value();
}

TEST(UniformQueryTest, CreateValidates) {
  EXPECT_FALSE(
      UniformQueryAlgorithm::Create({0, 1}, dist::Distribution::Uniform(4)).ok());
  EXPECT_FALSE(
      UniformQueryAlgorithm::Create({4, 5}, dist::Distribution::Uniform(4)).ok());
  EXPECT_FALSE(
      UniformQueryAlgorithm::Create({8, 2}, dist::Distribution::Uniform(4)).ok());
  EXPECT_TRUE(
      UniformQueryAlgorithm::Create({4, 2}, dist::Distribution::Uniform(4)).ok());
}

TEST(UniformQueryTest, BatchContainsAllRealPieces) {
  auto alg = UniformQueryAlgorithm::Create({100, 10}, Skewed(100));
  ASSERT_TRUE(alg.ok());
  Rng rng(1);
  const auto batch = (*alg)->Process(RangeQuery{15, 44}, &rng);
  ASSERT_TRUE(batch.ok());
  std::vector<uint64_t> reals;
  for (const auto& fq : *batch) {
    if (fq.kind == QueryKind::kReal) reals.push_back(fq.start);
  }
  std::sort(reals.begin(), reals.end());
  EXPECT_EQ(reals, (std::vector<uint64_t>{15, 25, 35}));
}

TEST(UniformQueryTest, PerceivedStartDistributionIsUniform) {
  // The core security property of QueryU (Figure 2): over many queries, the
  // combined stream of real+fake start points is uniform on [M].
  constexpr uint64_t kM = 40;
  const dist::Distribution q = Skewed(kM);
  auto alg = UniformQueryAlgorithm::Create({kM, 5}, q);
  ASSERT_TRUE(alg.ok());
  Rng rng(2);
  Histogram perceived(kM);
  for (int i = 0; i < 4000; ++i) {
    // Draw user queries with start distribution q (length k so each query
    // decomposes into exactly one piece).
    uint64_t start = q.Sample(&rng);
    if (start > kM - 5) start = kM - 5;
    const auto batch = (*alg)->Process(RangeQuery{start, start + 4}, &rng);
    ASSERT_TRUE(batch.ok());
    for (const auto& fq : *batch) perceived.Add(fq.start);
  }
  // Clamping start points distorts the top k-1 bins slightly; exclude them
  // from the chi-square check.
  Histogram trimmed(kM - 5);
  for (uint64_t i = 0; i < kM - 5; ++i) trimmed.Add(i, perceived.count(i));
  EXPECT_LT(trimmed.ChiSquareVsUniform(),
            ChiSquareCriticalValue(static_cast<double>(kM - 6), 0.001));
}

TEST(UniformQueryTest, ExpectedFakesMatchesMuM) {
  constexpr uint64_t kM = 30;
  const dist::Distribution q = dist::Distribution::PointMass(kM, 3);
  auto alg = UniformQueryAlgorithm::Create({kM, 1}, q);
  ASSERT_TRUE(alg.ok());
  EXPECT_NEAR((*alg)->plan().expected_fakes_per_real(), kM - 1.0, 1e-9);
  Rng rng(3);
  uint64_t fakes = 0;
  constexpr int kQueries = 3000;
  for (int i = 0; i < kQueries; ++i) {
    const auto batch = (*alg)->Process(RangeQuery{3, 3}, &rng);
    ASSERT_TRUE(batch.ok());
    fakes += batch->size() - 1;
  }
  EXPECT_NEAR(static_cast<double>(fakes) / kQueries, kM - 1.0, 2.5);
}

TEST(UniformQueryTest, UniformUserDistributionSendsNoFakes) {
  auto alg =
      UniformQueryAlgorithm::Create({50, 5}, dist::Distribution::Uniform(50));
  ASSERT_TRUE(alg.ok());
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    const auto batch = (*alg)->Process(RangeQuery{10, 14}, &rng);
    ASSERT_TRUE(batch.ok());
    EXPECT_EQ(batch->size(), 1u);
  }
}

TEST(UniformQueryTest, RejectsInvalidQueries) {
  auto alg =
      UniformQueryAlgorithm::Create({50, 5}, dist::Distribution::Uniform(50));
  Rng rng(5);
  EXPECT_FALSE((*alg)->Process(RangeQuery{10, 9}, &rng).ok());
  EXPECT_FALSE((*alg)->Process(RangeQuery{10, 50}, &rng).ok());
}

TEST(PeriodicQueryTest, PerceivedStartDistributionIsPeriodic) {
  constexpr uint64_t kM = 40;
  constexpr uint64_t kPeriod = 8;
  const dist::Distribution q = Skewed(kM);
  auto alg = PeriodicQueryAlgorithm::Create({kM, 1}, q, kPeriod);
  ASSERT_TRUE(alg.ok());
  Rng rng(6);
  Histogram perceived(kM);
  for (int i = 0; i < 30000; ++i) {
    const uint64_t start = q.Sample(&rng);
    const auto batch = (*alg)->Process(RangeQuery{start, start}, &rng);
    ASSERT_TRUE(batch.ok());
    for (const auto& fq : *batch) perceived.Add(fq.start);
  }
  // Empirical distribution should match the plan's periodic target.
  auto empirical = dist::Distribution::FromHistogram(perceived);
  ASSERT_TRUE(empirical.ok());
  EXPECT_LT(empirical->TotalVariationDistance((*alg)->plan().perceived), 0.02);
}

TEST(PeriodicQueryTest, FewerFakesThanUniform) {
  constexpr uint64_t kM = 64;
  const dist::Distribution q = dist::Distribution::PointMass(kM, 5);
  auto uniform = UniformQueryAlgorithm::Create({kM, 1}, q);
  auto periodic = PeriodicQueryAlgorithm::Create({kM, 1}, q, 16);
  ASSERT_TRUE(uniform.ok() && periodic.ok());
  // Point mass: QueryU needs M-1 = 63 fakes; QueryP[16] needs M/16-1 = 3.
  EXPECT_NEAR((*uniform)->plan().expected_fakes_per_real(), 63.0, 1e-9);
  EXPECT_NEAR((*periodic)->plan().expected_fakes_per_real(), 3.0, 1e-9);
}

TEST(PeriodicQueryTest, RejectsBadPeriod) {
  const dist::Distribution q = dist::Distribution::Uniform(30);
  EXPECT_FALSE(PeriodicQueryAlgorithm::Create({30, 1}, q, 7).ok());
  EXPECT_TRUE(PeriodicQueryAlgorithm::Create({30, 1}, q, 6).ok());
}

TEST(AdaptiveQueryTest, CreateValidatesPeriod) {
  EXPECT_FALSE(AdaptiveQueryAlgorithm::Create({30, 1}, 7).ok());
  EXPECT_TRUE(AdaptiveQueryAlgorithm::Create({30, 1}, 6).ok());
  EXPECT_TRUE(AdaptiveQueryAlgorithm::Create({30, 1}, 0).ok());
}

TEST(AdaptiveQueryTest, ProcessExecutesEveryRealPieceExactlyOnce) {
  auto alg = AdaptiveQueryAlgorithm::Create({20, 2}, 0);
  ASSERT_TRUE(alg.ok());
  Rng rng(8);
  const auto batch = (*alg)->Process(RangeQuery{4, 9}, &rng);
  ASSERT_TRUE(batch.ok());
  std::vector<uint64_t> reals;
  for (const auto& fq : *batch) {
    if (fq.kind == QueryKind::kReal) reals.push_back(fq.start);
  }
  std::sort(reals.begin(), reals.end());
  EXPECT_EQ(reals, (std::vector<uint64_t>{4, 6, 8}));
  EXPECT_EQ((*alg)->buffer().size(), 3u);
}

TEST(AdaptiveQueryTest, FirstQueryIsNearlyAlwaysPrecededByFakes) {
  // After one observation the estimate is a point mass: alpha = 1/M, so the
  // first real piece waits behind ~M-1 fakes on average (Section 1.1).
  constexpr uint64_t kM = 40;
  Rng rng(12);
  double total_fakes = 0.0;
  constexpr int kTrials = 300;
  for (int t = 0; t < kTrials; ++t) {
    auto alg = AdaptiveQueryAlgorithm::Create({kM, 1}, 0);
    ASSERT_TRUE(alg.ok());
    const auto batch = (*alg)->Process(RangeQuery{7, 7}, &rng);
    ASSERT_TRUE(batch.ok());
    total_fakes += static_cast<double>(batch->size() - 1);
  }
  EXPECT_NEAR(total_fakes / kTrials, kM - 1.0, 8.0);
}

TEST(AdaptiveQueryTest, ConvergenceReducesFakeRate) {
  // Section 6.5: as the buffer fills, the per-round fake count converges to
  // the non-adaptive QueryU rate.
  constexpr uint64_t kM = 50;
  const dist::Distribution q = Skewed(kM);
  auto alg = AdaptiveQueryAlgorithm::Create({kM, 1}, 0);
  ASSERT_TRUE(alg.ok());
  Rng rng(9);

  auto run_round = [&](int unique_reals) -> uint64_t {
    uint64_t fakes = 0;
    for (int r = 0; r < unique_reals; ++r) {
      const uint64_t start = q.Sample(&rng);
      const auto batch = (*alg)->Process(RangeQuery{start, start}, &rng);
      EXPECT_TRUE(batch.ok());
      for (const auto& fq : *batch) {
        if (fq.kind == QueryKind::kFake) ++fakes;
      }
    }
    return fakes;
  };

  const uint64_t early = run_round(10);
  for (int warm = 0; warm < 30; ++warm) run_round(10);
  const uint64_t late = run_round(10);
  EXPECT_LT(late, early) << "adaptive algorithm failed to converge";
}

TEST(AdaptiveQueryTest, PeriodicVariantRuns) {
  auto alg = AdaptiveQueryAlgorithm::Create({24, 2}, 6);
  ASSERT_TRUE(alg.ok());
  Rng rng(10);
  const auto batch = (*alg)->Process(RangeQuery{3, 8}, &rng);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ((*alg)->buffer().size(), 3u);  // pieces {3, 5, 7}
}


TEST(CrossOverTest, FreezesOnceEstimateStabilizes) {
  constexpr uint64_t kM = 40;
  const dist::Distribution q = Skewed(kM);
  CrossOverPolicy policy;
  policy.tv_threshold = 0.08;
  policy.min_observations = 128;
  policy.check_interval = 64;
  auto alg = AdaptiveQueryAlgorithm::Create({kM, 1}, 0, policy);
  ASSERT_TRUE(alg.ok());
  Rng rng(21);
  for (int i = 0; i < 2000 && !(*alg)->frozen(); ++i) {
    const uint64_t start = q.Sample(&rng);
    ASSERT_TRUE((*alg)->Process(RangeQuery{start, start}, &rng).ok());
  }
  EXPECT_TRUE((*alg)->frozen());
  // Frozen: the buffer stops growing but queries still work.
  const uint64_t buffered = (*alg)->buffer().size();
  ASSERT_TRUE((*alg)->Process(RangeQuery{3, 3}, &rng).ok());
  EXPECT_EQ((*alg)->buffer().size(), buffered);
}

TEST(CrossOverTest, DisabledPolicyNeverFreezes) {
  constexpr uint64_t kM = 20;
  auto alg = AdaptiveQueryAlgorithm::Create({kM, 1}, 0);
  ASSERT_TRUE(alg.ok());
  Rng rng(22);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE((*alg)->Process(RangeQuery{5, 5}, &rng).ok());
  }
  EXPECT_FALSE((*alg)->frozen());
}

TEST(CrossOverTest, FrozenPlanStillMixesRealAndFake) {
  constexpr uint64_t kM = 30;
  const dist::Distribution q = dist::Distribution::PointMass(kM, 4);
  CrossOverPolicy policy;
  policy.tv_threshold = 0.5;  // freeze quickly
  policy.min_observations = 64;
  policy.check_interval = 32;
  auto alg = AdaptiveQueryAlgorithm::Create({kM, 1}, 0, policy);
  ASSERT_TRUE(alg.ok());
  Rng rng(23);
  uint64_t fakes_after_freeze = 0;
  for (int i = 0; i < 600; ++i) {
    auto batch = (*alg)->Process(RangeQuery{4, 4}, &rng);
    ASSERT_TRUE(batch.ok());
    if ((*alg)->frozen()) {
      for (const auto& fq : *batch) {
        if (fq.kind == QueryKind::kFake) ++fakes_after_freeze;
      }
    }
  }
  ASSERT_TRUE((*alg)->frozen());
  // Point mass still demands ~M-1 fakes per real even when frozen.
  EXPECT_GT(fakes_after_freeze, 1000u);
}

TEST(CrossOverTest, CreateValidatesPolicy) {
  CrossOverPolicy policy;
  policy.tv_threshold = 0.1;
  policy.check_interval = 0;
  EXPECT_FALSE(AdaptiveQueryAlgorithm::Create({30, 1}, 0, policy).ok());
}

}  // namespace
}  // namespace mope::query
