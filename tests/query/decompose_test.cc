#include <gtest/gtest.h>

#include "query/query_types.h"

namespace mope::query {
namespace {

TEST(DecomposeTest, ShortQueryBecomesSingleFixedQuery) {
  // Query shorter than k: one fixed query starting at the same location.
  const auto parts = Decompose(RangeQuery{10, 12}, 10, 100);
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0].start, 10u);
  EXPECT_EQ(parts[0].kind, QueryKind::kReal);
}

TEST(DecomposeTest, ExactMultipleSplitsCleanly) {
  const auto parts = Decompose(RangeQuery{20, 39}, 10, 100);
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0].start, 20u);
  EXPECT_EQ(parts[1].start, 30u);
}

TEST(DecomposeTest, RemainderAddsOneBlock) {
  const auto parts = Decompose(RangeQuery{20, 41}, 10, 100);
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[2].start, 40u);
}

TEST(DecomposeTest, CoverageAlwaysContainsTheQuery) {
  for (uint64_t k : {1ULL, 3ULL, 7ULL, 10ULL}) {
    for (uint64_t first = 0; first < 50; first += 3) {
      for (uint64_t last = first; last < 50; last += 5) {
        const auto parts = Decompose(RangeQuery{first, last}, k, 50);
        std::vector<bool> covered(50, false);
        for (const auto& p : parts) {
          const auto iv = CoverageOf(p, k, 50);
          EXPECT_FALSE(iv.wraps()) << "real queries must not wrap";
          for (uint64_t x = 0; x < 50; ++x) {
            if (iv.Contains(x)) covered[x] = true;
          }
        }
        for (uint64_t x = first; x <= last; ++x) {
          EXPECT_TRUE(covered[x]) << "k=" << k << " [" << first << "," << last
                                  << "] missing " << x;
        }
      }
    }
  }
}

TEST(DecomposeTest, TailBlockShiftsBackAtDomainEnd) {
  // Query touching the end of the domain: the last block must stay inside.
  const auto parts = Decompose(RangeQuery{95, 99}, 10, 100);
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0].start, 90u);  // shifted back to fit
}

TEST(DecomposeTest, FullDomainQuery) {
  const auto parts = Decompose(RangeQuery{0, 99}, 10, 100);
  EXPECT_EQ(parts.size(), 10u);
  for (size_t i = 0; i < parts.size(); ++i) {
    EXPECT_EQ(parts[i].start, 10 * i);
  }
}

TEST(DecomposeTest, KEqualsOneGivesOneQueryPerValue) {
  const auto parts = Decompose(RangeQuery{5, 9}, 1, 100);
  ASSERT_EQ(parts.size(), 5u);
  for (size_t i = 0; i < 5; ++i) EXPECT_EQ(parts[i].start, 5 + i);
}

TEST(DecomposeTest, KEqualsDomain) {
  const auto parts = Decompose(RangeQuery{3, 7}, 100, 100);
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0].start, 0u);
}

TEST(DecomposeTest, NumberOfBlocksIsCeilLenOverK) {
  for (uint64_t len = 1; len <= 40; ++len) {
    const auto parts = Decompose(RangeQuery{0, len - 1}, 7, 100);
    EXPECT_EQ(parts.size(), (len + 6) / 7) << len;
  }
}

}  // namespace
}  // namespace mope::query
