#include "query/cost.h"

#include <gtest/gtest.h>

namespace mope::query {
namespace {

TEST(RecordCounterTest, CountBetween) {
  RecordCounter rc({1, 2, 3, 4, 5});
  EXPECT_EQ(rc.total(), 15u);
  EXPECT_EQ(rc.CountBetween(0, 4), 15u);
  EXPECT_EQ(rc.CountBetween(1, 3), 9u);
  EXPECT_EQ(rc.CountBetween(2, 2), 3u);
}

TEST(RecordCounterTest, CountInWrappingInterval) {
  RecordCounter rc({1, 2, 3, 4, 5});
  // {3, 4, 0}: 4 + 5 + 1 = 10.
  EXPECT_EQ(rc.CountIn(ModularInterval(3, 3, 5)), 10u);
  // Full domain.
  EXPECT_EQ(rc.CountIn(ModularInterval(2, 5, 5)), 15u);
}

TEST(RecordCounterTest, FromHistogram) {
  Histogram h(3);
  h.Add(0, 4);
  h.Add(2, 6);
  const RecordCounter rc = RecordCounter::FromHistogram(h);
  EXPECT_EQ(rc.CountBetween(0, 0), 4u);
  EXPECT_EQ(rc.CountBetween(1, 1), 0u);
  EXPECT_EQ(rc.CountBetween(0, 2), 10u);
}

TEST(CostAccumulatorTest, RequestsFormula) {
  RecordCounter rc(std::vector<uint64_t>(100, 1));
  CostAccumulator cost(&rc, 10);
  // One user query decomposed into 3 reals + 5 fakes.
  std::vector<FixedQuery> batch;
  for (uint64_t s : {10u, 20u, 30u}) {
    batch.push_back(FixedQuery{s, QueryKind::kReal});
  }
  for (uint64_t s : {1u, 2u, 3u, 4u, 5u}) {
    batch.push_back(FixedQuery{s, QueryKind::kFake});
  }
  cost.AddBatch(RangeQuery{10, 34}, batch);
  EXPECT_EQ(cost.real_queries(), 1u);
  EXPECT_EQ(cost.transformed_queries(), 3u);
  EXPECT_EQ(cost.fake_queries(), 5u);
  EXPECT_DOUBLE_EQ(cost.Requests(), 8.0);
}

TEST(CostAccumulatorTest, BandwidthFormula) {
  // Uniform density 1 record/value, k = 10.
  RecordCounter rc(std::vector<uint64_t>(100, 1));
  CostAccumulator cost(&rc, 10);
  // User query [10, 34]: |q| = 25 records; |q| mod k = 5.
  // Two fake queries of length 10 -> 10 records each.
  std::vector<FixedQuery> batch{
      FixedQuery{10, QueryKind::kReal},
      FixedQuery{20, QueryKind::kReal},
      FixedQuery{30, QueryKind::kReal},
      FixedQuery{50, QueryKind::kFake},
      FixedQuery{70, QueryKind::kFake},
  };
  cost.AddBatch(RangeQuery{10, 34}, batch);
  EXPECT_EQ(cost.real_records(), 25u);
  EXPECT_EQ(cost.fake_records(), 20u);
  EXPECT_DOUBLE_EQ(cost.Bandwidth(), (20.0 + 5.0) / 25.0);
}

TEST(CostAccumulatorTest, WrappingFakeQueriesCounted) {
  RecordCounter rc(std::vector<uint64_t>(20, 2));
  CostAccumulator cost(&rc, 8);
  // Fake starting at 16 with k=8 wraps: values {16..19, 0..3} -> 16 records.
  std::vector<FixedQuery> batch{
      FixedQuery{0, QueryKind::kReal},
      FixedQuery{16, QueryKind::kFake},
  };
  cost.AddBatch(RangeQuery{0, 7}, batch);
  EXPECT_EQ(cost.fake_records(), 16u);
}

TEST(CostAccumulatorTest, ZeroStateGivesZeroCosts) {
  RecordCounter rc({1, 1});
  CostAccumulator cost(&rc, 1);
  EXPECT_DOUBLE_EQ(cost.Bandwidth(), 0.0);
  EXPECT_DOUBLE_EQ(cost.Requests(), 0.0);
}

TEST(CostAccumulatorTest, AccumulatesAcrossQueries) {
  RecordCounter rc(std::vector<uint64_t>(50, 1));
  CostAccumulator cost(&rc, 5);
  const std::vector<FixedQuery> batch1{FixedQuery{0, QueryKind::kReal},
                                       FixedQuery{10, QueryKind::kFake}};
  const std::vector<FixedQuery> batch2{FixedQuery{5, QueryKind::kReal}};
  cost.AddBatch(RangeQuery{0, 4}, batch1);
  cost.AddBatch(RangeQuery{5, 9}, batch2);
  EXPECT_EQ(cost.real_queries(), 2u);
  EXPECT_DOUBLE_EQ(cost.Requests(), 3.0 / 2.0);
}

}  // namespace
}  // namespace mope::query
