#include "workload/tpch.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace mope::workload {
namespace {

TEST(TpchTest, RowCountsScale) {
  TpchConfig config;
  config.scale_factor = 0.001;
  const TpchData data = GenerateTpch(config);
  EXPECT_EQ(data.part.size(), 200u);
  EXPECT_EQ(data.orders.size(), 1500u);
  // 1..7 lineitems per order, expectation 4.
  EXPECT_GT(data.lineitem.size(), 2u * data.orders.size());
  EXPECT_LT(data.lineitem.size(), 7u * data.orders.size());
}

TEST(TpchTest, DeterministicFromSeed) {
  TpchConfig config;
  config.scale_factor = 0.0005;
  const TpchData a = GenerateTpch(config);
  const TpchData b = GenerateTpch(config);
  ASSERT_EQ(a.lineitem.size(), b.lineitem.size());
  for (size_t i = 0; i < a.lineitem.size(); i += 50) {
    EXPECT_EQ(std::get<int64_t>(a.lineitem[i][tpch_cols::kLShipDate]),
              std::get<int64_t>(b.lineitem[i][tpch_cols::kLShipDate]));
  }
}

TEST(TpchTest, DatesWithinPopulatedWindow) {
  TpchConfig config;
  config.scale_factor = 0.002;
  const TpchData data = GenerateTpch(config);
  for (const auto& row : data.lineitem) {
    for (size_t col : {tpch_cols::kLShipDate, tpch_cols::kLCommitDate,
                       tpch_cols::kLReceiptDate}) {
      const int64_t day = std::get<int64_t>(row[col]);
      EXPECT_GE(day, 0);
      EXPECT_LE(day, static_cast<int64_t>(TpchLastDay()));
      EXPECT_LT(day, static_cast<int64_t>(kTpchDateDomain));
    }
  }
  for (const auto& row : data.orders) {
    const int64_t day = std::get<int64_t>(row[tpch_cols::kOrderDate]);
    EXPECT_GE(day, 0);
    EXPECT_LE(day, static_cast<int64_t>(TpchLastDay()) - 151);
  }
}

TEST(TpchTest, LineitemDateOrderingInvariants) {
  TpchConfig config;
  config.scale_factor = 0.001;
  const TpchData data = GenerateTpch(config);
  // receiptdate > shipdate always; shipdate > orderdate for its order.
  std::vector<int64_t> order_dates(data.orders.size() + 1, 0);
  for (const auto& row : data.orders) {
    order_dates[static_cast<size_t>(
        std::get<int64_t>(row[tpch_cols::kOrderKey]))] =
        std::get<int64_t>(row[tpch_cols::kOrderDate]);
  }
  for (const auto& row : data.lineitem) {
    const int64_t ship = std::get<int64_t>(row[tpch_cols::kLShipDate]);
    const int64_t receipt = std::get<int64_t>(row[tpch_cols::kLReceiptDate]);
    const int64_t orderkey = std::get<int64_t>(row[tpch_cols::kLOrderKey]);
    EXPECT_GT(receipt, ship);
    EXPECT_GT(ship, order_dates[static_cast<size_t>(orderkey)]);
  }
}

TEST(TpchTest, PromoFlagMatchesTypePrefix) {
  TpchConfig config;
  config.scale_factor = 0.005;
  const TpchData data = GenerateTpch(config);
  int promos = 0;
  for (const auto& row : data.part) {
    const auto& type = std::get<std::string>(row[tpch_cols::kPartType]);
    const int64_t flag = std::get<int64_t>(row[tpch_cols::kPartIsPromo]);
    EXPECT_EQ(flag, type.rfind("PROMO", 0) == 0 ? 1 : 0);
    promos += static_cast<int>(flag);
  }
  // ~1/6 of parts are PROMO.
  EXPECT_NEAR(static_cast<double>(promos) / data.part.size(), 1.0 / 6.0, 0.04);
}

TEST(TpchTest, QueryTemplateRangesMatchThePaper) {
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const Q6Params q6 = SampleQ6(&rng);
    // One year: 365 or 366 days, within 1993..1997(+1 day).
    EXPECT_GE(q6.shipdate.length(), 365u);
    EXPECT_LE(q6.shipdate.length(), 366u);
    EXPECT_GE(q6.shipdate.first, TpchDayIndex({1993, 1, 1}));
    EXPECT_LE(q6.shipdate.last, TpchDayIndex({1997, 12, 31}));
    EXPECT_NEAR(q6.discount_hi - q6.discount_lo, 0.02, 1e-9);

    const Q14Params q14 = SampleQ14(&rng);
    EXPECT_GE(q14.shipdate.length(), 28u);
    EXPECT_LE(q14.shipdate.length(), 31u);

    const Q4Params q4 = SampleQ4(&rng);
    EXPECT_GE(q4.orderdate.length(), 90u);
    EXPECT_LE(q4.orderdate.length(), 92u);
  }
}

TEST(TpchTest, SqlTemplatesMentionTheRightPieces) {
  Rng rng(2);
  const Q6Params q6 = SampleQ6(&rng);
  const std::string sql = Q6Sql(q6);
  EXPECT_NE(sql.find("l_shipdate BETWEEN"), std::string::npos);
  EXPECT_NE(sql.find("l_discount BETWEEN"), std::string::npos);
  EXPECT_NE(sql.find("l_quantity <"), std::string::npos);

  const Q14Params q14 = SampleQ14(&rng);
  EXPECT_NE(Q14PromoSql(q14).find("p_ispromo"), std::string::npos);
  EXPECT_NE(Q14TotalSql(q14).find("JOIN part"), std::string::npos);
  EXPECT_NE(Q1Sql(100).find("GROUP BY l_returnflag"), std::string::npos);
}

TEST(TpchTest, SchemasMatchColumnConstants) {
  TpchConfig config;
  config.scale_factor = 0.0005;
  const TpchData data = GenerateTpch(config);
  EXPECT_EQ(data.lineitem_schema.column(tpch_cols::kLShipDate).name,
            "l_shipdate");
  EXPECT_EQ(data.orders_schema.column(tpch_cols::kOrderDate).name,
            "o_orderdate");
  EXPECT_EQ(data.part_schema.column(tpch_cols::kPartIsPromo).name,
            "p_ispromo");
  EXPECT_TRUE(data.lineitem_schema.Validate(data.lineitem[0]).ok());
  EXPECT_TRUE(data.orders_schema.Validate(data.orders[0]).ok());
  EXPECT_TRUE(data.part_schema.Validate(data.part[0]).ok());
}

}  // namespace
}  // namespace mope::workload
