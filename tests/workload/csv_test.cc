#include "workload/csv.h"

#include <gtest/gtest.h>

#include <cstdio>

namespace mope::workload {
namespace {

using engine::Column;
using engine::Row;
using engine::Schema;
using engine::ValueType;

Schema MakeSchema() {
  return Schema({Column{"id", ValueType::kInt},
                 Column{"price", ValueType::kDouble},
                 Column{"name", ValueType::kString}});
}

TEST(CsvTest, ParsesSimpleRows) {
  const auto rows = ParseCsv(MakeSchema(),
                             "id,price,name\n"
                             "1,2.5,apple\n"
                             "2,0.75,banana\n");
  ASSERT_TRUE(rows.ok()) << rows.status();
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ(std::get<int64_t>((*rows)[0][0]), 1);
  EXPECT_DOUBLE_EQ(std::get<double>((*rows)[1][1]), 0.75);
  EXPECT_EQ(std::get<std::string>((*rows)[1][2]), "banana");
}

TEST(CsvTest, QuotedFieldsWithCommasAndQuotes) {
  const auto rows = ParseCsv(MakeSchema(),
                             "id,price,name\n"
                             "1,1.0,\"a, b\"\n"
                             "2,2.0,\"say \"\"hi\"\"\"\n");
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_EQ(std::get<std::string>((*rows)[0][2]), "a, b");
  EXPECT_EQ(std::get<std::string>((*rows)[1][2]), "say \"hi\"");
}

TEST(CsvTest, CrlfAndBlankLines) {
  const auto rows = ParseCsv(MakeSchema(),
                             "id,price,name\r\n"
                             "1,1.0,x\r\n"
                             "\r\n"
                             "2,2.0,y\r\n");
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_EQ(rows->size(), 2u);
}

TEST(CsvTest, NegativeNumbers) {
  const auto rows = ParseCsv(MakeSchema(), "id,price,name\n-5,-1.25,z\n");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(std::get<int64_t>((*rows)[0][0]), -5);
  EXPECT_DOUBLE_EQ(std::get<double>((*rows)[0][1]), -1.25);
}

TEST(CsvTest, RejectsBadHeader) {
  EXPECT_TRUE(ParseCsv(MakeSchema(), "id,price\n1,2.0\n")
                  .status()
                  .IsParseError());
  EXPECT_TRUE(ParseCsv(MakeSchema(), "id,cost,name\n1,2.0,x\n")
                  .status()
                  .IsParseError());
}

TEST(CsvTest, RejectsBadValuesWithLineNumbers) {
  const auto bad_int =
      ParseCsv(MakeSchema(), "id,price,name\nxx,1.0,a\n");
  ASSERT_TRUE(bad_int.status().IsParseError());
  EXPECT_NE(bad_int.status().message().find("line 2"), std::string::npos);
  EXPECT_TRUE(ParseCsv(MakeSchema(), "id,price,name\n1,notnum,a\n")
                  .status()
                  .IsParseError());
  EXPECT_TRUE(ParseCsv(MakeSchema(), "id,price,name\n1,2.0\n")
                  .status()
                  .IsParseError());
}

TEST(CsvTest, RejectsUnterminatedQuote) {
  EXPECT_TRUE(ParseCsv(MakeSchema(), "id,price,name\n1,1.0,\"oops\n")
                  .status()
                  .IsParseError());
}

TEST(CsvTest, WriteParseRoundTrip) {
  const Schema schema = MakeSchema();
  std::vector<Row> rows{
      Row{int64_t{1}, 2.5, std::string("plain")},
      Row{int64_t{-2}, 0.0, std::string("with, comma")},
      Row{int64_t{3}, 9.75, std::string("with \"quotes\"")},
  };
  const std::string text = WriteCsv(schema, rows);
  const auto parsed = ParseCsv(schema, text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->size(), rows.size());
  for (size_t r = 0; r < rows.size(); ++r) {
    EXPECT_EQ(std::get<int64_t>((*parsed)[r][0]), std::get<int64_t>(rows[r][0]));
    EXPECT_EQ(std::get<std::string>((*parsed)[r][2]),
              std::get<std::string>(rows[r][2]));
  }
}

TEST(CsvTest, FileRoundTrip) {
  const Schema schema = MakeSchema();
  const std::vector<Row> rows{Row{int64_t{7}, 1.5, std::string("disk")}};
  const std::string path = ::testing::TempDir() + "/mope_csv_test.csv";
  ASSERT_TRUE(SaveCsvFile(schema, rows, path).ok());
  const auto loaded = LoadCsvFile(schema, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->size(), 1u);
  EXPECT_EQ(std::get<std::string>((*loaded)[0][2]), "disk");
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileIsNotFound) {
  EXPECT_TRUE(LoadCsvFile(MakeSchema(), "/nonexistent/x.csv")
                  .status()
                  .IsNotFound());
}

}  // namespace
}  // namespace mope::workload
