#include "workload/generator.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "workload/datasets.h"

namespace mope::workload {
namespace {

TEST(GeneratorTest, QueriesAreValidRanges) {
  const auto centers = MakeDataset(DatasetKind::kAdult);
  Rng rng(1);
  for (double sigma : {1.0, 5.0, 10.0, 25.0}) {
    for (int i = 0; i < 2000; ++i) {
      const auto q = GenerateQuery(centers, {sigma}, &rng);
      EXPECT_LE(q.first, q.last);
      EXPECT_LT(q.last, centers.size());
    }
  }
}

TEST(GeneratorTest, LengthScalesWithSigma) {
  const auto centers = dist::Distribution::Uniform(10000);
  Rng rng(2);
  auto mean_len = [&](double sigma) {
    double total = 0.0;
    for (int i = 0; i < 5000; ++i) {
      total += static_cast<double>(GenerateQuery(centers, {sigma}, &rng).length());
    }
    return total / 5000.0;
  };
  const double len5 = mean_len(5.0);
  const double len25 = mean_len(25.0);
  // Half-normal mean is sigma * sqrt(2/pi) ~ 0.8 sigma (floored at 1).
  EXPECT_GT(len25, 3.0 * len5);
  EXPECT_NEAR(len5, 5.0 * std::sqrt(2.0 / M_PI), 1.2);
}

TEST(GeneratorTest, CentersFollowTheDataset) {
  const auto centers = MakeDataset(DatasetKind::kZipf);
  Rng rng(3);
  uint64_t low = 0;
  constexpr int kN = 5000;
  for (int i = 0; i < kN; ++i) {
    if (GenerateQuery(centers, {2.0}, &rng).first < 100) ++low;
  }
  // Zipf concentrates over 40% of its mass in the first 100 values.
  EXPECT_GT(low, kN / 3);
}

TEST(GeneratorTest, GenerateQueriesCount) {
  const auto centers = dist::Distribution::Uniform(100);
  Rng rng(4);
  EXPECT_EQ(GenerateQueries(centers, {5.0}, 123, &rng).size(), 123u);
}

TEST(GeneratorTest, StartDistributionIsOverDecomposedStarts) {
  const auto centers = dist::Distribution::Uniform(500);
  Rng rng(5);
  const auto starts = BuildStartDistribution(centers, {10.0}, 7, 3000, &rng);
  EXPECT_EQ(starts.size(), 500u);
  double sum = 0.0;
  for (uint64_t i = 0; i < starts.size(); ++i) sum += starts.prob(i);
  EXPECT_NEAR(sum, 1.0, 1e-9);
  // Valid starts for k=7 never exceed 500-7.
  for (uint64_t i = 494; i < 500; ++i) {
    EXPECT_DOUBLE_EQ(starts.prob(i), 0.0) << i;
  }
}

TEST(GeneratorTest, SkewedDatasetYieldsSkewedStarts) {
  const auto centers = MakeDataset(DatasetKind::kSanFran);
  Rng rng(6);
  const auto starts = BuildStartDistribution(centers, {10.0}, 10, 5000, &rng);
  EXPECT_GT(starts.max_prob(), 10.0 / static_cast<double>(starts.size()));
}

}  // namespace
}  // namespace mope::workload
