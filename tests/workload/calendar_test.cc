#include "workload/calendar.h"

#include <gtest/gtest.h>

namespace mope::workload {
namespace {

TEST(CalendarTest, EpochConversions) {
  EXPECT_EQ(DaysFromCivil({1970, 1, 1}), 0);
  EXPECT_EQ(DaysFromCivil({1970, 1, 2}), 1);
  EXPECT_EQ(DaysFromCivil({1969, 12, 31}), -1);
  EXPECT_EQ(DaysFromCivil({2000, 3, 1}), 11017);
}

TEST(CalendarTest, RoundTripAcrossYears) {
  for (int64_t d = -40000; d <= 40000; d += 97) {
    EXPECT_EQ(DaysFromCivil(CivilFromDays(d)), d);
  }
}

TEST(CalendarTest, LeapYearHandling) {
  // 1992 and 1996 are leap years in the TPC-H window.
  EXPECT_EQ(DaysFromCivil({1992, 3, 1}) - DaysFromCivil({1992, 2, 1}), 29);
  EXPECT_EQ(DaysFromCivil({1996, 3, 1}) - DaysFromCivil({1996, 2, 1}), 29);
  EXPECT_EQ(DaysFromCivil({1993, 3, 1}) - DaysFromCivil({1993, 2, 1}), 28);
  // 1900 was not a leap year; 2000 was.
  EXPECT_EQ(DaysFromCivil({1900, 3, 1}) - DaysFromCivil({1900, 2, 1}), 28);
  EXPECT_EQ(DaysFromCivil({2000, 3, 1}) - DaysFromCivil({2000, 2, 1}), 29);
}

TEST(CalendarTest, TpchDayIndexBasics) {
  EXPECT_EQ(TpchDayIndex({1992, 1, 1}), 0u);
  EXPECT_EQ(TpchDayIndex({1992, 1, 31}), 30u);
  EXPECT_EQ(TpchDayIndex({1993, 1, 1}), 366u);  // 1992 is a leap year
  EXPECT_EQ(TpchLastDay(), 2556u);              // 7 years, 2 leap days
}

TEST(CalendarTest, TpchDateFromIndexRoundTrip) {
  for (uint64_t idx = 0; idx <= TpchLastDay(); idx += 13) {
    EXPECT_EQ(TpchDayIndex(TpchDateFromIndex(idx)), idx);
  }
}

TEST(CalendarTest, DomainFitsAllPopulatedDates) {
  EXPECT_GT(kTpchDateDomain, TpchLastDay());
}

TEST(CalendarTest, EveryBenchPeriodDividesTheDomain) {
  for (uint64_t period : {kPeriod15Days, kPeriod1Month, kPeriod2Months,
                          kPeriod3Months, kPeriod6Months, kPeriod1Year}) {
    EXPECT_EQ(kTpchDateDomain % period, 0u) << period;
  }
}

TEST(CalendarTest, FormatDate) {
  EXPECT_EQ(FormatDate({1995, 7, 4}), "1995-07-04");
  EXPECT_EQ(FormatDate({1992, 1, 1}), "1992-01-01");
}

}  // namespace
}  // namespace mope::workload
