#include "workload/datasets.h"

#include <gtest/gtest.h>

#include <cmath>

#include <numeric>

#include "common/random.h"
#include "dist/completion.h"

namespace mope::workload {
namespace {

class DatasetSweepTest : public ::testing::TestWithParam<DatasetKind> {};

TEST_P(DatasetSweepTest, IsValidDistributionOnDeclaredDomain) {
  const DatasetKind kind = GetParam();
  const dist::Distribution d = MakeDataset(kind);
  EXPECT_EQ(d.size(), DatasetDomain(kind));
  double sum = 0.0;
  for (uint64_t i = 0; i < d.size(); ++i) {
    EXPECT_GE(d.prob(i), 0.0);
    sum += d.prob(i);
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST_P(DatasetSweepTest, DeterministicCountsSumExactly) {
  const dist::Distribution d = MakeDataset(GetParam());
  for (uint64_t total : {100ULL, 12345ULL, 100000ULL}) {
    const auto counts = DeterministicCounts(d, total);
    EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), uint64_t{0}),
              total);
  }
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, DatasetSweepTest,
                         ::testing::Values(DatasetKind::kUniform,
                                           DatasetKind::kZipf,
                                           DatasetKind::kAdult,
                                           DatasetKind::kCovertype,
                                           DatasetKind::kSanFran));

TEST(DatasetsTest, DomainsMatchThePaper) {
  EXPECT_EQ(DatasetDomain(DatasetKind::kUniform), 10000u);
  EXPECT_EQ(DatasetDomain(DatasetKind::kZipf), 10000u);
  EXPECT_EQ(DatasetDomain(DatasetKind::kAdult), 74u);       // ages 17..90
  EXPECT_EQ(DatasetDomain(DatasetKind::kCovertype), 2000u); // 1859..3858
  EXPECT_EQ(DatasetDomain(DatasetKind::kSanFran), 10000u);
}

TEST(DatasetsTest, NamesAreStable) {
  EXPECT_STREQ(DatasetName(DatasetKind::kAdult), "adult");
  EXPECT_STREQ(DatasetName(DatasetKind::kSanFran), "sanfrancisco");
}

TEST(DatasetsTest, UniformIsFlatZipfIsNot) {
  const auto uniform = MakeDataset(DatasetKind::kUniform);
  EXPECT_NEAR(uniform.max_prob(), 1.0 / 10000.0, 1e-12);
  const auto zipf = MakeDataset(DatasetKind::kZipf);
  EXPECT_GT(zipf.max_prob(), 100.0 * zipf.prob(9999));
  EXPECT_EQ(zipf.argmax(), 0u);
}

TEST(DatasetsTest, AdultIsRightSkewedWorkingAgeBulge) {
  const auto adult = MakeDataset(DatasetKind::kAdult);
  // Mode in the 20s-40s (index = age - 17), tail thin at 90.
  const uint64_t mode_age = adult.argmax() + 17;
  EXPECT_GE(mode_age, 22u);
  EXPECT_LE(mode_age, 45u);
  EXPECT_LT(adult.prob(90 - 17), adult.max_prob() / 5.0);
}

TEST(DatasetsTest, CovertypeIsMultimodalAroundTheMainBand) {
  const auto cov = MakeDataset(DatasetKind::kCovertype);
  const uint64_t mode_elev = cov.argmax() + 1859;
  EXPECT_GE(mode_elev, 2800u);
  EXPECT_LE(mode_elev, 3100u);
}

TEST(DatasetsTest, SanFranHasStrongClusters) {
  // Clusterable skew is what makes QueryP effective on SanFran (Fig. 7):
  // the completion cost collapses once the period aligns with clusters.
  const auto sf = MakeDataset(DatasetKind::kSanFran);
  EXPECT_GT(sf.max_prob(), 20.0 / 10000.0);
  // QueryP with a modest period must beat QueryU substantially.
  auto uniform_plan = dist::MakeUniformPlan(sf);
  auto periodic_plan = dist::MakePeriodicPlan(sf, 100);
  ASSERT_TRUE(uniform_plan.ok() && periodic_plan.ok());
  EXPECT_LT(periodic_plan->expected_fakes_per_real(),
            uniform_plan->expected_fakes_per_real() / 3.0);
}

TEST(DatasetsTest, SampleCountsApproximateDeterministicCounts) {
  const auto adult = MakeDataset(DatasetKind::kAdult);
  Rng rng(5);
  const auto sampled = SampleCounts(adult, 50000, &rng);
  const auto expected = DeterministicCounts(adult, 50000);
  ASSERT_EQ(sampled.size(), expected.size());
  uint64_t total = 0;
  for (size_t i = 0; i < sampled.size(); ++i) {
    total += sampled[i];
    const double e = static_cast<double>(expected[i]);
    EXPECT_NEAR(static_cast<double>(sampled[i]), e,
                5.0 * std::sqrt(e + 25.0))
        << i;
  }
  EXPECT_EQ(total, 50000u);
}

}  // namespace
}  // namespace mope::workload
