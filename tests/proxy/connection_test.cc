#include "proxy/connection.h"

#include <gtest/gtest.h>

#include "proxy/proxy.h"

namespace mope::proxy {
namespace {

using engine::Column;
using engine::DbServer;
using engine::Row;
using engine::RowId;
using engine::Schema;
using engine::ValueType;

constexpr uint64_t kDomain = 64;

/// Test double: fails the first `failures` requests with a transient error,
/// then delegates to the real server.
class FlakyConnection final : public ServerConnection {
 public:
  FlakyConnection(DbServer* server, int failures)
      : real_(server), failures_left_(failures) {}

  Result<std::vector<std::pair<RowId, Row>>> ExecuteRangeBatch(
      const std::string& table, const std::string& column,
      const std::vector<ModularInterval>& ranges) override {
    ++requests_;
    if (failures_left_ > 0) {
      --failures_left_;
      return Status::Internal("simulated network failure");
    }
    return real_.ExecuteRangeBatch(table, column, ranges);
  }

  Result<engine::Schema> GetSchema(const std::string& table) override {
    return real_.GetSchema(table);
  }

  int requests() const { return requests_; }

 private:
  DirectConnection real_;
  int failures_left_;
  int requests_ = 0;
};

struct Fixture {
  explicit Fixture(uint64_t seed = 77) : rng(seed) {
    auto table = server.catalog()->CreateTable(
        "data", Schema({Column{"key", ValueType::kInt}}));
    EXPECT_TRUE(table.ok());
    key = ope::MopeKey::Generate(kDomain, &rng);
    params = ope::OpeParams{kDomain, ope::SuggestRange(kDomain)};
    auto scheme = ope::MopeScheme::Create(params, key);
    EXPECT_TRUE(scheme.ok());
    for (uint64_t v = 0; v < kDomain; ++v) {
      EXPECT_TRUE((*table)->Insert({static_cast<int64_t>(
                                       scheme->Encrypt(v).value())})
                      .ok());
    }
    EXPECT_TRUE((*table)->CreateIndex("key").ok());
  }

  ProxyConfig Config(uint32_t retries) const {
    ProxyConfig config;
    config.table = "data";
    config.column = "key";
    config.domain = kDomain;
    config.k = 4;
    config.mode = QueryMode::kPassthrough;
    config.max_retries = retries;
    return config;
  }

  DbServer server;
  Rng rng;
  ope::MopeKey key;
  ope::OpeParams params;
};

TEST(ConnectionTest, DirectConnectionDelegates) {
  Fixture fx;
  DirectConnection conn(&fx.server);
  auto schema = conn.GetSchema("data");
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->num_columns(), 1u);
  auto rows = conn.ExecuteRangeBatch(
      "data", "key", {ModularInterval(0, fx.params.range, fx.params.range)});
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), kDomain);
}

TEST(ConnectionTest, ProxyRetriesTransientFailures) {
  Fixture fx;
  auto flaky = std::make_unique<FlakyConnection>(&fx.server, 2);
  FlakyConnection* flaky_raw = flaky.get();
  auto proxy = Proxy::Create(fx.Config(/*retries=*/3), fx.key, fx.params,
                             std::move(flaky));
  ASSERT_TRUE(proxy.ok()) << proxy.status();
  auto resp = (*proxy)->ExecuteRange({10, 13});
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_EQ(resp->rows.size(), 4u);
  EXPECT_EQ((*proxy)->retries_performed(), 2u);
  EXPECT_EQ(flaky_raw->requests(), 3);  // 2 failures + 1 success
}

TEST(ConnectionTest, ProxyGivesUpAfterMaxRetries) {
  Fixture fx;
  auto proxy = Proxy::Create(fx.Config(/*retries=*/1), fx.key, fx.params,
                             std::make_unique<FlakyConnection>(&fx.server, 5));
  ASSERT_TRUE(proxy.ok());
  auto resp = (*proxy)->ExecuteRange({10, 13});
  EXPECT_TRUE(resp.status().IsInternal());
  EXPECT_EQ((*proxy)->retries_performed(), 1u);
}

TEST(ConnectionTest, ZeroRetriesFailsImmediately) {
  Fixture fx;
  auto proxy = Proxy::Create(fx.Config(/*retries=*/0), fx.key, fx.params,
                             std::make_unique<FlakyConnection>(&fx.server, 1));
  ASSERT_TRUE(proxy.ok());
  EXPECT_FALSE((*proxy)->ExecuteRange({10, 13}).ok());
}

TEST(ConnectionTest, RotationUnavailableOverCustomConnection) {
  Fixture fx;
  auto proxy = Proxy::Create(fx.Config(0), fx.key, fx.params,
                             std::make_unique<FlakyConnection>(&fx.server, 0));
  ASSERT_TRUE(proxy.ok());
  Rng rng(1);
  EXPECT_TRUE((*proxy)->RotateKey(&rng).status().IsNotSupported());
}

TEST(ConnectionTest, RetriedBatchesDoNotDuplicateRows) {
  // A batch that fails after partially... (our failures are all-or-nothing,
  // but a retry after a *successful* send must not double rows; the seen-set
  // dedup guards both cases). Exercise retries with overlapping queries.
  Fixture fx;
  auto proxy = Proxy::Create(fx.Config(/*retries=*/5), fx.key, fx.params,
                             std::make_unique<FlakyConnection>(&fx.server, 3));
  ASSERT_TRUE(proxy.ok());
  auto resp = (*proxy)->ExecuteRange({0, 15});
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->rows.size(), 16u);
}

}  // namespace
}  // namespace mope::proxy
