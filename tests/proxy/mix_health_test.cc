#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "dist/distribution.h"
#include "proxy/system.h"
#include "query/query_types.h"

namespace mope::proxy {
namespace {

using engine::Column;
using engine::Row;
using engine::Schema;
using engine::ValueType;
using query::RangeQuery;

constexpr uint64_t kDomain = 100;
constexpr uint64_t kK = 10;

// The trusted side's half of the leakage story: the proxy publishes
// proxy.mix.* gauges comparing the realized fake rate and issued-start
// distribution against the algorithm's mixing plan, so an operator can tell
// a broken fake sampler apart from a healthy one *before* the server-side
// auditor sees the divergence.

std::map<std::string, int64_t> MixGauges(const MopeSystem& system) {
  std::map<std::string, int64_t> out;
  for (const auto& [name, value] : system.metrics()->Snapshot()) {
    if (name.rfind("proxy.mix.", 0) == 0) {
      // Gauges are bit-cast to u64 in snapshots; undo it.
      out[name] = static_cast<int64_t>(value);
    }
  }
  return out;
}

TEST(MixHealthTest, UniformModePublishesPlanAndRealizedRates) {
  MopeSystem system(41);
  std::vector<double> w(kDomain);
  for (uint64_t i = 0; i < kDomain; ++i) w[i] = (i < 10) ? 1.0 : 0.01;
  auto skew = dist::Distribution::FromWeights(std::move(w));
  ASSERT_TRUE(skew.ok());
  EncryptedColumnSpec spec;
  spec.column = "key";
  spec.domain = kDomain;
  spec.k = kK;
  spec.mode = QueryMode::kUniform;
  Schema schema({Column{"key", ValueType::kInt}});
  std::vector<Row> rows;
  for (int64_t v = 0; v < static_cast<int64_t>(kDomain); ++v) {
    rows.push_back(Row{v});
  }
  ASSERT_TRUE(system.LoadTable("t", schema, rows, spec, &*skew).ok());

  // User queries must actually follow the declared Q for the mixing identity
  // (and thus the TV gauge) to converge; sample piece starts from it.
  Rng user_rng(99);
  uint64_t reals = 0, fakes = 0;
  for (int i = 0; i < 300; ++i) {
    uint64_t start = skew->Sample(&user_rng);
    if (start > kDomain - kK) start = kDomain - kK;
    auto resp = system.Query("t", "key", RangeQuery{start, start + kK - 1});
    ASSERT_TRUE(resp.ok()) << resp.status();
    reals += resp->real_queries_sent;
    fakes += resp->fake_queries_sent;
  }
  ASSERT_GT(fakes, 0u);

  const auto gauges = MixGauges(system);
  ASSERT_EQ(gauges.count("proxy.mix.fakes_per_real_milli"), 1u);
  ASSERT_EQ(gauges.count("proxy.mix.expected_fakes_per_real_milli"), 1u);
  ASSERT_EQ(gauges.count("proxy.mix.sampler_tv_milli"), 1u);

  // Realized gauge is exactly the counters' ratio, in milli-units.
  const int64_t realized = gauges.at("proxy.mix.fakes_per_real_milli");
  EXPECT_EQ(realized,
            static_cast<int64_t>(1000.0 * static_cast<double>(fakes) /
                                     static_cast<double>(reals) +
                                 0.5));

  // Plan gauge is mu_Q * M - 1 (in milli); the realized rate converges to it
  // — geometric sampling noise bounded to 25% after ~300 queries.
  const int64_t expected = gauges.at("proxy.mix.expected_fakes_per_real_milli");
  EXPECT_GT(expected, 0);
  const double rel = static_cast<double>(realized - expected) /
                     static_cast<double>(expected);
  EXPECT_LT(rel < 0 ? -rel : rel, 0.25);

  // Healthy sampler: issued starts track the perceived (uniform) target.
  // TV distance is milli-scaled; < 250 means the empirical mix is within
  // 0.25 of the target — far from the ~0.9 a fakeless stream would show.
  EXPECT_LT(gauges.at("proxy.mix.sampler_tv_milli"), 250);
  EXPECT_GE(gauges.at("proxy.mix.sampler_tv_milli"), 0);
}

TEST(MixHealthTest, AdaptiveModePublishesOnlyAfterPlanFreezes) {
  MopeSystem system(42);
  EncryptedColumnSpec spec;
  spec.column = "key";
  spec.domain = kDomain;
  spec.k = kK;
  spec.mode = QueryMode::kAdaptiveUniform;
  Schema schema({Column{"key", ValueType::kInt}});
  std::vector<Row> rows;
  for (int64_t v = 0; v < static_cast<int64_t>(kDomain); ++v) {
    rows.push_back(Row{v});
  }
  ASSERT_TRUE(system.LoadTable("t", schema, rows, spec).ok());

  // Before any query the plan hasn't frozen: the expected-fakes gauge (the
  // plan-derived one) stays unset at 0.
  EXPECT_EQ(MixGauges(system)["proxy.mix.expected_fakes_per_real_milli"], 0);

  for (int i = 0; i < 200; ++i) {
    const uint64_t start = (3 * static_cast<uint64_t>(i)) % (kDomain - kK);
    auto resp = system.Query("t", "key", RangeQuery{start, start + kK - 1});
    ASSERT_TRUE(resp.ok()) << resp.status();
  }
  // The realized-rate gauge tracks the counters regardless of plan state.
  EXPECT_GE(MixGauges(system).at("proxy.mix.fakes_per_real_milli"), 0);
}

}  // namespace
}  // namespace mope::proxy
