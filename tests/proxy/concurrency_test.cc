/// Figure 4 has a *set of clients* sharing one trusted proxy: concurrent
/// ExecuteRange calls (and a key rotation racing them) must all return
/// exact answers.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "proxy/system.h"

namespace mope::proxy {
namespace {

using engine::Row;
using query::RangeQuery;

constexpr uint64_t kDomain = 300;

TEST(ConcurrencyTest, ManyClientsShareOneProxy) {
  MopeSystem system(0xC0C0);
  EncryptedColumnSpec spec;
  spec.column = "v";
  spec.domain = kDomain;
  spec.k = 8;
  spec.mode = QueryMode::kAdaptiveUniform;
  spec.batch_size = 16;
  std::vector<Row> rows;
  for (int64_t v = 0; v < static_cast<int64_t>(kDomain); ++v) {
    rows.push_back(Row{v});
  }
  ASSERT_TRUE(system
                  .LoadTable("t", engine::Schema({{"v", engine::ValueType::kInt}}),
                             rows, spec)
                  .ok());

  constexpr int kClients = 8;
  constexpr int kQueriesPerClient = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&system, &failures, c] {
      Rng rng(static_cast<uint64_t>(c) + 1);
      for (int i = 0; i < kQueriesPerClient; ++i) {
        const uint64_t first = rng.UniformUint64(kDomain - 20);
        const RangeQuery q{first, first + 19};
        auto resp = system.Query("t", "v", q);
        if (!resp.ok() || resp->rows.size() != 20) {
          ++failures;
          continue;
        }
        for (const Row& row : resp->rows) {
          const int64_t v = std::get<int64_t>(row[0]);
          if (v < static_cast<int64_t>(q.first) ||
              v > static_cast<int64_t>(q.last)) {
            ++failures;
          }
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ConcurrencyTest, RotationRacesWithClients) {
  MopeSystem system(0xC0C1);
  EncryptedColumnSpec spec;
  spec.column = "v";
  spec.domain = kDomain;
  spec.k = 8;
  spec.mode = QueryMode::kAdaptiveUniform;
  spec.batch_size = 16;
  std::vector<Row> rows;
  for (int64_t v = 0; v < static_cast<int64_t>(kDomain); ++v) {
    rows.push_back(Row{v});
  }
  ASSERT_TRUE(system
                  .LoadTable("t", engine::Schema({{"v", engine::ValueType::kInt}}),
                             rows, spec)
                  .ok());

  std::atomic<int> failures{0};
  std::atomic<bool> stop{false};
  std::thread rotator([&system, &failures, &stop] {
    for (int r = 0; r < 5; ++r) {
      if (!system.RotateKey("t", "v").ok()) ++failures;
    }
    stop = true;
  });
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&system, &failures, &stop, c] {
      Rng rng(static_cast<uint64_t>(c) + 100);
      while (!stop) {
        const uint64_t first = rng.UniformUint64(kDomain - 10);
        auto resp = system.Query("t", "v", RangeQuery{first, first + 9});
        if (!resp.ok() || resp->rows.size() != 10) ++failures;
      }
    });
  }
  rotator.join();
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
}

/// The single-value accessors (EncryptValue / DecryptValue) and the stats
/// readers (totals / retries_performed) take the proxy lock, so they can
/// race queries and a key rotation without tearing: an Encrypt must use a
/// coherent key (never half-rotated state), and totals() snapshots must be
/// internally consistent. Regression for the formerly lock-free accessors.
TEST(ConcurrencyTest, AccessorsRaceWithRotation) {
  MopeSystem system(0xC0C2);
  EncryptedColumnSpec spec;
  spec.column = "v";
  spec.domain = kDomain;
  spec.k = 8;
  spec.mode = QueryMode::kAdaptiveUniform;
  spec.batch_size = 16;
  std::vector<Row> rows;
  for (int64_t v = 0; v < static_cast<int64_t>(kDomain); ++v) {
    rows.push_back(Row{v});
  }
  ASSERT_TRUE(system
                  .LoadTable("t", engine::Schema({{"v", engine::ValueType::kInt}}),
                             rows, spec)
                  .ok());
  auto proxy = system.GetProxy("t", "v");
  ASSERT_TRUE(proxy.ok());

  std::atomic<int> failures{0};
  std::atomic<bool> stop{false};
  std::thread rotator([&system, &failures, &stop] {
    for (int r = 0; r < 5; ++r) {
      if (!system.RotateKey("t", "v").ok()) ++failures;
    }
    stop = true;
  });
  std::thread querier([&system, &failures, &stop] {
    Rng rng(0xBEEF);
    while (!stop) {
      const uint64_t first = rng.UniformUint64(kDomain - 10);
      auto resp = system.Query("t", "v", RangeQuery{first, first + 9});
      if (!resp.ok() || resp->rows.size() != 10) ++failures;
    }
  });
  std::thread encryptor([&proxy, &failures, &stop] {
    Rng rng(0xF00D);
    while (!stop) {
      const uint64_t m = rng.UniformUint64(kDomain);
      // Encrypting an in-domain value must succeed under any key; the lock
      // makes the call atomic against RotateKey's key swap. Decrypting that
      // cipher may land under a *different* key (rotation can interleave
      // between the two calls), and a cipher from the old key is allowed to
      // be invalid under the new one — so exercise the locked path but only
      // assert encryption.
      auto c = (*proxy)->EncryptValue(m);
      if (!c.ok()) {
        ++failures;
        continue;
      }
      (void)(*proxy)->DecryptValue(*c);
    }
  });
  std::thread stats_reader([&proxy, &failures, &stop] {
    uint64_t last_queries = 0;
    uint64_t last_retries = 0;
    while (!stop) {
      // totals() is a by-value snapshot taken under the lock, so the
      // accumulated counters can only grow between reads; a regression to
      // the old unlocked reference would let tsan (and, with enough luck,
      // these monotonicity checks) catch the tear.
      const QueryResponse totals = (*proxy)->totals();
      const uint64_t queries =
          totals.real_queries_sent + totals.fake_queries_sent;
      if (queries < last_queries) ++failures;
      last_queries = queries;
      const uint64_t retries = (*proxy)->retries_performed();
      if (retries < last_retries) ++failures;
      last_retries = retries;
    }
  });
  rotator.join();
  querier.join();
  encryptor.join();
  stats_reader.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace mope::proxy
