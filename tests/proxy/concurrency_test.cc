/// Figure 4 has a *set of clients* sharing one trusted proxy: concurrent
/// ExecuteRange calls (and a key rotation racing them) must all return
/// exact answers.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "proxy/system.h"

namespace mope::proxy {
namespace {

using engine::Row;
using query::RangeQuery;

constexpr uint64_t kDomain = 300;

TEST(ConcurrencyTest, ManyClientsShareOneProxy) {
  MopeSystem system(0xC0C0);
  EncryptedColumnSpec spec;
  spec.column = "v";
  spec.domain = kDomain;
  spec.k = 8;
  spec.mode = QueryMode::kAdaptiveUniform;
  spec.batch_size = 16;
  std::vector<Row> rows;
  for (int64_t v = 0; v < static_cast<int64_t>(kDomain); ++v) {
    rows.push_back(Row{v});
  }
  ASSERT_TRUE(system
                  .LoadTable("t", engine::Schema({{"v", engine::ValueType::kInt}}),
                             rows, spec)
                  .ok());

  constexpr int kClients = 8;
  constexpr int kQueriesPerClient = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&system, &failures, c] {
      Rng rng(static_cast<uint64_t>(c) + 1);
      for (int i = 0; i < kQueriesPerClient; ++i) {
        const uint64_t first = rng.UniformUint64(kDomain - 20);
        const RangeQuery q{first, first + 19};
        auto resp = system.Query("t", "v", q);
        if (!resp.ok() || resp->rows.size() != 20) {
          ++failures;
          continue;
        }
        for (const Row& row : resp->rows) {
          const int64_t v = std::get<int64_t>(row[0]);
          if (v < static_cast<int64_t>(q.first) ||
              v > static_cast<int64_t>(q.last)) {
            ++failures;
          }
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ConcurrencyTest, RotationRacesWithClients) {
  MopeSystem system(0xC0C1);
  EncryptedColumnSpec spec;
  spec.column = "v";
  spec.domain = kDomain;
  spec.k = 8;
  spec.mode = QueryMode::kAdaptiveUniform;
  spec.batch_size = 16;
  std::vector<Row> rows;
  for (int64_t v = 0; v < static_cast<int64_t>(kDomain); ++v) {
    rows.push_back(Row{v});
  }
  ASSERT_TRUE(system
                  .LoadTable("t", engine::Schema({{"v", engine::ValueType::kInt}}),
                             rows, spec)
                  .ok());

  std::atomic<int> failures{0};
  std::atomic<bool> stop{false};
  std::thread rotator([&system, &failures, &stop] {
    for (int r = 0; r < 5; ++r) {
      if (!system.RotateKey("t", "v").ok()) ++failures;
    }
    stop = true;
  });
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&system, &failures, &stop, c] {
      Rng rng(static_cast<uint64_t>(c) + 100);
      while (!stop) {
        const uint64_t first = rng.UniformUint64(kDomain - 10);
        auto resp = system.Query("t", "v", RangeQuery{first, first + 9});
        if (!resp.ok() || resp->rows.size() != 10) ++failures;
      }
    });
  }
  rotator.join();
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace mope::proxy
