#include "proxy/proxy.h"

#include <gtest/gtest.h>

#include <set>

#include "proxy/system.h"
#include "workload/datasets.h"

namespace mope::proxy {
namespace {

using engine::Column;
using engine::Row;
using engine::Schema;
using engine::ValueType;
using query::RangeQuery;

constexpr uint64_t kDomain = 200;

/// Rows (key, payload): 3 rows per key value in [0, kDomain).
std::vector<Row> MakeRows() {
  std::vector<Row> rows;
  for (int64_t v = 0; v < static_cast<int64_t>(kDomain); ++v) {
    for (int64_t c = 0; c < 3; ++c) {
      rows.push_back(Row{v, v * 1000 + c});
    }
  }
  return rows;
}

Schema MakeSchema() {
  return Schema({Column{"key", ValueType::kInt},
                 Column{"payload", ValueType::kInt}});
}

EncryptedColumnSpec Spec(QueryMode mode, uint64_t period = 0,
                         size_t batch = 1) {
  EncryptedColumnSpec spec;
  spec.column = "key";
  spec.domain = kDomain;
  spec.k = 10;
  spec.mode = mode;
  spec.period = period;
  spec.batch_size = batch;
  return spec;
}

void ExpectCorrectAnswer(const QueryResponse& resp, const RangeQuery& q) {
  // Exactly the 3 rows per key in [q.first, q.last], each exactly once.
  ASSERT_EQ(resp.rows.size(), 3 * q.length());
  std::multiset<int64_t> payloads;
  for (const Row& row : resp.rows) {
    const int64_t key = std::get<int64_t>(row[0]);
    EXPECT_GE(key, static_cast<int64_t>(q.first));
    EXPECT_LE(key, static_cast<int64_t>(q.last));
    payloads.insert(std::get<int64_t>(row[1]));
  }
  EXPECT_EQ(payloads.size(), resp.rows.size());
  for (int64_t v = static_cast<int64_t>(q.first);
       v <= static_cast<int64_t>(q.last); ++v) {
    for (int64_t c = 0; c < 3; ++c) {
      EXPECT_EQ(payloads.count(v * 1000 + c), 1u) << v << "," << c;
    }
  }
}

TEST(ProxyTest, PassthroughModeReturnsExactAnswer) {
  MopeSystem system(1);
  ASSERT_TRUE(system
                  .LoadTable("data", MakeSchema(), MakeRows(),
                             Spec(QueryMode::kPassthrough))
                  .ok());
  auto resp = system.Query("data", "key", RangeQuery{20, 49});
  ASSERT_TRUE(resp.ok()) << resp.status();
  ExpectCorrectAnswer(*resp, RangeQuery{20, 49});
  EXPECT_EQ(resp->fake_queries_sent, 0u);
  EXPECT_EQ(resp->real_queries_sent, 3u);
}

TEST(ProxyTest, UniformModeReturnsExactAnswerDespiteFakes) {
  MopeSystem system(2);
  const dist::Distribution q_starts = dist::Distribution::Uniform(kDomain);
  // Skewed start distribution so fakes are actually generated.
  std::vector<double> w(kDomain);
  for (uint64_t i = 0; i < kDomain; ++i) w[i] = (i < 20) ? 1.0 : 0.01;
  auto skew = dist::Distribution::FromWeights(std::move(w));
  ASSERT_TRUE(skew.ok());
  ASSERT_TRUE(system
                  .LoadTable("data", MakeSchema(), MakeRows(),
                             Spec(QueryMode::kUniform), &*skew)
                  .ok());
  auto resp = system.Query("data", "key", RangeQuery{5, 24});
  ASSERT_TRUE(resp.ok()) << resp.status();
  ExpectCorrectAnswer(*resp, RangeQuery{5, 24});
  EXPECT_GT(resp->fake_queries_sent, 0u);
  // Every query (real or fake) consumed one server request at batch 1.
  EXPECT_EQ(resp->server_requests,
            resp->real_queries_sent + resp->fake_queries_sent);
}

TEST(ProxyTest, PeriodicModeReturnsExactAnswer) {
  MopeSystem system(3);
  std::vector<double> w(kDomain);
  for (uint64_t i = 0; i < kDomain; ++i) w[i] = (i % 7 == 0) ? 1.0 : 0.05;
  auto skew = dist::Distribution::FromWeights(std::move(w));
  ASSERT_TRUE(skew.ok());
  ASSERT_TRUE(system
                  .LoadTable("data", MakeSchema(), MakeRows(),
                             Spec(QueryMode::kPeriodic, 20), &*skew)
                  .ok());
  auto resp = system.Query("data", "key", RangeQuery{100, 139});
  ASSERT_TRUE(resp.ok()) << resp.status();
  ExpectCorrectAnswer(*resp, RangeQuery{100, 139});
}

TEST(ProxyTest, AdaptiveUniformModeReturnsExactAnswer) {
  MopeSystem system(4);
  ASSERT_TRUE(system
                  .LoadTable("data", MakeSchema(), MakeRows(),
                             Spec(QueryMode::kAdaptiveUniform))
                  .ok());
  for (int round = 0; round < 5; ++round) {
    const RangeQuery q{static_cast<uint64_t>(10 * round),
                       static_cast<uint64_t>(10 * round + 14)};
    auto resp = system.Query("data", "key", q);
    ASSERT_TRUE(resp.ok()) << resp.status();
    ExpectCorrectAnswer(*resp, q);
  }
}

TEST(ProxyTest, BatchingReducesServerRequests) {
  MopeSystem a(5), b(5);
  std::vector<double> w(kDomain, 0.01);
  w[0] = 1.0;
  auto skew = dist::Distribution::FromWeights(std::move(w));
  ASSERT_TRUE(skew.ok());
  ASSERT_TRUE(a.LoadTable("data", MakeSchema(), MakeRows(),
                          Spec(QueryMode::kUniform, 0, 1), &*skew)
                  .ok());
  ASSERT_TRUE(b.LoadTable("data", MakeSchema(), MakeRows(),
                          Spec(QueryMode::kUniform, 0, 50), &*skew)
                  .ok());
  auto ra = a.Query("data", "key", RangeQuery{0, 9});
  auto rb = b.Query("data", "key", RangeQuery{0, 9});
  ASSERT_TRUE(ra.ok() && rb.ok());
  ExpectCorrectAnswer(*ra, RangeQuery{0, 9});
  ExpectCorrectAnswer(*rb, RangeQuery{0, 9});
  EXPECT_GT(ra->server_requests, rb->server_requests);
}

TEST(ProxyTest, ServerOnlySeesCiphertexts) {
  MopeSystem system(6);
  ASSERT_TRUE(system
                  .LoadTable("data", MakeSchema(), MakeRows(),
                             Spec(QueryMode::kPassthrough))
                  .ok());
  // The stored key column must not equal the plaintexts (the MOPE cipher
  // space is 8x larger, so collisions with small plaintext values are rare).
  auto table = system.server()->catalog()->GetTable("data");
  ASSERT_TRUE(table.ok());
  int matches = 0;
  for (uint64_t r = 0; r < (*table)->row_count(); ++r) {
    const int64_t stored = std::get<int64_t>((*table)->row(r)[0]);
    const int64_t original = std::get<int64_t>(MakeRows()[r][0]);
    if (stored == original) ++matches;
  }
  EXPECT_LT(matches, 10);
}

TEST(ProxyTest, InvalidQueriesRejected) {
  MopeSystem system(7);
  ASSERT_TRUE(system
                  .LoadTable("data", MakeSchema(), MakeRows(),
                             Spec(QueryMode::kPassthrough))
                  .ok());
  EXPECT_FALSE(system.Query("data", "key", RangeQuery{5, 4}).ok());
  EXPECT_FALSE(system.Query("data", "key", RangeQuery{0, kDomain}).ok());
  EXPECT_TRUE(system.Query("nope", "key", RangeQuery{0, 1}).status().IsNotFound());
}

TEST(ProxyTest, LoadTableValidatesSpec) {
  MopeSystem system(8);
  EncryptedColumnSpec bad = Spec(QueryMode::kUniform);
  bad.domain = 0;
  EXPECT_FALSE(system.LoadTable("d", MakeSchema(), MakeRows(), bad).ok());
  EncryptedColumnSpec missing_q = Spec(QueryMode::kUniform);
  EXPECT_FALSE(
      system.LoadTable("d2", MakeSchema(), MakeRows(), missing_q).ok());
}

TEST(ProxyTest, LoadTableRejectsOutOfDomainValues) {
  MopeSystem system(9);
  EncryptedColumnSpec spec = Spec(QueryMode::kPassthrough);
  spec.domain = 10;  // rows contain keys up to 199
  EXPECT_TRUE(system.LoadTable("d", MakeSchema(), MakeRows(), spec)
                  .IsOutOfRange());
}

TEST(ProxyTest, TotalsAccumulate) {
  MopeSystem system(10);
  ASSERT_TRUE(system
                  .LoadTable("data", MakeSchema(), MakeRows(),
                             Spec(QueryMode::kPassthrough))
                  .ok());
  ASSERT_TRUE(system.Query("data", "key", RangeQuery{0, 9}).ok());
  ASSERT_TRUE(system.Query("data", "key", RangeQuery{10, 19}).ok());
  auto proxy = system.GetProxy("data", "key");
  ASSERT_TRUE(proxy.ok());
  EXPECT_EQ((*proxy)->totals().real_queries_sent, 2u);
}

TEST(ProxyTest, FailedLoadRollsBackTheServerTable) {
  MopeSystem system(9);
  std::vector<Row> rows = MakeRows();
  // One value outside the declared domain: the load must fail...
  rows.push_back(Row{static_cast<int64_t>(kDomain) + 5, int64_t{0}});
  const Status st = system.LoadTable("data", MakeSchema(), rows,
                                     Spec(QueryMode::kPassthrough));
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsOutOfRange());
  // ...and must not leave the half-encrypted table live in the catalog.
  EXPECT_TRUE(
      system.server()->catalog()->GetTable("data").status().IsNotFound());
  EXPECT_TRUE(system.GetProxy("data", "key").status().IsNotFound());

  // The name is reusable for a corrected load.
  ASSERT_TRUE(system
                  .LoadTable("data", MakeSchema(), MakeRows(),
                             Spec(QueryMode::kPassthrough))
                  .ok());
  auto resp = system.Query("data", "key", RangeQuery{20, 29});
  ASSERT_TRUE(resp.ok()) << resp.status();
}

}  // namespace
}  // namespace mope::proxy
