#include "proxy/sql_session.h"

#include <gtest/gtest.h>

#include "sql/planner.h"
#include "workload/tpch.h"

namespace mope::proxy {
namespace {

using engine::Catalog;
using engine::Row;
using namespace workload;  // NOLINT

class SqlSessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TpchConfig config;
    config.scale_factor = 0.001;
    data_ = GenerateTpch(config);

    auto li = plain_.CreateTable("lineitem", data_.lineitem_schema);
    ASSERT_TRUE(li.ok());
    for (const Row& row : data_.lineitem) ASSERT_TRUE((*li)->Insert(row).ok());
    auto part = plain_.CreateTable("part", data_.part_schema);
    ASSERT_TRUE(part.ok());
    for (const Row& row : data_.part) ASSERT_TRUE((*part)->Insert(row).ok());

    EncryptedColumnSpec spec;
    spec.column = "l_shipdate";
    spec.domain = kTpchDateDomain;
    spec.k = 60;
    spec.mode = QueryMode::kAdaptiveUniform;
    spec.batch_size = 32;
    ASSERT_TRUE(system_.LoadTable("lineitem", data_.lineitem_schema,
                                  data_.lineitem, spec)
                    .ok());
  }

  TpchData data_;
  Catalog plain_;
  MopeSystem system_{0x5E5};
};

TEST_F(SqlSessionTest, AggregateWithResidualPredicatesMatchesPlaintext) {
  EncryptedSqlSession session(&system_);
  const std::string sql =
      "SELECT SUM(l_extendedprice * l_discount) AS revenue, COUNT(*) "
      "FROM lineitem WHERE l_shipdate BETWEEN 366 AND 730 "
      "AND l_discount BETWEEN 0.04 AND 0.06 AND l_quantity < 25";
  auto encrypted = session.Execute(sql);
  ASSERT_TRUE(encrypted.ok()) << encrypted.status();
  auto baseline = sql::ExecuteSql(&plain_, sql);
  ASSERT_TRUE(baseline.ok());
  ASSERT_EQ(encrypted->rows.size(), 1u);
  EXPECT_NEAR(std::get<double>(encrypted->rows[0][0]),
              std::get<double>(baseline->rows[0][0]), 1e-6);
  EXPECT_EQ(std::get<int64_t>(encrypted->rows[0][1]),
            std::get<int64_t>(baseline->rows[0][1]));
  EXPECT_GT(session.last_stats().rows_fetched, 0u);
  EXPECT_GT(session.last_stats().fake_queries, 0u);
}

TEST_F(SqlSessionTest, ProjectionMatchesPlaintext) {
  EncryptedSqlSession session(&system_);
  const std::string sql =
      "SELECT l_orderkey, l_quantity FROM lineitem "
      "WHERE l_shipdate BETWEEN 100 AND 160 AND l_quantity > 45";
  auto encrypted = session.Execute(sql);
  ASSERT_TRUE(encrypted.ok()) << encrypted.status();
  auto baseline = sql::ExecuteSql(&plain_, sql);
  ASSERT_TRUE(baseline.ok());
  EXPECT_EQ(encrypted->rows.size(), baseline->rows.size());
  EXPECT_EQ(encrypted->columns, baseline->columns);
}

TEST_F(SqlSessionTest, DisjunctionOfRangesFetchesBoth) {
  EncryptedSqlSession session(&system_);
  const std::string sql =
      "SELECT COUNT(*) FROM lineitem WHERE "
      "l_shipdate BETWEEN 100 AND 200 OR l_shipdate BETWEEN 400 AND 500";
  auto encrypted = session.Execute(sql);
  ASSERT_TRUE(encrypted.ok()) << encrypted.status();
  auto baseline = sql::ExecuteSql(&plain_, sql);
  ASSERT_TRUE(baseline.ok());
  EXPECT_EQ(std::get<int64_t>(encrypted->rows[0][0]),
            std::get<int64_t>(baseline->rows[0][0]));
  EXPECT_EQ(session.last_stats().ranges_fetched, 2u);
}

TEST_F(SqlSessionTest, JoinAgainstAttachedClientTable) {
  EncryptedSqlSession session(&system_);
  ASSERT_TRUE(
      session.AttachClientTable("part", data_.part_schema, data_.part).ok());
  const std::string sql =
      "SELECT SUM(l_extendedprice * (1 - l_discount) * p_ispromo) "
      "FROM lineitem JOIN part ON l_partkey = p_partkey "
      "WHERE l_shipdate BETWEEN 366 AND 396";
  auto encrypted = session.Execute(sql);
  ASSERT_TRUE(encrypted.ok()) << encrypted.status();
  auto baseline = sql::ExecuteSql(&plain_, sql);
  ASSERT_TRUE(baseline.ok());
  EXPECT_NEAR(std::get<double>(encrypted->rows[0][0]),
              std::get<double>(baseline->rows[0][0]), 1e-6);
}

TEST_F(SqlSessionTest, OverlappingRangesAreCoalesced) {
  EncryptedSqlSession session(&system_);
  const std::string sql =
      "SELECT COUNT(*) FROM lineitem WHERE "
      "l_shipdate BETWEEN 100 AND 300 OR l_shipdate BETWEEN 200 AND 400";
  auto encrypted = session.Execute(sql);
  ASSERT_TRUE(encrypted.ok()) << encrypted.status();
  EXPECT_EQ(session.last_stats().ranges_fetched, 1u);  // merged to [100, 400]
  auto baseline = sql::ExecuteSql(&plain_, sql);
  EXPECT_EQ(std::get<int64_t>(encrypted->rows[0][0]),
            std::get<int64_t>(baseline->rows[0][0]));
}

TEST_F(SqlSessionTest, HalfOpenComparisonsClampToDomain) {
  EncryptedSqlSession session(&system_);
  const std::string sql =
      "SELECT COUNT(*) FROM lineitem WHERE l_shipdate >= 2400";
  auto encrypted = session.Execute(sql);
  ASSERT_TRUE(encrypted.ok()) << encrypted.status();
  auto baseline = sql::ExecuteSql(&plain_, sql);
  EXPECT_EQ(std::get<int64_t>(encrypted->rows[0][0]),
            std::get<int64_t>(baseline->rows[0][0]));
}

TEST_F(SqlSessionTest, RejectsStatementsWithoutUsableRange) {
  EncryptedSqlSession session(&system_);
  EXPECT_TRUE(session.Execute("SELECT COUNT(*) FROM lineitem")
                  .status()
                  .IsNotSupported());
  EXPECT_TRUE(session
                  .Execute("SELECT COUNT(*) FROM lineitem WHERE "
                           "l_quantity < 10")
                  .status()
                  .IsNotSupported());
}

TEST_F(SqlSessionTest, RejectsUnknownOrUnencryptedTables) {
  EncryptedSqlSession session(&system_);
  EXPECT_FALSE(session.Execute("SELECT * FROM nope WHERE x < 3").ok());
}

TEST_F(SqlSessionTest, ParseErrorsPropagate) {
  EncryptedSqlSession session(&system_);
  EXPECT_TRUE(session.Execute("SELEC oops").status().IsParseError());
}

}  // namespace
}  // namespace mope::proxy
