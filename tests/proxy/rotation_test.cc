#include <gtest/gtest.h>

#include <set>

#include "proxy/system.h"

namespace mope::proxy {
namespace {

using engine::Column;
using engine::Row;
using engine::Schema;
using engine::ValueType;
using query::RangeQuery;

constexpr uint64_t kDomain = 150;

std::vector<Row> MakeRows() {
  std::vector<Row> rows;
  for (int64_t v = 0; v < static_cast<int64_t>(kDomain); ++v) {
    rows.push_back(Row{v, v + 10000});
  }
  return rows;
}

Schema MakeSchema() {
  return Schema({Column{"key", ValueType::kInt},
                 Column{"payload", ValueType::kInt}});
}

class RotationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    EncryptedColumnSpec spec;
    spec.column = "key";
    spec.domain = kDomain;
    spec.k = 5;
    spec.mode = QueryMode::kAdaptiveUniform;
    spec.batch_size = 8;
    ASSERT_TRUE(
        system_.LoadTable("data", MakeSchema(), MakeRows(), spec).ok());
  }

  std::vector<int64_t> StoredCiphertexts() {
    auto table = system_.server()->catalog()->GetTable("data");
    EXPECT_TRUE(table.ok());
    std::vector<int64_t> out;
    for (uint64_t r = 0; r < (*table)->row_count(); ++r) {
      out.push_back(std::get<int64_t>((*table)->row(r)[0]));
    }
    return out;
  }

  MopeSystem system_{0x707A7E};
};

TEST_F(RotationTest, RotationRewritesEveryCiphertext) {
  const auto before = StoredCiphertexts();
  auto rotated = system_.RotateKey("data", "key");
  ASSERT_TRUE(rotated.ok()) << rotated.status();
  EXPECT_EQ(rotated.value(), kDomain);
  const auto after = StoredCiphertexts();
  int unchanged = 0;
  for (size_t i = 0; i < before.size(); ++i) {
    if (before[i] == after[i]) ++unchanged;
  }
  // A fresh OPE key and offset leave essentially no ciphertext in place.
  EXPECT_LT(unchanged, 5);
}

TEST_F(RotationTest, QueriesStayCorrectAcrossRotations) {
  for (int rotation = 0; rotation < 3; ++rotation) {
    for (uint64_t first : {0ULL, 40ULL, 120ULL}) {
      const RangeQuery q{first, first + 19 < kDomain ? first + 19 : kDomain - 1};
      auto resp = system_.Query("data", "key", q);
      ASSERT_TRUE(resp.ok()) << resp.status();
      EXPECT_EQ(resp->rows.size(), q.length());
      std::set<int64_t> keys;
      for (const Row& row : resp->rows) {
        keys.insert(std::get<int64_t>(row[0]));
      }
      EXPECT_EQ(*keys.begin(), static_cast<int64_t>(q.first));
      EXPECT_EQ(*keys.rbegin(), static_cast<int64_t>(q.last));
    }
    ASSERT_TRUE(system_.RotateKey("data", "key").ok());
  }
}

TEST_F(RotationTest, IndexStaysConsistentAfterRotation) {
  ASSERT_TRUE(system_.RotateKey("data", "key").ok());
  auto table = system_.server()->catalog()->GetTable("data");
  ASSERT_TRUE(table.ok());
  auto index = (*table)->GetIndex("key");
  ASSERT_TRUE(index.ok());
  EXPECT_EQ((*index)->size(), kDomain);
  EXPECT_TRUE((*index)->CheckInvariants().ok());
  // Every stored ciphertext must be findable through the index.
  uint64_t found = 0;
  (*index)->ScanRange(0, ~uint64_t{0},
                      [&found](uint64_t, uint64_t) { ++found; });
  EXPECT_EQ(found, kDomain);
}

TEST_F(RotationTest, RotationChangesTheOffset) {
  // Decrypt-ability of old ciphertexts under the new key would be a bug;
  // spot-check that old ciphertexts are now either invalid or decrypt to
  // different plaintexts.
  auto proxy = system_.GetProxy("data", "key");
  ASSERT_TRUE(proxy.ok());
  const auto before = StoredCiphertexts();
  ASSERT_TRUE(system_.RotateKey("data", "key").ok());
  int agreeing = 0;
  for (size_t i = 0; i < before.size(); ++i) {
    auto plain = (*proxy)->DecryptValue(static_cast<uint64_t>(before[i]));
    if (plain.ok() && plain.value() == i) ++agreeing;
  }
  EXPECT_LT(agreeing, 5);
}

}  // namespace
}  // namespace mope::proxy
