#include "attack/gap_attack.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "dist/completion.h"

namespace mope::attack {
namespace {

TEST(GapAttackTest, RecoversOffsetFromNaiveQueries) {
  // The Figure 1 scenario: domain [0, 100], k = 10, offset j = 20, all
  // valid fixed-length queries observed in shifted space.
  constexpr uint64_t kM = 101;
  constexpr uint64_t kK = 10;
  constexpr uint64_t kOffset = 20;
  GapAttack attack(kM);
  for (uint64_t start = 0; start + kK <= kM; ++start) {
    attack.ObserveStart((start + kOffset) % kM);
  }
  const auto est = attack.EstimateOffset();
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(est.value(), kOffset);
  EXPECT_EQ(attack.LongestGap(), kK - 1);
}

TEST(GapAttackTest, RecoversOffsetForEveryShift) {
  constexpr uint64_t kM = 60;
  constexpr uint64_t kK = 5;
  for (uint64_t offset = 0; offset < kM; offset += 7) {
    GapAttack attack(kM);
    for (uint64_t start = 0; start + kK <= kM; ++start) {
      attack.ObserveStart((start + offset) % kM);
    }
    const auto est = attack.EstimateOffset();
    ASSERT_TRUE(est.ok()) << offset;
    EXPECT_EQ(est.value(), offset) << offset;
  }
}

TEST(GapAttackTest, RecoversFromSampledSkewedQueries) {
  // Realistic stream: starts sampled from a skewed user distribution.
  constexpr uint64_t kM = 100;
  constexpr uint64_t kK = 8;
  constexpr uint64_t kOffset = 63;
  std::vector<double> w(kM, 0.0);
  for (uint64_t s = 0; s + kK <= kM; ++s) {
    w[s] = 1.0 / static_cast<double>(1 + s % 13);
  }
  auto q = dist::Distribution::FromWeights(std::move(w));
  ASSERT_TRUE(q.ok());
  Rng rng(5);
  GapAttack attack(kM);
  for (int i = 0; i < 20000; ++i) {
    attack.ObserveStart((q->Sample(&rng) + kOffset) % kM);
  }
  const auto est = attack.EstimateOffset();
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(est.value(), kOffset);
}

TEST(GapAttackTest, FailsAgainstUniformizedQueries) {
  // QueryU's whole point (Figure 2): with fakes filling the domain
  // uniformly, there is no gap to find.
  constexpr uint64_t kM = 100;
  Rng rng(6);
  GapAttack attack(kM);
  for (int i = 0; i < 20000; ++i) {
    attack.ObserveStart(rng.UniformUint64(kM));
  }
  // Coupon collector: 20000 >> M ln M ~ 460, so every point was seen.
  EXPECT_EQ(attack.LongestGap(), 0u);
  EXPECT_TRUE(attack.EstimateOffset().status().IsNotFound());
}

TEST(GapAttackTest, NoObservationsIsAnError) {
  GapAttack attack(50);
  EXPECT_FALSE(attack.EstimateOffset().ok());
}

TEST(EstimatePhaseTest, RecoversPhaseModPeriod) {
  // Periodic perceived distribution with a distinctive within-period shape.
  constexpr uint64_t kM = 96;
  constexpr uint64_t kPeriod = 12;
  std::vector<double> w(kM);
  for (uint64_t i = 0; i < kM; ++i) {
    w[i] = 1.0 + static_cast<double>((i % kPeriod) * (i % kPeriod));
  }
  auto perceived = dist::Distribution::FromWeights(std::move(w));
  ASSERT_TRUE(perceived.ok());

  Rng rng(7);
  for (uint64_t offset : {0ULL, 5ULL, 11ULL, 13ULL, 40ULL, 95ULL}) {
    Histogram observed(kM);
    for (int i = 0; i < 30000; ++i) {
      observed.Add((perceived->Sample(&rng) + offset) % kM);
    }
    const auto phase = EstimatePhase(observed, *perceived, kPeriod);
    ASSERT_TRUE(phase.ok());
    EXPECT_EQ(phase.value(), offset % kPeriod) << offset;
  }
}

TEST(EstimatePhaseTest, ValidatesInputs) {
  Histogram h(10);
  const auto d = dist::Distribution::Uniform(10);
  EXPECT_FALSE(EstimatePhase(h, d, 3).ok());   // 3 does not divide 10
  EXPECT_FALSE(EstimatePhase(h, d, 5).ok());   // empty histogram
  h.Add(0);
  EXPECT_TRUE(EstimatePhase(h, d, 5).ok());
  EXPECT_FALSE(EstimatePhase(h, dist::Distribution::Uniform(8), 2).ok());
}

TEST(EstimatePhaseTest, UniformPerceivedGivesNoSignal) {
  // Against QueryU the likelihood is flat; any phase is as good as any
  // other. We only require the estimator not to crash and to return a
  // valid phase.
  constexpr uint64_t kM = 64;
  const auto uniform = dist::Distribution::Uniform(kM);
  Rng rng(8);
  Histogram observed(kM);
  for (int i = 0; i < 5000; ++i) observed.Add(rng.UniformUint64(kM));
  const auto phase = EstimatePhase(observed, uniform, 8);
  ASSERT_TRUE(phase.ok());
  EXPECT_LT(phase.value(), 8u);
}

}  // namespace
}  // namespace mope::attack
