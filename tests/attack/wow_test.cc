#include "attack/wow.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace mope::attack {
namespace {

WowConfig SmallConfig() {
  WowConfig config;
  config.domain = 512;
  config.range = 4096;
  config.db_size = 16;
  config.window = 32;
  config.num_queries = 4000;
  config.k = 8;
  config.period = 16;
  config.trials = 150;
  return config;
}

dist::Distribution SkewedQ(uint64_t m) {
  std::vector<double> w(m);
  for (uint64_t i = 0; i < m; ++i) {
    w[i] = (i % 16 < 4) ? 1.0 : 0.02;
  }
  return std::move(dist::Distribution::FromWeights(std::move(w))).value();
}

TEST(WowTest, ValidatesConfig) {
  Rng rng(1);
  WowConfig bad = SmallConfig();
  bad.range = 100;  // < domain
  EXPECT_FALSE(RunWowExperiment(bad, WowScheme::kOpe, nullptr, &rng).ok());
  bad = SmallConfig();
  bad.period = 7;  // does not divide 512
  EXPECT_FALSE(
      RunWowExperiment(bad, WowScheme::kMopeQueryP, nullptr, &rng).ok());
}

TEST(WowTest, PlainOpeLeaksLocation) {
  Rng rng(2);
  const auto result =
      RunWowExperiment(SmallConfig(), WowScheme::kOpe, nullptr, &rng);
  ASSERT_TRUE(result.ok());
  // The scaling adversary on plain OPE should beat random guessing
  // (w/M ~ 0.064) by a wide margin.
  EXPECT_GT(result->location_advantage, 0.4);
}

TEST(WowTest, NaiveMopeQueriesRestoreTheLeak) {
  Rng rng(3);
  const auto q = SkewedQ(512);
  // The gap attack needs enough queries to cover every non-gap start point
  // (coupon collector over the skewed tail of Q).
  WowConfig config = SmallConfig();
  config.num_queries = 60000;
  config.trials = 60;
  const auto result =
      RunWowExperiment(config, WowScheme::kMopeNaive, &q, &rng);
  ASSERT_TRUE(result.ok());
  // The gap attack recovers j almost always, so location leaks like OPE.
  EXPECT_GT(result->offset_recovery_rate, 0.8);
  EXPECT_GT(result->location_advantage, 0.35);
}

TEST(WowTest, QueryUHidesLocation) {
  Rng rng(4);
  const auto q = SkewedQ(512);
  const auto result =
      RunWowExperiment(SmallConfig(), WowScheme::kMopeQueryU, &q, &rng);
  ASSERT_TRUE(result.ok());
  // Theorem 3: advantage <= w/M (+ slack): (32+1)/512 ~ 0.064.
  EXPECT_LT(result->location_advantage, 0.2);
  EXPECT_LT(result->offset_recovery_rate, 0.05);
}

TEST(WowTest, QueryPLeaksAtMostRhoWOverM) {
  Rng rng(5);
  const auto q = SkewedQ(512);
  const auto result =
      RunWowExperiment(SmallConfig(), WowScheme::kMopeQueryP, &q, &rng);
  ASSERT_TRUE(result.ok());
  // Theorem 5: advantage <= rho*w/M = 16*33/512 ~ 1.0 (vacuous here), but
  // with the high bits unguessable the adversary's hit rate is ~rho*w/M
  // scaled by the phase-recovery success over M/rho candidates:
  // w / (M/rho) = 33/32 capped... empirically it sits well below the naive
  // scheme and above QueryU.
  const auto naive =
      RunWowExperiment(SmallConfig(), WowScheme::kMopeNaive, &q, &rng);
  ASSERT_TRUE(naive.ok());
  EXPECT_LT(result->location_advantage, naive->location_advantage);
}

TEST(WowTest, OrderingAcrossSchemesMatchesTheory) {
  // The headline comparison of Section 7: OPE ~ naive-MOPE >> QueryP
  // >= QueryU for location privacy.
  Rng rng(6);
  const auto q = SkewedQ(512);
  const auto ope = RunWowExperiment(SmallConfig(), WowScheme::kOpe, &q, &rng);
  const auto naive =
      RunWowExperiment(SmallConfig(), WowScheme::kMopeNaive, &q, &rng);
  const auto query_u =
      RunWowExperiment(SmallConfig(), WowScheme::kMopeQueryU, &q, &rng);
  ASSERT_TRUE(ope.ok() && naive.ok() && query_u.ok());
  EXPECT_GT(naive->location_advantage, query_u->location_advantage + 0.1);
  EXPECT_GT(ope->location_advantage, query_u->location_advantage + 0.1);
}

TEST(WowTest, DistanceLeaksForAllSchemes) {
  // Theorems 2/4: distance one-wayness is ~sqrt(M) for the whole OPE
  // family; the scaling adversary should do far better than random
  // (random: ~2*w/M since distances concentrate) for every scheme.
  Rng rng(7);
  const auto q = SkewedQ(512);
  for (WowScheme scheme : {WowScheme::kOpe, WowScheme::kMopeQueryU,
                           WowScheme::kMopeQueryP}) {
    const auto result = RunWowExperiment(SmallConfig(), scheme, &q, &rng);
    ASSERT_TRUE(result.ok());
    EXPECT_GT(result->distance_advantage, 0.3)
        << "scheme " << static_cast<int>(scheme);
  }
}

}  // namespace
}  // namespace mope::attack
