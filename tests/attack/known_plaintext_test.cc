#include "attack/known_plaintext.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "ope/ideal.h"
#include "proxy/system.h"

namespace mope::attack {
namespace {

constexpr uint64_t kDomain = 1000;
constexpr uint64_t kRange = 8192;

struct AttackSetup {
  std::vector<uint64_t> plains;
  std::vector<uint64_t> ciphers;
  uint64_t offset;
};

AttackSetup MakeSetup(uint64_t seed) {
  Rng rng(seed);
  const ope::RandomMopf mopf = ope::RandomMopf::Sample(kDomain, kRange, &rng);
  AttackSetup s;
  s.offset = mopf.offset();
  for (uint64_t m = 0; m < kDomain; m += 3) {
    s.plains.push_back(m);
    s.ciphers.push_back(mopf.Encrypt(m));
  }
  return s;
}

TEST(KnownPlaintextTest, WithoutExposureLocationIsHidden) {
  // Averaged over many random offsets, the windowed accuracy without an
  // exposed pair is ~(2w+1)/M — random guessing.
  double total = 0.0;
  constexpr int kTrials = 30;
  constexpr uint64_t kWindow = 25;
  for (int t = 0; t < kTrials; ++t) {
    const AttackSetup s = MakeSetup(100 + t);
    KnownPlaintextAttack attack(s.ciphers, kDomain, kRange);
    total += attack.EvaluateAccuracy(s.plains, kWindow);
  }
  const double avg = total / kTrials;
  EXPECT_LT(avg, 3.0 * (2.0 * kWindow + 1.0) / kDomain);
}

TEST(KnownPlaintextTest, OneExposedPairReorientsEverything) {
  const AttackSetup s = MakeSetup(7);
  KnownPlaintextAttack attack(s.ciphers, kDomain, kRange);
  attack.Expose(s.plains[50], s.ciphers[50]);
  // With the offset cancelled, the scaling estimate is as good as on plain
  // OPE: most values land within a ~sqrt(M)-scale window.
  EXPECT_GT(attack.EvaluateAccuracy(s.plains, 25), 0.5);
}

TEST(KnownPlaintextTest, ExposureHelpsForEveryAnchorPosition) {
  const AttackSetup s = MakeSetup(13);
  for (size_t anchor : {0ul, 100ul, 200ul, 300ul}) {
    KnownPlaintextAttack attack(s.ciphers, kDomain, kRange);
    attack.Expose(s.plains[anchor], s.ciphers[anchor]);
    EXPECT_GT(attack.EvaluateAccuracy(s.plains, 25), 0.4) << anchor;
  }
}

TEST(KnownPlaintextTest, KeyRotationInvalidatesTheExposedPair) {
  // End to end with the real system: expose a pair, rotate, and verify the
  // stale pair no longer orients the new ciphertexts (the Section 9
  // mitigation implemented by Proxy::RotateKey).
  proxy::MopeSystem system(0xAA17);
  proxy::EncryptedColumnSpec spec;
  spec.column = "v";
  spec.domain = kDomain;
  spec.k = 10;
  spec.mode = proxy::QueryMode::kAdaptiveUniform;
  std::vector<engine::Row> rows;
  for (int64_t v = 0; v < static_cast<int64_t>(kDomain); ++v) {
    rows.push_back(engine::Row{v});
  }
  ASSERT_TRUE(system
                  .LoadTable("t",
                             engine::Schema({{"v", engine::ValueType::kInt}}),
                             rows, spec)
                  .ok());

  auto snapshot = [&system] {
    auto table = system.server()->catalog()->GetTable("t");
    std::vector<uint64_t> ciphers;
    for (uint64_t r = 0; r < (*table)->row_count(); ++r) {
      ciphers.push_back(
          static_cast<uint64_t>(std::get<int64_t>((*table)->row(r)[0])));
    }
    return ciphers;
  };
  std::vector<uint64_t> plains(kDomain);
  for (uint64_t v = 0; v < kDomain; ++v) plains[v] = v;

  const auto before = snapshot();
  const uint64_t range = ope::SuggestRange(kDomain);

  // Fresh pair against the current ciphertexts: attack works.
  KnownPlaintextAttack live(before, kDomain, range);
  live.Expose(123, before[123]);
  EXPECT_GT(live.EvaluateAccuracy(plains, 25), 0.5);

  // Rotate, then replay the *stale* pair against the new ciphertexts.
  ASSERT_TRUE(system.RotateKey("t", "v").ok());
  const auto after = snapshot();
  KnownPlaintextAttack stale(after, kDomain, range);
  stale.Expose(123, before[123]);  // pre-rotation ciphertext: now garbage
  EXPECT_LT(stale.EvaluateAccuracy(plains, 25), 0.4);
}

TEST(KnownPlaintextTest, EvaluateAccuracyValidatesAlignment) {
  KnownPlaintextAttack attack({1, 2, 3}, 10, 100);
  EXPECT_DEATH(attack.EvaluateAccuracy({1, 2}, 1), "align");
}

}  // namespace
}  // namespace mope::attack
