#include "attack/frequency.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "ope/ideal.h"

namespace mope::attack {
namespace {

constexpr uint64_t kDomain = 64;
constexpr uint64_t kRange = 512;

/// A strongly skewed, distinctive auxiliary distribution.
dist::Distribution SkewedAux() {
  std::vector<double> w(kDomain);
  for (uint64_t i = 0; i < kDomain; ++i) {
    w[i] = 1.0 / static_cast<double>((i + 1) * (i + 1));
  }
  return std::move(dist::Distribution::FromWeights(std::move(w))).value();
}

struct Column {
  std::vector<uint64_t> plains;
  std::vector<uint64_t> ciphers;
};

/// Samples a column from `source` and encrypts it under a random MOPF.
Column MakeColumn(const dist::Distribution& source, size_t rows,
                  uint64_t seed) {
  Rng rng(seed);
  const ope::RandomMopf mopf = ope::RandomMopf::Sample(kDomain, kRange, &rng);
  Column col;
  for (size_t i = 0; i < rows; ++i) {
    col.plains.push_back(source.Sample(&rng));
    col.ciphers.push_back(mopf.Encrypt(col.plains.back()));
  }
  return col;
}

TEST(FrequencyTest, SkewedColumnsFallToRankMatching) {
  // Deterministic encryption + a distinctive auxiliary histogram: the
  // top-frequency values are recovered, so row accuracy is high.
  const auto aux = SkewedAux();
  const Column col = MakeColumn(aux, 20000, 1);
  const auto guesses = FrequencyMatch(col.ciphers, aux);
  const double accuracy =
      FrequencyMatchAccuracy(guesses, col.ciphers, col.plains);
  EXPECT_GT(accuracy, 0.7);
}

TEST(FrequencyTest, FlatColumnsResistRankMatching) {
  // Uniform data has no frequency signal: accuracy ~ 1/M up to noise.
  const auto uniform = dist::Distribution::Uniform(kDomain);
  const Column col = MakeColumn(uniform, 20000, 2);
  const auto guesses = FrequencyMatch(col.ciphers, uniform);
  const double accuracy =
      FrequencyMatchAccuracy(guesses, col.ciphers, col.plains);
  EXPECT_LT(accuracy, 0.15);
}

TEST(FrequencyTest, GuessesCoverEveryDistinctCiphertext) {
  const auto aux = SkewedAux();
  const Column col = MakeColumn(aux, 5000, 3);
  const auto guesses = FrequencyMatch(col.ciphers, aux);
  std::set<uint64_t> distinct(col.ciphers.begin(), col.ciphers.end());
  EXPECT_EQ(guesses.size(), distinct.size());
  uint64_t total = 0;
  for (const auto& g : guesses) {
    EXPECT_TRUE(distinct.contains(g.ciphertext));
    EXPECT_LT(g.guessed_plaintext, kDomain);
    total += g.count;
  }
  EXPECT_EQ(total, col.ciphers.size());
}

TEST(FrequencyTest, CyclicMatchingRecoversTheOffsetOnDenseColumns) {
  // With a dense column and a distinctive (non-flat) histogram, matching
  // frequency profiles over rotations recovers j exactly — the
  // frequency-side analogue of the gap attack, and another reason the
  // WOW ciphertext-only model is the best case for MOPE.
  std::vector<double> w(kDomain);
  for (uint64_t i = 0; i < kDomain; ++i) {
    w[i] = 1.0 + static_cast<double>(i % 9);
  }
  auto aux = std::move(dist::Distribution::FromWeights(std::move(w))).value();

  for (uint64_t seed = 10; seed < 16; ++seed) {
    Rng rng(seed);
    const ope::RandomMopf mopf =
        ope::RandomMopf::Sample(kDomain, kRange, &rng);
    std::vector<uint64_t> ciphers;
    // Dense: expected counts per value, plus sampling noise.
    for (uint64_t v = 0; v < kDomain; ++v) {
      const uint64_t copies =
          2 + static_cast<uint64_t>(aux.prob(v) * 3000.0);
      for (uint64_t c = 0; c < copies; ++c) {
        ciphers.push_back(mopf.Encrypt(v));
      }
    }
    const auto offset = CyclicFrequencyMatch(ciphers, aux);
    ASSERT_TRUE(offset.ok()) << offset.status();
    EXPECT_EQ(offset.value(), mopf.offset()) << "seed " << seed;
  }
}

TEST(FrequencyTest, CyclicMatchingNeedsDenseColumns) {
  const auto aux = SkewedAux();
  const Column col = MakeColumn(aux, 50, 4);  // sparse: many values missing
  EXPECT_TRUE(CyclicFrequencyMatch(col.ciphers, aux).status().IsNotFound());
}

TEST(FrequencyTest, AccuracyValidatesAlignment) {
  EXPECT_DEATH(FrequencyMatchAccuracy({}, {1, 2}, {1}), "align");
}

}  // namespace
}  // namespace mope::attack
