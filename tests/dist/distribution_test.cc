#include "dist/distribution.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/math_util.h"
#include "common/random.h"

namespace mope::dist {
namespace {

TEST(DistributionTest, FromWeightsNormalizes) {
  auto d = Distribution::FromWeights({1.0, 3.0});
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ(d->prob(0), 0.25);
  EXPECT_DOUBLE_EQ(d->prob(1), 0.75);
  EXPECT_DOUBLE_EQ(d->max_prob(), 0.75);
  EXPECT_EQ(d->argmax(), 1u);
}

TEST(DistributionTest, FromWeightsRejectsBadInput) {
  EXPECT_FALSE(Distribution::FromWeights({}).ok());
  EXPECT_FALSE(Distribution::FromWeights({1.0, -0.5}).ok());
  EXPECT_FALSE(Distribution::FromWeights({0.0, 0.0}).ok());
  EXPECT_FALSE(Distribution::FromWeights({std::nan("")}).ok());
}

TEST(DistributionTest, FromHistogram) {
  Histogram h(3);
  h.Add(0, 2);
  h.Add(2, 6);
  auto d = Distribution::FromHistogram(h);
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ(d->prob(0), 0.25);
  EXPECT_DOUBLE_EQ(d->prob(1), 0.0);
  EXPECT_DOUBLE_EQ(d->prob(2), 0.75);
}

TEST(DistributionTest, FromEmptyHistogramFails) {
  Histogram h(3);
  EXPECT_FALSE(Distribution::FromHistogram(h).ok());
}

TEST(DistributionTest, UniformProperties) {
  const Distribution u = Distribution::Uniform(8);
  for (uint64_t i = 0; i < 8; ++i) EXPECT_DOUBLE_EQ(u.prob(i), 0.125);
  EXPECT_DOUBLE_EQ(u.max_prob(), 0.125);
}

TEST(DistributionTest, PointMass) {
  const Distribution p = Distribution::PointMass(5, 3);
  EXPECT_DOUBLE_EQ(p.prob(3), 1.0);
  EXPECT_DOUBLE_EQ(p.prob(0), 0.0);
  Rng rng(1);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(p.Sample(&rng), 3u);
}

TEST(DistributionTest, SamplingMatchesProbabilities) {
  auto d = Distribution::FromWeights({0.1, 0.2, 0.3, 0.4});
  ASSERT_TRUE(d.ok());
  Rng rng(2);
  Histogram h(4);
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) h.Add(d->Sample(&rng));
  const double chi2 = h.ChiSquareVs(d->probs());
  EXPECT_LT(chi2, ChiSquareCriticalValue(3, 0.001));
}

TEST(DistributionTest, SamplingSkipsZeroProbabilityElements) {
  auto d = Distribution::FromWeights({0.0, 1.0, 0.0, 1.0, 0.0});
  ASSERT_TRUE(d.ok());
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    const uint64_t s = d->Sample(&rng);
    EXPECT_TRUE(s == 1 || s == 3) << s;
  }
}

TEST(DistributionTest, TotalVariationDistance) {
  auto a = Distribution::FromWeights({1.0, 0.0});
  auto b = Distribution::FromWeights({0.0, 1.0});
  EXPECT_DOUBLE_EQ(a->TotalVariationDistance(*b), 1.0);
  EXPECT_DOUBLE_EQ(a->TotalVariationDistance(*a), 0.0);
}

TEST(DistributionTest, LargeDomainSamplingIsFastAndInRange) {
  const Distribution u = Distribution::Uniform(1 << 16);
  Rng rng(4);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(u.Sample(&rng), uint64_t{1} << 16);
  }
}

}  // namespace
}  // namespace mope::dist
