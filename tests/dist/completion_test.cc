#include "dist/completion.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace mope::dist {
namespace {

/// Checks the defining identity of a mixing plan:
/// alpha * q + (1 - alpha) * completion == perceived (pointwise).
void ExpectMixIdentity(const Distribution& q, const MixPlan& plan,
                       double tol = 1e-9) {
  ASSERT_EQ(plan.completion.size(), q.size());
  ASSERT_EQ(plan.perceived.size(), q.size());
  for (uint64_t i = 0; i < q.size(); ++i) {
    const double mixed =
        plan.alpha * q.prob(i) + (1.0 - plan.alpha) * plan.completion.prob(i);
    EXPECT_NEAR(mixed, plan.perceived.prob(i), tol) << "i=" << i;
  }
}

Distribution SkewedDistribution(uint64_t m) {
  std::vector<double> w(m);
  for (uint64_t i = 0; i < m; ++i) {
    w[i] = 1.0 / static_cast<double>(1 + i * i);
  }
  auto d = Distribution::FromWeights(std::move(w));
  EXPECT_TRUE(d.ok());
  return std::move(d).value();
}

TEST(UniformCompletionTest, MixesToUniform) {
  const Distribution q = SkewedDistribution(64);
  auto plan = MakeUniformPlan(q);
  ASSERT_TRUE(plan.ok());
  EXPECT_GT(plan->alpha, 0.0);
  EXPECT_LE(plan->alpha, 1.0);
  ExpectMixIdentity(q, *plan);
  for (uint64_t i = 0; i < 64; ++i) {
    EXPECT_NEAR(plan->perceived.prob(i), 1.0 / 64.0, 1e-12);
  }
}

TEST(UniformCompletionTest, AlphaIsOneOverMuM) {
  const Distribution q = SkewedDistribution(100);
  auto plan = MakeUniformPlan(q);
  ASSERT_TRUE(plan.ok());
  EXPECT_NEAR(plan->alpha, 1.0 / (q.max_prob() * 100.0), 1e-12);
}

TEST(UniformCompletionTest, UniformInputNeedsNoFakes) {
  auto plan = MakeUniformPlan(Distribution::Uniform(32));
  ASSERT_TRUE(plan.ok());
  EXPECT_DOUBLE_EQ(plan->alpha, 1.0);
  EXPECT_DOUBLE_EQ(plan->expected_fakes_per_real(), 0.0);
}

TEST(UniformCompletionTest, PointMassIsWorstCase) {
  // µ = 1 -> alpha = 1/M -> M-1 expected fakes per real query.
  auto plan = MakeUniformPlan(Distribution::PointMass(50, 7));
  ASSERT_TRUE(plan.ok());
  EXPECT_NEAR(plan->alpha, 1.0 / 50.0, 1e-12);
  EXPECT_NEAR(plan->expected_fakes_per_real(), 49.0, 1e-9);
  // The completion never samples the point itself.
  EXPECT_NEAR(plan->completion.prob(7), 0.0, 1e-12);
  ExpectMixIdentity(Distribution::PointMass(50, 7), *plan);
}

TEST(UniformCompletionTest, CompletionWeightsMatchPaperFormula) {
  const Distribution q = SkewedDistribution(16);
  auto plan = MakeUniformPlan(q);
  ASSERT_TRUE(plan.ok());
  const double mu = q.max_prob();
  const double denom = mu * 16.0 - 1.0;
  for (uint64_t i = 0; i < 16; ++i) {
    EXPECT_NEAR(plan->completion.prob(i), (mu - q.prob(i)) / denom, 1e-9);
  }
}

TEST(PeriodicCompletionTest, MixesToPeriodic) {
  const Distribution q = SkewedDistribution(64);
  for (uint64_t period : {1ULL, 2ULL, 4ULL, 8ULL, 16ULL, 32ULL, 64ULL}) {
    auto plan = MakePeriodicPlan(q, period);
    ASSERT_TRUE(plan.ok()) << period;
    ExpectMixIdentity(q, *plan);
    // Perceived distribution must be exactly ρ-periodic.
    for (uint64_t i = 0; i + period < 64; ++i) {
      EXPECT_NEAR(plan->perceived.prob(i), plan->perceived.prob(i + period),
                  1e-12)
          << "period=" << period << " i=" << i;
    }
  }
}

TEST(PeriodicCompletionTest, PeriodOneEqualsUniformPlan) {
  const Distribution q = SkewedDistribution(32);
  auto uniform = MakeUniformPlan(q);
  auto periodic = MakePeriodicPlan(q, 1);
  ASSERT_TRUE(uniform.ok() && periodic.ok());
  EXPECT_NEAR(uniform->alpha, periodic->alpha, 1e-12);
  for (uint64_t i = 0; i < 32; ++i) {
    EXPECT_NEAR(uniform->perceived.prob(i), periodic->perceived.prob(i), 1e-12);
  }
}

TEST(PeriodicCompletionTest, PeriodMForwardsEverything) {
  const Distribution q = SkewedDistribution(32);
  auto plan = MakePeriodicPlan(q, 32);
  ASSERT_TRUE(plan.ok());
  EXPECT_DOUBLE_EQ(plan->alpha, 1.0);
  EXPECT_DOUBLE_EQ(plan->expected_fakes_per_real(), 0.0);
}

TEST(PeriodicCompletionTest, AlphaNeverBelowUniformPlanAlpha) {
  // η_Q <= µ_Q, so QueryP is never more expensive than QueryU.
  const Distribution q = SkewedDistribution(60);
  auto uniform = MakeUniformPlan(q);
  ASSERT_TRUE(uniform.ok());
  for (uint64_t period : {2ULL, 3ULL, 5ULL, 6ULL, 10ULL, 15ULL, 30ULL}) {
    auto plan = MakePeriodicPlan(q, period);
    ASSERT_TRUE(plan.ok());
    EXPECT_GE(plan->alpha + 1e-12, uniform->alpha) << period;
  }
}

TEST(PeriodicCompletionTest, EtaBoundedByOneOverPeriod) {
  // η_Q = (1/ρ) Σ_j max_{i in S_j} Q(i) <= (1/ρ) Σ_j Σ_{i in S_j} Q(i) = 1/ρ,
  // which is what makes QueryP's E[fakes] = ηM - 1 <= M/ρ - 1 sublinear.
  const Distribution q = SkewedDistribution(64);
  for (uint64_t period : {2ULL, 4ULL, 8ULL, 16ULL}) {
    auto eta = AverageClassMaximum(q, period);
    ASSERT_TRUE(eta.ok());
    EXPECT_LE(eta.value(), 1.0 / static_cast<double>(period) + 1e-12);
    auto plan = MakePeriodicPlan(q, period);
    ASSERT_TRUE(plan.ok());
    EXPECT_LE(plan->expected_fakes_per_real(),
              MakeUniformPlan(q)->expected_fakes_per_real() + 1e-9);
  }
}

TEST(PeriodicCompletionTest, RejectsNonDivisorPeriods) {
  const Distribution q = SkewedDistribution(30);
  EXPECT_FALSE(MakePeriodicPlan(q, 7).ok());
  EXPECT_FALSE(MakePeriodicPlan(q, 0).ok());
  EXPECT_FALSE(MakePeriodicPlan(q, 31).ok());
  EXPECT_TRUE(MakePeriodicPlan(q, 6).ok());
}

TEST(PeriodicCompletionTest, PeriodicInputNeedsNoFakes) {
  // A distribution that is already 4-periodic on domain 16.
  std::vector<double> w(16);
  for (uint64_t i = 0; i < 16; ++i) w[i] = 1.0 + static_cast<double>(i % 4);
  auto q = Distribution::FromWeights(std::move(w));
  ASSERT_TRUE(q.ok());
  auto plan = MakePeriodicPlan(*q, 4);
  ASSERT_TRUE(plan.ok());
  EXPECT_NEAR(plan->alpha, 1.0, 1e-9);
}

TEST(CompletionSamplingTest, EmpiricalMixLooksLikeTarget) {
  // Simulate the coin + completion procedure and check the realized start
  // distribution matches the perceived one in total variation.
  const Distribution q = SkewedDistribution(32);
  auto plan = MakeUniformPlan(q);
  ASSERT_TRUE(plan.ok());
  Rng rng(77);
  Histogram h(32);
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    if (rng.Bernoulli(plan->alpha)) {
      h.Add(q.Sample(&rng));
    } else {
      h.Add(plan->completion.Sample(&rng));
    }
  }
  auto empirical = Distribution::FromHistogram(h);
  ASSERT_TRUE(empirical.ok());
  EXPECT_LT(empirical->TotalVariationDistance(plan->perceived), 0.02);
}

}  // namespace
}  // namespace mope::dist
