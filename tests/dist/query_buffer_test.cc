#include "dist/query_buffer.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace mope::dist {
namespace {

TEST(QueryBufferTest, StartsEmpty) {
  QueryBuffer buf(16);
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_FALSE(buf.Estimate().ok());
  EXPECT_FALSE(buf.UniformPlan().ok());
}

TEST(QueryBufferTest, HistogramTracksAdds) {
  QueryBuffer buf(8);
  buf.Add(3);
  buf.Add(3);
  buf.Add(5);
  EXPECT_EQ(buf.size(), 3u);
  EXPECT_EQ(buf.histogram().count(3), 2u);
  EXPECT_EQ(buf.histogram().count(5), 1u);
}

TEST(QueryBufferTest, EstimateMatchesEmpiricalFrequencies) {
  QueryBuffer buf(4);
  buf.Add(0);
  buf.Add(1);
  buf.Add(1);
  buf.Add(1);
  auto d = buf.Estimate();
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ(d->prob(0), 0.25);
  EXPECT_DOUBLE_EQ(d->prob(1), 0.75);
}

TEST(QueryBufferTest, SampleRealDrawsFromBufferWithReplacement) {
  QueryBuffer buf(8);
  buf.Add(2);
  buf.Add(6);
  Rng rng(1);
  int twos = 0, sixes = 0;
  for (int i = 0; i < 10000; ++i) {
    const uint64_t s = buf.SampleReal(&rng);
    ASSERT_TRUE(s == 2 || s == 6);
    (s == 2 ? twos : sixes)++;
  }
  EXPECT_EQ(buf.size(), 2u);  // buffer unmodified
  EXPECT_NEAR(twos, 5000, 300);
  EXPECT_NEAR(sixes, 5000, 300);
}

TEST(QueryBufferTest, SingleQueryEstimateIsPointMass) {
  // "After the user makes the first query, the system estimates that the
  // query distribution is entirely concentrated on this point" (Sec. 1.1).
  QueryBuffer buf(100);
  buf.Add(42);
  auto plan = buf.UniformPlan();
  ASSERT_TRUE(plan.ok());
  // Point mass: µ = 1, alpha = 1/M -> nearly always a fake query.
  EXPECT_NEAR(plan->alpha, 0.01, 1e-12);
}

TEST(QueryBufferTest, PlansReflectBufferEvolution) {
  QueryBuffer buf(10);
  for (uint64_t i = 0; i < 10; ++i) buf.Add(i);
  // Buffer is now uniform: no fakes needed.
  auto plan = buf.UniformPlan();
  ASSERT_TRUE(plan.ok());
  EXPECT_DOUBLE_EQ(plan->alpha, 1.0);
}

TEST(QueryBufferTest, PeriodicPlanFromBuffer) {
  QueryBuffer buf(12);
  buf.Add(0);
  buf.Add(4);
  buf.Add(8);  // all congruent mod 4
  auto plan = buf.PeriodicPlan(4);
  ASSERT_TRUE(plan.ok());
  // The estimate is 4-periodic up to the missing classes; the plan's
  // perceived distribution must be exactly periodic.
  for (uint64_t i = 0; i + 4 < 12; ++i) {
    EXPECT_NEAR(plan->perceived.prob(i), plan->perceived.prob(i + 4), 1e-12);
  }
}

TEST(QueryBufferTest, AddOutOfDomainAborts) {
  QueryBuffer buf(4);
  EXPECT_DEATH(buf.Add(4), "domain");
}

}  // namespace
}  // namespace mope::dist
