#include "common/status.h"

#include <gtest/gtest.h>

namespace mope {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "invalid argument: bad k");
}

TEST(StatusTest, EveryFactoryMatchesItsPredicate) {
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::ParseError("x").IsParseError());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "ok");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kCorruption), "corruption");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kParseError), "parse error");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("gone"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueOnSuccess) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(r.value_or("fallback"), "hello");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  std::unique_ptr<int> p = std::move(r).value();
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(*p, 7);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Result<int> DoubleIt(int x) {
  MOPE_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return 2 * v;
}

Status RequirePositive(int x) {
  MOPE_RETURN_NOT_OK(ParsePositive(x).status());
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(DoubleIt(21).value(), 42);
  EXPECT_TRUE(DoubleIt(-1).status().IsInvalidArgument());
}

TEST(StatusTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(RequirePositive(5).ok());
  EXPECT_TRUE(RequirePositive(0).IsInvalidArgument());
}

}  // namespace
}  // namespace mope
