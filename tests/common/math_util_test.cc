#include "common/math_util.h"

#include <gtest/gtest.h>

#include <cmath>

namespace mope {
namespace {

TEST(MathUtilTest, LogFactorialSmallValues) {
  EXPECT_NEAR(LogFactorial(0), 0.0, 1e-12);
  EXPECT_NEAR(LogFactorial(1), 0.0, 1e-12);
  EXPECT_NEAR(LogFactorial(5), std::log(120.0), 1e-9);
  EXPECT_NEAR(LogFactorial(10), std::log(3628800.0), 1e-9);
}

TEST(MathUtilTest, LogBinomialMatchesPascal) {
  EXPECT_NEAR(std::exp(LogBinomial(5, 2)), 10.0, 1e-9);
  EXPECT_NEAR(std::exp(LogBinomial(10, 5)), 252.0, 1e-6);
  EXPECT_NEAR(std::exp(LogBinomial(52, 5)), 2598960.0, 1e-2);
}

TEST(MathUtilTest, LogBinomialOutOfRangeIsMinusInf) {
  EXPECT_TRUE(std::isinf(LogBinomial(3, 4)));
  EXPECT_LT(LogBinomial(3, 4), 0);
}

TEST(MathUtilTest, HypergeometricPmfSumsToOne) {
  // HG(total=20, success=7, draws=12): sum over support == 1.
  double total = 0.0;
  for (uint64_t k = 0; k <= 12; ++k) {
    const double lp = LogHypergeometricPmf(20, 7, 12, k);
    if (!std::isinf(lp)) total += std::exp(lp);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(MathUtilTest, HypergeometricPmfKnownValue) {
  // P[X=2] for HG(N=10, K=4, n=5) = C(4,2)C(6,3)/C(10,5) = 6*20/252.
  EXPECT_NEAR(std::exp(LogHypergeometricPmf(10, 4, 5, 2)), 120.0 / 252.0,
              1e-9);
}

TEST(MathUtilTest, HypergeometricPmfOutsideSupport) {
  EXPECT_TRUE(std::isinf(LogHypergeometricPmf(10, 4, 5, 5)));  // k > success
  // draws - k > fail: N=10, K=8, n=5, k=0 -> 5 > 2 impossible.
  EXPECT_TRUE(std::isinf(LogHypergeometricPmf(10, 8, 5, 0)));
}

TEST(MathUtilTest, HypergeometricMean) {
  EXPECT_DOUBLE_EQ(HypergeometricMean(10, 4, 5), 2.0);
  EXPECT_DOUBLE_EQ(HypergeometricMean(100, 50, 10), 5.0);
}

TEST(MathUtilTest, NormalQuantileKnownPoints) {
  EXPECT_NEAR(NormalQuantile(0.5), 0.0, 1e-8);
  EXPECT_NEAR(NormalQuantile(0.975), 1.959964, 1e-4);
  EXPECT_NEAR(NormalQuantile(0.025), -1.959964, 1e-4);
  EXPECT_NEAR(NormalQuantile(0.999), 3.090232, 1e-4);
}

TEST(MathUtilTest, ChiSquareCriticalValueTableCheck) {
  // Tabulated: chi2_{0.05, 10} = 18.307, chi2_{0.01, 50} = 76.154.
  EXPECT_NEAR(ChiSquareCriticalValue(10, 0.05), 18.307, 0.35);
  EXPECT_NEAR(ChiSquareCriticalValue(50, 0.01), 76.154, 0.8);
}

TEST(MathUtilTest, CeilDiv) {
  EXPECT_EQ(CeilDiv(10, 5), 2u);
  EXPECT_EQ(CeilDiv(11, 5), 3u);
  EXPECT_EQ(CeilDiv(1, 5), 1u);
}

TEST(MathUtilTest, FloorLog2) {
  EXPECT_EQ(FloorLog2(1), 0);
  EXPECT_EQ(FloorLog2(2), 1);
  EXPECT_EQ(FloorLog2(3), 1);
  EXPECT_EQ(FloorLog2(1024), 10);
  EXPECT_EQ(FloorLog2(1025), 10);
}

TEST(MathUtilTest, Gcd) {
  EXPECT_EQ(Gcd(12, 18), 6u);
  EXPECT_EQ(Gcd(7, 13), 1u);
  EXPECT_EQ(Gcd(0, 5), 5u);
  EXPECT_EQ(Gcd(5, 0), 5u);
}

}  // namespace
}  // namespace mope
