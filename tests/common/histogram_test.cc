#include "common/histogram.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/math_util.h"
#include "common/random.h"

namespace mope {
namespace {

TEST(HistogramTest, AddRemoveCount) {
  Histogram h(5);
  h.Add(2);
  h.Add(2, 3);
  h.Add(4);
  EXPECT_EQ(h.count(2), 4u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.total(), 5u);
  h.Remove(2, 2);
  EXPECT_EQ(h.count(2), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(HistogramTest, ClearResets) {
  Histogram h(3);
  h.Add(0);
  h.Add(1, 5);
  h.Clear();
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.count(1), 0u);
}

TEST(HistogramTest, ProbabilityNormalizes) {
  Histogram h(4);
  h.Add(0, 1);
  h.Add(1, 3);
  EXPECT_DOUBLE_EQ(h.Probability(0), 0.25);
  EXPECT_DOUBLE_EQ(h.Probability(1), 0.75);
  EXPECT_DOUBLE_EQ(h.Probability(2), 0.0);
}

TEST(HistogramTest, NormalizedSumsToOne) {
  Histogram h(10);
  Rng rng(3);
  for (int i = 0; i < 100; ++i) h.Add(rng.UniformUint64(10));
  double sum = 0.0;
  for (double p : h.Normalized()) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(HistogramTest, MaxAndArgMax) {
  Histogram h(4);
  h.Add(1, 7);
  h.Add(3, 2);
  EXPECT_EQ(h.MaxCount(), 7u);
  EXPECT_EQ(h.ArgMax(), 1u);
}

TEST(HistogramTest, ChiSquareUniformSamplesPassesAtAlpha001) {
  // Uniform samples should look uniform.
  Histogram h(50);
  Rng rng(5);
  for (int i = 0; i < 50000; ++i) h.Add(rng.UniformUint64(50));
  const double chi2 = h.ChiSquareVsUniform();
  EXPECT_LT(chi2, ChiSquareCriticalValue(49, 0.001));
}

TEST(HistogramTest, ChiSquareDetectsSkew) {
  Histogram h(50);
  Rng rng(5);
  for (int i = 0; i < 50000; ++i) h.Add(rng.UniformUint64(25));  // half empty
  EXPECT_GT(h.ChiSquareVsUniform(), ChiSquareCriticalValue(49, 0.001));
}

TEST(HistogramTest, ChiSquareVsExpectedDistribution) {
  Histogram h(2);
  h.Add(0, 300);
  h.Add(1, 700);
  const double chi2 = h.ChiSquareVs({0.3, 0.7});
  EXPECT_NEAR(chi2, 0.0, 1e-9);
}

TEST(HistogramTest, ChiSquareVsZeroExpectedWithMassIsInf) {
  Histogram h(2);
  h.Add(0, 1);
  h.Add(1, 1);
  EXPECT_TRUE(std::isinf(h.ChiSquareVs({1.0, 0.0})));
}

TEST(HistogramTest, TotalVariationDistance) {
  Histogram a(2), b(2);
  a.Add(0, 10);
  b.Add(1, 10);
  EXPECT_DOUBLE_EQ(a.TotalVariationDistance(b), 1.0);
  Histogram c(2);
  c.Add(0, 5);
  c.Add(1, 5);
  EXPECT_DOUBLE_EQ(a.TotalVariationDistance(c), 0.5);
}

TEST(HistogramTest, AsciiRenderingMentionsCounts) {
  Histogram h(4);
  h.Add(0, 8);
  h.Add(3, 2);
  const std::string art = h.ToAscii(20, 4);
  EXPECT_NE(art.find('#'), std::string::npos);
  EXPECT_NE(art.find('8'), std::string::npos);
}

TEST(HistogramTest, EmptyHistogramBehaviour) {
  Histogram h(3);
  EXPECT_EQ(h.Probability(1), 0.0);
  EXPECT_EQ(h.ChiSquareVsUniform(), 0.0);
  EXPECT_EQ(h.MaxCount(), 0u);
}

}  // namespace
}  // namespace mope
