#include "common/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace mope {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextWord(), b.NextWord());
  }
  // Different seed diverges (overwhelmingly likely on the first word).
  Rng a2(123);
  EXPECT_NE(a2.NextWord(), c.NextWord());
}

TEST(RngTest, UniformUint64RespectsBound) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.UniformUint64(bound), bound);
    }
  }
}

TEST(RngTest, UniformUint64HitsAllValues) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformUint64(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, UniformInt64RespectsRange) {
  Rng rng(11);
  for (int i = 0; i < 500; ++i) {
    const int64_t v = rng.UniformInt64(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double u = rng.UniformDouble();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.02);
}

TEST(RngTest, BernoulliMatchesBias) {
  Rng rng(17);
  constexpr int kN = 50000;
  int heads = 0;
  for (int i = 0; i < kN; ++i) heads += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(heads) / kN, 0.3, 0.02);
}

TEST(RngTest, BernoulliDegenerateCases) {
  Rng rng(19);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  EXPECT_FALSE(rng.Bernoulli(-1.0));
  EXPECT_TRUE(rng.Bernoulli(2.0));
}

TEST(RngTest, GeometricMeanMatchesTheory) {
  Rng rng(23);
  // E[Geom(p)] = (1-p)/p failures before first success.
  constexpr double kP = 0.2;
  constexpr int kN = 50000;
  double sum = 0.0;
  for (int i = 0; i < kN; ++i) sum += static_cast<double>(rng.Geometric(kP));
  EXPECT_NEAR(sum / kN, (1 - kP) / kP, 0.1);
}

TEST(RngTest, GeometricWithPOneIsZero) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.Geometric(1.0), 0u);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(31);
  constexpr int kN = 50000;
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sumsq += g * g;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.03);
  EXPECT_NEAR(sumsq / kN, 1.0, 0.05);
}

TEST(RngTest, GaussianScaled) {
  Rng rng(37);
  constexpr int kN = 20000;
  double sum = 0.0;
  for (int i = 0; i < kN; ++i) sum += rng.Gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / kN, 10.0, 0.1);
}

TEST(RngTest, LongJumpDecorrelates) {
  Rng a(55);
  Rng b(55);
  b.LongJump();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.NextWord() == b.NextWord()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(41);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(SplitMix64Test, KnownSequenceIsDeterministic) {
  SplitMix64 a(0), b(0);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(BoundedBitSourceTest, PassesWordsThroughUntilBudgetSpent) {
  Rng reference(123), inner(123);
  BoundedBitSource bounded(&inner, 5);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(bounded.NextWord(), reference.NextWord());
    EXPECT_FALSE(bounded.exhausted());
  }
  EXPECT_EQ(bounded.remaining(), 0u);
}

TEST(BoundedBitSourceTest, LatchesExhaustedAndReturnsZeroPastBudget) {
  Rng inner(124);
  BoundedBitSource bounded(&inner, 2);
  bounded.NextWord();
  bounded.NextWord();
  EXPECT_FALSE(bounded.exhausted());
  EXPECT_EQ(bounded.NextWord(), 0u);
  EXPECT_TRUE(bounded.exhausted());
  // The flag stays latched; further draws keep yielding zero.
  EXPECT_EQ(bounded.NextWord(), 0u);
  EXPECT_TRUE(bounded.exhausted());
}

TEST(BoundedBitSourceTest, ZeroBudgetIsImmediatelyExhaustedOnFirstDraw) {
  Rng inner(125);
  BoundedBitSource bounded(&inner, 0);
  EXPECT_FALSE(bounded.exhausted());
  EXPECT_EQ(bounded.NextWord(), 0u);
  EXPECT_TRUE(bounded.exhausted());
}

TEST(BoundedBitSourceTest, RejectionSamplingTerminatesWhenExhausted) {
  // UniformUint64's rejection loop must not spin forever on the dead
  // all-zero stream: zero is below every rejection limit.
  Rng inner(126);
  BoundedBitSource bounded(&inner, 0);
  EXPECT_EQ(bounded.UniformUint64(1000), 0u);
  EXPECT_TRUE(bounded.exhausted());
}

}  // namespace
}  // namespace mope
