/// \file thread_annotations_test.cc
/// Behavioral tests for the annotated lock wrappers. The *static* half of
/// the contract (MOPE_GUARDED_BY etc.) is checked by the clang-tsa build
/// preset, not by assertions here; this file pins down the runtime half:
/// mutual exclusion, TryLock semantics, shared/exclusive readers, CondVar
/// wakeups, and — in builds with MOPE_LOCK_RANK_CHECKS on (debug and all
/// sanitizer presets) — the lock-rank assertion that turns a latent
/// deadlock into a deterministic abort.

#include "common/thread_annotations.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace mope {
namespace {

TEST(MutexTest, MutualExclusionUnderContention) {
  Mutex mu;
  int64_t counter = 0;  // guarded by mu (by convention; test TU, no TSA)
  constexpr int kThreads = 8;
  constexpr int kIncrements = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        const MutexLock lock(&mu);
        ++counter;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter, static_cast<int64_t>(kThreads) * kIncrements);
}

TEST(MutexTest, TryLockFailsWhileHeldAndSucceedsAfter) {
  Mutex mu;
  mu.Lock();
  std::atomic<bool> contended_result{true};
  // TryLock from another thread: self-try-lock on a std mutex is undefined.
  std::thread contender([&] { contended_result = mu.TryLock(); });
  contender.join();
  EXPECT_FALSE(contended_result.load());
  mu.Unlock();
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(SharedMutexTest, ReadersOverlapWritersExclude) {
  SharedMutex mu;
  int64_t value = 0;
  std::atomic<int> concurrent_readers{0};
  std::atomic<int> max_concurrent_readers{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        const ReaderMutexLock lock(&mu);
        const int now = ++concurrent_readers;
        int seen = max_concurrent_readers.load();
        while (now > seen &&
               !max_concurrent_readers.compare_exchange_weak(seen, now)) {
        }
        // A torn read here would be a writer overlapping a reader.
        EXPECT_EQ(value % 2, 0);
        --concurrent_readers;
      }
    });
  }
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        const WriterMutexLock lock(&mu);
        EXPECT_EQ(concurrent_readers.load(), 0);
        ++value;  // transiently odd only while exclusively held
        ++value;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(value, 2 * 2 * 500);
  // Not guaranteed by the standard, but with 4 readers spinning for 500
  // iterations the shared mode overlapping at least once is as close to
  // certain as scheduling gets; a regression to exclusive-only would fail.
  EXPECT_GE(max_concurrent_readers.load(), 1);
}

TEST(CondVarTest, ProducerConsumerHandoff) {
  Mutex mu;
  CondVar cv;
  std::vector<int> queue;  // guarded by mu
  bool done = false;       // guarded by mu
  constexpr int kItems = 1000;

  int64_t consumed_sum = 0;
  std::thread consumer([&] {
    MutexLock lock(&mu);
    while (true) {
      while (queue.empty() && !done) cv.Wait(lock);
      for (int v : queue) consumed_sum += v;
      queue.clear();
      if (done) return;
    }
  });

  int64_t produced_sum = 0;
  for (int i = 1; i <= kItems; ++i) {
    {
      const MutexLock lock(&mu);
      queue.push_back(i);
    }
    produced_sum += i;
    cv.NotifyOne();
  }
  {
    const MutexLock lock(&mu);
    done = true;
  }
  cv.NotifyAll();
  consumer.join();
  EXPECT_EQ(consumed_sum, produced_sum);
}

#if MOPE_LOCK_RANK_CHECKS

TEST(LockRankTest, IncreasingAcquisitionOrderIsAllowed) {
  Mutex low(lock_rank::kProxy);
  Mutex high(lock_rank::kDispatcher);
  const MutexLock outer(&low);
  const MutexLock inner(&high);  // higher rank while holding lower: fine
  SUCCEED();
}

TEST(LockRankTest, UnrankedMutexesAreExempt) {
  Mutex ranked(lock_rank::kMetricsRegistry);
  Mutex unranked;  // rank kNone: helper/test mutexes opt out of the order
  const MutexLock outer(&ranked);
  const MutexLock inner(&unranked);
  SUCCEED();
}

TEST(LockRankDeathTest, DecreasingAcquisitionOrderAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex high(lock_rank::kDispatcher);
        Mutex low(lock_rank::kProxy);
        const MutexLock outer(&high);
        const MutexLock inner(&low);
      },
      "lock-rank violation");
}

TEST(LockRankDeathTest, SameRankReacquisitionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex a(lock_rank::kTrace);
        Mutex b(lock_rank::kTrace);
        const MutexLock outer(&a);
        const MutexLock inner(&b);
      },
      "lock-rank violation");
}

#endif  // MOPE_LOCK_RANK_CHECKS

}  // namespace
}  // namespace mope
