#include "common/interval.h"

#include <gtest/gtest.h>

namespace mope {
namespace {

TEST(ModularIntervalTest, NonWrappingBasics) {
  ModularInterval iv(3, 4, 10);  // {3,4,5,6}
  EXPECT_FALSE(iv.wraps());
  EXPECT_EQ(iv.last(), 6u);
  EXPECT_TRUE(iv.Contains(3));
  EXPECT_TRUE(iv.Contains(6));
  EXPECT_FALSE(iv.Contains(2));
  EXPECT_FALSE(iv.Contains(7));
  EXPECT_FALSE(iv.Contains(10));  // outside the domain
}

TEST(ModularIntervalTest, WrappingBasics) {
  ModularInterval iv(8, 5, 10);  // {8,9,0,1,2}
  EXPECT_TRUE(iv.wraps());
  EXPECT_EQ(iv.last(), 2u);
  for (uint64_t x : {8u, 9u, 0u, 1u, 2u}) EXPECT_TRUE(iv.Contains(x)) << x;
  for (uint64_t x : {3u, 7u}) EXPECT_FALSE(iv.Contains(x)) << x;
}

TEST(ModularIntervalTest, FullDomain) {
  ModularInterval iv(4, 10, 10);
  for (uint64_t x = 0; x < 10; ++x) EXPECT_TRUE(iv.Contains(x));
  EXPECT_EQ(iv.last(), 3u);
}

TEST(ModularIntervalTest, SingleElement) {
  ModularInterval iv(9, 1, 10);
  EXPECT_TRUE(iv.Contains(9));
  EXPECT_FALSE(iv.Contains(0));
  EXPECT_FALSE(iv.wraps());
}

TEST(ModularIntervalTest, FromEndpointsNonWrap) {
  auto iv = ModularInterval::FromEndpoints(2, 5, 10);
  EXPECT_EQ(iv.start(), 2u);
  EXPECT_EQ(iv.length(), 4u);
  EXPECT_EQ(iv.last(), 5u);
}

TEST(ModularIntervalTest, FromEndpointsWrap) {
  auto iv = ModularInterval::FromEndpoints(7, 1, 10);  // {7,8,9,0,1}
  EXPECT_EQ(iv.length(), 5u);
  EXPECT_TRUE(iv.wraps());
  EXPECT_TRUE(iv.Contains(0));
  EXPECT_FALSE(iv.Contains(5));
}

TEST(ModularIntervalTest, FromEndpointsSame) {
  auto iv = ModularInterval::FromEndpoints(4, 4, 10);
  EXPECT_EQ(iv.length(), 1u);
}

TEST(ModularIntervalTest, SegmentsNonWrap) {
  std::array<Segment, 2> segs;
  EXPECT_EQ(ModularInterval(3, 4, 10).ToSegments(&segs), 1);
  EXPECT_EQ(segs[0], (Segment{3, 6}));
}

TEST(ModularIntervalTest, SegmentsWrap) {
  std::array<Segment, 2> segs;
  EXPECT_EQ(ModularInterval(8, 5, 10).ToSegments(&segs), 2);
  EXPECT_EQ(segs[0], (Segment{0, 2}));
  EXPECT_EQ(segs[1], (Segment{8, 9}));
}

TEST(ModularIntervalTest, SegmentsCoverExactlyTheInterval) {
  for (uint64_t start = 0; start < 12; ++start) {
    for (uint64_t len = 1; len <= 12; ++len) {
      ModularInterval iv(start, len, 12);
      std::array<Segment, 2> segs;
      const int n = iv.ToSegments(&segs);
      uint64_t covered = 0;
      for (uint64_t x = 0; x < 12; ++x) {
        bool in_seg = false;
        for (int i = 0; i < n; ++i) {
          in_seg |= (x >= segs[i].lo && x <= segs[i].hi);
        }
        EXPECT_EQ(in_seg, iv.Contains(x)) << iv.ToString() << " x=" << x;
        covered += in_seg ? 1 : 0;
      }
      EXPECT_EQ(covered, len);
    }
  }
}

TEST(ModularIntervalTest, OffsetOf) {
  ModularInterval iv(8, 5, 10);
  EXPECT_EQ(iv.OffsetOf(8), 0u);
  EXPECT_EQ(iv.OffsetOf(0), 2u);
  EXPECT_EQ(iv.OffsetOf(2), 4u);
  EXPECT_FALSE(iv.OffsetOf(3).has_value());
  EXPECT_FALSE(iv.OffsetOf(10).has_value());
}

TEST(ModularIntervalTest, Shifted) {
  ModularInterval iv(8, 3, 10);
  ModularInterval shifted = iv.Shifted(4);
  EXPECT_EQ(shifted.start(), 2u);
  EXPECT_EQ(shifted.length(), 3u);
}

TEST(ModularIntervalTest, ToStringRendersWrap) {
  EXPECT_EQ(ModularInterval(8, 5, 10).ToString(), "[8, 2] mod 10");
  EXPECT_EQ(ModularInterval(1, 2, 10).ToString(), "[1, 2] mod 10");
}

TEST(SegmentTest, Length) {
  EXPECT_EQ((Segment{3, 3}).length(), 1u);
  EXPECT_EQ((Segment{0, 9}).length(), 10u);
}

}  // namespace
}  // namespace mope
