#include "ope/mope.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace mope::ope {
namespace {

MopeScheme MakeScheme(uint64_t domain, uint64_t range, uint64_t seed = 9) {
  Rng rng(seed);
  auto scheme =
      MopeScheme::Create({domain, range}, MopeKey::Generate(domain, &rng));
  EXPECT_TRUE(scheme.ok()) << scheme.status();
  return std::move(scheme).value();
}

TEST(MopeTest, KeyGenerationDrawsOffsetInDomain) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const MopeKey key = MopeKey::Generate(97, &rng);
    EXPECT_LT(key.offset, 97u);
  }
}

TEST(MopeTest, CreateRejectsOffsetOutsideDomain) {
  Rng rng(4);
  MopeKey key = MopeKey::Generate(10, &rng);
  key.offset = 10;
  EXPECT_TRUE(MopeScheme::Create({10, 128}, key).status().IsInvalidArgument());
}

TEST(MopeTest, RoundTripOverFullDomain) {
  MopeScheme s = MakeScheme(300, 4096);
  for (uint64_t m = 0; m < 300; ++m) {
    const auto c = s.Encrypt(m);
    ASSERT_TRUE(c.ok());
    EXPECT_EQ(s.Decrypt(c.value()).value(), m);
  }
}

TEST(MopeTest, PreservesModularOrderNotLinearOrder) {
  // With a non-zero offset, Enc is monotone on the *shifted* values: there
  // is exactly one descent in the ciphertext sequence over 0..M-1, located
  // at the wrap point m = M - offset.
  Rng rng(5);
  MopeKey key = MopeKey::Generate(100, &rng);
  key.offset = 37;
  auto s = MopeScheme::Create({100, 1024}, key);
  ASSERT_TRUE(s.ok());
  int descents = 0;
  uint64_t descent_at = 0;
  uint64_t prev = s->Encrypt(0).value();
  for (uint64_t m = 1; m < 100; ++m) {
    const uint64_t c = s->Encrypt(m).value();
    if (c < prev) {
      ++descents;
      descent_at = m;
    }
    prev = c;
  }
  EXPECT_EQ(descents, 1);
  EXPECT_EQ(descent_at, 100 - 37);
}

TEST(MopeTest, ZeroOffsetDegeneratesToPlainOpe) {
  Rng rng(6);
  MopeKey key = MopeKey::Generate(64, &rng);
  key.offset = 0;
  auto s = MopeScheme::Create({64, 1024}, key);
  ASSERT_TRUE(s.ok());
  uint64_t prev = 0;
  for (uint64_t m = 0; m < 64; ++m) {
    const uint64_t c = s->Encrypt(m).value();
    if (m > 0) EXPECT_GT(c, prev);
    prev = c;
  }
}

TEST(MopeTest, EncryptRangeNonWrappingQuery) {
  MopeScheme s = MakeScheme(100, 1024);
  const auto range =
      s.EncryptRange(ModularInterval::FromEndpoints(10, 20, 100));
  ASSERT_TRUE(range.ok());
  // Membership: every plaintext in [10,20] must have its ciphertext inside
  // the (possibly wrapping) cipher range; everything else outside.
  const ModularInterval cipher_iv = ModularInterval::FromEndpoints(
      range->first, range->last, s.range());
  for (uint64_t m = 0; m < 100; ++m) {
    const uint64_t c = s.Encrypt(m).value();
    EXPECT_EQ(cipher_iv.Contains(c), m >= 10 && m <= 20) << m;
  }
}

TEST(MopeTest, EncryptRangeWrapAroundQuery) {
  MopeScheme s = MakeScheme(100, 1024);
  // Wrap-around (dummy) query {90..99, 0..5}.
  const auto range = s.EncryptRange(ModularInterval::FromEndpoints(90, 5, 100));
  ASSERT_TRUE(range.ok());
  const ModularInterval plain_iv = ModularInterval::FromEndpoints(90, 5, 100);
  const ModularInterval cipher_iv =
      ModularInterval::FromEndpoints(range->first, range->last, s.range());
  for (uint64_t m = 0; m < 100; ++m) {
    const uint64_t c = s.Encrypt(m).value();
    EXPECT_EQ(cipher_iv.Contains(c), plain_iv.Contains(m)) << m;
  }
}

TEST(MopeTest, EncryptRangeFullDomainCoversEverything) {
  MopeScheme s = MakeScheme(60, 512);
  const auto range = s.EncryptRange(ModularInterval(17, 60, 60));
  ASSERT_TRUE(range.ok());
  const ModularInterval cipher_iv =
      ModularInterval::FromEndpoints(range->first, range->last, s.range());
  for (uint64_t m = 0; m < 60; ++m) {
    EXPECT_TRUE(cipher_iv.Contains(s.Encrypt(m).value())) << m;
  }
}

TEST(MopeTest, EncryptRangeRejectsWrongDomain) {
  MopeScheme s = MakeScheme(100, 1024);
  EXPECT_TRUE(s.EncryptRange(ModularInterval(0, 5, 99))
                  .status()
                  .IsInvalidArgument());
}

TEST(MopeTest, CipherRangeWrapsIffShiftedIntervalWraps) {
  Rng rng(8);
  MopeKey key = MopeKey::Generate(100, &rng);
  key.offset = 40;
  auto s = MopeScheme::Create({100, 2048}, key);
  ASSERT_TRUE(s.ok());
  // [50, 70] shifted by 40 -> [90, 110 mod 100]: wraps.
  const auto wrapping =
      s->EncryptRange(ModularInterval::FromEndpoints(50, 70, 100));
  ASSERT_TRUE(wrapping.ok());
  EXPECT_TRUE(wrapping->wraps());
  // [10, 30] shifted by 40 -> [50, 70]: does not wrap.
  const auto straight =
      s->EncryptRange(ModularInterval::FromEndpoints(10, 30, 100));
  ASSERT_TRUE(straight.ok());
  EXPECT_FALSE(straight->wraps());
}

TEST(MopeTest, DifferentOffsetsSameOpeKeyShiftPlaintexts) {
  Rng rng(10);
  MopeKey k1 = MopeKey::Generate(50, &rng);
  MopeKey k2 = k1;
  k1.offset = 3;
  k2.offset = 7;
  auto a = MopeScheme::Create({50, 512}, k1);
  auto b = MopeScheme::Create({50, 512}, k2);
  // Enc_a(m) == Enc_b(m - 4 mod 50): same underlying OPF, shifted input.
  for (uint64_t m = 0; m < 50; ++m) {
    EXPECT_EQ(a->Encrypt(m).value(), b->Encrypt((m + 50 - 4) % 50).value());
  }
}


TEST(MopeKeyTest, SerializeDeserializeRoundTrip) {
  Rng rng(77);
  for (int i = 0; i < 20; ++i) {
    const MopeKey key = MopeKey::Generate(10000, &rng);
    const auto back = MopeKey::Deserialize(key.Serialize());
    ASSERT_TRUE(back.ok()) << back.status();
    EXPECT_EQ(back->offset, key.offset);
    EXPECT_EQ(back->ope_key.prf_key, key.ope_key.prf_key);
  }
}

TEST(MopeKeyTest, SerializedFormIsStable) {
  MopeKey key;
  key.ope_key.prf_key.fill(0xAB);
  key.offset = 42;
  EXPECT_EQ(key.Serialize(), "abababababababababababababababab:42");
}

TEST(MopeKeyTest, DeserializeRejectsMalformedInput) {
  EXPECT_FALSE(MopeKey::Deserialize("").ok());
  EXPECT_FALSE(MopeKey::Deserialize("deadbeef:1").ok());        // short hex
  EXPECT_FALSE(MopeKey::Deserialize(std::string(32, 'g') + ":1").ok());
  EXPECT_FALSE(
      MopeKey::Deserialize(std::string(32, 'a') + ":").ok());   // no offset
  EXPECT_FALSE(
      MopeKey::Deserialize(std::string(32, 'a') + ":x").ok());  // bad offset
  EXPECT_TRUE(MopeKey::Deserialize(std::string(32, 'a') + ":7").ok());
}

TEST(MopeKeyTest, DeserializeRejectsOffsetOverflowAndTrailingGarbage) {
  // 2^64 does not fit a uint64_t offset.
  EXPECT_FALSE(
      MopeKey::Deserialize(std::string(32, 'a') + ":18446744073709551616")
          .ok());
  EXPECT_FALSE(
      MopeKey::Deserialize(std::string(32, 'a') + ":12x").ok());
  EXPECT_FALSE(
      MopeKey::Deserialize(std::string(32, 'a') + ":1 ").ok());
  EXPECT_FALSE(
      MopeKey::Deserialize(std::string(32, 'a') + ":1:2").ok());
}

TEST(MopeKeyTest, MalformedKeyErrorPropagatesToCaller) {
  // The proxy's key-load path: Deserialize then Create. A malformed blob
  // must surface as InvalidArgument at each stage, never crash or yield a
  // scheme with a garbage key.
  const auto key = MopeKey::Deserialize("not a key at all");
  ASSERT_FALSE(key.ok());
  EXPECT_TRUE(key.status().IsInvalidArgument());

  const auto load = [](const std::string& blob) -> Result<MopeScheme> {
    MOPE_ASSIGN_OR_RETURN(MopeKey k, MopeKey::Deserialize(blob));
    return MopeScheme::Create({500, 4096}, k);
  };
  const auto scheme = load(std::string(32, 'z') + ":1");
  ASSERT_FALSE(scheme.ok());
  EXPECT_TRUE(scheme.status().IsInvalidArgument());

  // A well-formed key whose offset is outside the domain is also rejected.
  const auto oversized = load(std::string(32, 'a') + ":500");
  ASSERT_FALSE(oversized.ok());
  EXPECT_TRUE(oversized.status().IsInvalidArgument());
}

TEST(MopeKeyTest, DeserializedKeyEncryptsIdentically) {
  Rng rng(78);
  const MopeKey key = MopeKey::Generate(500, &rng);
  const auto back = MopeKey::Deserialize(key.Serialize());
  ASSERT_TRUE(back.ok());
  auto a = MopeScheme::Create({500, 4096}, key);
  auto b = MopeScheme::Create({500, 4096}, back.value());
  ASSERT_TRUE(a.ok() && b.ok());
  for (uint64_t m = 0; m < 500; m += 13) {
    EXPECT_EQ(a->Encrypt(m).value(), b->Encrypt(m).value());
  }
}

}  // namespace
}  // namespace mope::ope
