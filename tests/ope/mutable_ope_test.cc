#include "ope/mutable_ope.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/random.h"

namespace mope::ope {
namespace {

crypto::Key128 TestKey(uint8_t fill = 0x31) {
  crypto::Key128 key;
  key.fill(fill);
  return key;
}

TEST(DetCipherTest, RoundTrip) {
  DetCipher det(TestKey());
  for (uint64_t m : std::vector<uint64_t>{0, 1, 12345, ~uint64_t{0}}) {
    const auto back = det.Decrypt(det.Encrypt(m));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), m);
  }
}

TEST(DetCipherTest, DeterministicAndKeyed) {
  DetCipher a(TestKey(1)), b(TestKey(2));
  EXPECT_EQ(a.Encrypt(7), a.Encrypt(7));
  EXPECT_NE(a.Encrypt(7), b.Encrypt(7));
  EXPECT_NE(a.Encrypt(7), a.Encrypt(8));
}

TEST(DetCipherTest, WrongKeyFailsTagCheck) {
  DetCipher a(TestKey(1)), b(TestKey(2));
  EXPECT_TRUE(b.Decrypt(a.Encrypt(42)).status().IsCorruption());
}

TEST(MutableOpeTest, EncodingsAreOrderPreserving) {
  MutableOpeServer server;
  MutableOpeClient client(TestKey(), &server);
  Rng rng(1);
  std::vector<uint64_t> values;
  for (int i = 0; i < 500; ++i) values.push_back(rng.UniformUint64(100000));
  std::map<uint64_t, uint64_t> value_to_encoding;  // final encodings
  for (uint64_t v : values) {
    ASSERT_TRUE(client.Insert(v).ok());
  }
  // Read the final encodings off the server dump and check monotonicity
  // against the decrypted values.
  DetCipher det(TestKey());
  uint64_t prev_value = 0, prev_encoding = 0;
  bool first = true;
  for (const auto& [encoding, cipher] : server.Dump()) {
    const auto value = det.Decrypt(cipher);
    ASSERT_TRUE(value.ok());
    if (!first) {
      EXPECT_GE(value.value(), prev_value);
      EXPECT_GT(encoding, prev_encoding);
    }
    prev_value = value.value();
    prev_encoding = encoding;
    first = false;
  }
  EXPECT_EQ(server.size(), values.size());
}

TEST(MutableOpeTest, SequentialInsertsForceRebalances) {
  // Ascending inserts degenerate the tree; the path budget forces
  // rebalances and re-encodings — the "mutable" cost of mOPE.
  MutableOpeServer server;
  MutableOpeClient client(TestKey(), &server);
  for (uint64_t v = 0; v < 300; ++v) {
    ASSERT_TRUE(client.Insert(v).ok());
  }
  EXPECT_GT(server.rebalances(), 0u);
  EXPECT_GT(server.reencodings(), 0u);
  // Order must survive the rebalances.
  const auto dump = server.Dump();
  DetCipher det(TestKey());
  for (size_t i = 0; i < dump.size(); ++i) {
    EXPECT_EQ(det.Decrypt(dump[i].second).value(), i);
  }
}

TEST(MutableOpeTest, InteractionRoundsGrowLogarithmically) {
  MutableOpeServer server;
  MutableOpeClient client(TestKey(), &server);
  Rng rng(2);
  constexpr int kN = 2000;
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(client.Insert(rng.NextWord()).ok());
  }
  const double rounds_per_insert =
      static_cast<double>(server.interaction_rounds()) / kN;
  // Random inserts keep the tree ~log2(n) deep; allow generous slack.
  EXPECT_GT(rounds_per_insert, 5.0);
  EXPECT_LT(rounds_per_insert, 40.0);
}

TEST(MutableOpeTest, DuplicatesAllowed) {
  MutableOpeServer server;
  MutableOpeClient client(TestKey(), &server);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(client.Insert(7).ok());
  }
  EXPECT_EQ(server.size(), 50u);
}

TEST(MutableOpeTest, LowerBoundEncodingSupportsRangeQueries) {
  MutableOpeServer server;
  MutableOpeClient client(TestKey(), &server);
  std::vector<uint64_t> values{10, 20, 20, 30, 40, 50};
  for (uint64_t v : values) ASSERT_TRUE(client.Insert(v).ok());

  // Range [15, 40]: count stored encodings in [lb(15), lb(41)).
  const auto lo = client.LowerBoundEncoding(15);
  const auto hi = client.LowerBoundEncoding(41);
  ASSERT_TRUE(lo.ok() && hi.ok());
  int in_range = 0;
  for (const auto& [encoding, cipher] : server.Dump()) {
    if (encoding >= lo.value() && encoding < hi.value()) ++in_range;
  }
  EXPECT_EQ(in_range, 4);  // 20, 20, 30, 40

  // Bound above everything.
  const auto top = client.LowerBoundEncoding(1000);
  ASSERT_TRUE(top.ok());
  for (const auto& [encoding, cipher] : server.Dump()) {
    EXPECT_LT(encoding, top.value());
  }
  // Bound below everything.
  const auto bottom = client.LowerBoundEncoding(0);
  ASSERT_TRUE(bottom.ok());
  for (const auto& [encoding, cipher] : server.Dump()) {
    EXPECT_GE(encoding, bottom.value());
  }
}

TEST(MutableOpeTest, RandomizedLowerBoundMatchesReference) {
  MutableOpeServer server;
  MutableOpeClient client(TestKey(), &server);
  Rng rng(3);
  std::vector<uint64_t> values;
  for (int i = 0; i < 400; ++i) {
    values.push_back(rng.UniformUint64(1000));
    ASSERT_TRUE(client.Insert(values.back()).ok());
  }
  std::sort(values.begin(), values.end());
  for (int trial = 0; trial < 100; ++trial) {
    const uint64_t probe = rng.UniformUint64(1100);
    const auto lb = client.LowerBoundEncoding(probe);
    ASSERT_TRUE(lb.ok());
    size_t count = 0;
    for (const auto& [encoding, cipher] : server.Dump()) {
      if (encoding >= lb.value()) ++count;
    }
    const size_t expected = static_cast<size_t>(
        values.end() - std::lower_bound(values.begin(), values.end(), probe));
    EXPECT_EQ(count, expected) << probe;
  }
}

TEST(MutableOpeTest, ServerOnlySeesOpaqueBlocks) {
  // The ciphertexts on the server must not be equal to (or ordered like)
  // the plaintexts — only the assigned encodings carry order.
  MutableOpeServer server;
  MutableOpeClient client(TestKey(), &server);
  for (uint64_t v = 0; v < 64; ++v) ASSERT_TRUE(client.Insert(v).ok());
  const auto dump = server.Dump();
  int ascending_pairs = 0;
  for (size_t i = 1; i < dump.size(); ++i) {
    if (dump[i].second > dump[i - 1].second) ++ascending_pairs;
  }
  // Opaque AES blocks compared bytewise: ~half the adjacent pairs ascend.
  EXPECT_GT(ascending_pairs, 10);
  EXPECT_LT(ascending_pairs, 54);
}

}  // namespace
}  // namespace mope::ope
