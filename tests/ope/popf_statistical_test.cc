/// Statistical POPF check: the lazy-sampled OPE scheme should be
/// distributed like a uniformly random order-preserving function. We cannot
/// test indistinguishability directly, but we can compare low-order
/// statistics of OpeScheme (over many keys) against RandomOpf (over true
/// randomness): the marginal distribution of each plaintext's ciphertext
/// and the image-membership rate of each range point.

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "ope/ideal.h"
#include "ope/ope.h"

namespace mope::ope {
namespace {

constexpr uint64_t kM = 16;
constexpr uint64_t kN = 128;
constexpr int kKeys = 1500;

TEST(PopfStatisticalTest, CiphertextMarginalsMatchTheIdealObject) {
  Rng rng(0x90F);

  // Mean ciphertext of each plaintext under the real scheme across keys...
  std::vector<double> real_mean(kM, 0.0);
  for (int trial = 0; trial < kKeys; ++trial) {
    auto scheme = OpeScheme::Create({kM, kN}, OpeKey::Generate(&rng));
    ASSERT_TRUE(scheme.ok());
    for (uint64_t m = 0; m < kM; ++m) {
      real_mean[m] += static_cast<double>(scheme->Encrypt(m).value());
    }
  }
  // ... and under the ideal object across samples.
  std::vector<double> ideal_mean(kM, 0.0);
  for (int trial = 0; trial < kKeys; ++trial) {
    const RandomOpf opf = RandomOpf::Sample(kM, kN, &rng);
    for (uint64_t m = 0; m < kM; ++m) {
      ideal_mean[m] += static_cast<double>(opf.Encrypt(m));
    }
  }
  for (uint64_t m = 0; m < kM; ++m) {
    real_mean[m] /= kKeys;
    ideal_mean[m] /= kKeys;
    // Order statistics of an M-subset of [N]: E[c_m] = (m+1)(N+1)/(M+1) - 1.
    const double theory = (static_cast<double>(m) + 1.0) * (kN + 1.0) /
                              (kM + 1.0) - 1.0;
    EXPECT_NEAR(real_mean[m], theory, 2.5) << "m=" << m;
    EXPECT_NEAR(real_mean[m], ideal_mean[m], 3.0) << "m=" << m;
  }
}

TEST(PopfStatisticalTest, ImageMembershipRateIsUniform) {
  // Each ciphertext slot should be in the image with probability M/N.
  Rng rng(0x90E);
  std::vector<int> hits(kN, 0);
  for (int trial = 0; trial < kKeys; ++trial) {
    auto scheme = OpeScheme::Create({kM, kN}, OpeKey::Generate(&rng));
    ASSERT_TRUE(scheme.ok());
    for (uint64_t m = 0; m < kM; ++m) {
      ++hits[scheme->Encrypt(m).value()];
    }
  }
  const double expected = static_cast<double>(kKeys) * kM / kN;
  for (uint64_t c = 0; c < kN; ++c) {
    EXPECT_NEAR(hits[c], expected, 6.0 * std::sqrt(expected)) << "c=" << c;
  }
}

TEST(PopfStatisticalTest, DistinctKeysSampleDistinctFunctions) {
  Rng rng(0x90D);
  std::set<std::vector<uint64_t>> images;
  for (int trial = 0; trial < 100; ++trial) {
    auto scheme = OpeScheme::Create({kM, kN}, OpeKey::Generate(&rng));
    ASSERT_TRUE(scheme.ok());
    std::vector<uint64_t> image;
    for (uint64_t m = 0; m < kM; ++m) {
      image.push_back(scheme->Encrypt(m).value());
    }
    images.insert(std::move(image));
  }
  // C(128,16) is astronomically large; 100 keys must give ~100 functions.
  EXPECT_GT(images.size(), 95u);
}

}  // namespace
}  // namespace mope::ope
