#include "ope/ideal.h"

#include <gtest/gtest.h>

#include <cmath>

#include <algorithm>

#include "common/random.h"

namespace mope::ope {
namespace {

TEST(RandomOpfTest, TableIsSortedDistinctAndInRange) {
  Rng rng(1);
  const RandomOpf f = RandomOpf::Sample(50, 400, &rng);
  const auto& table = f.table();
  ASSERT_EQ(table.size(), 50u);
  for (size_t i = 0; i < table.size(); ++i) {
    EXPECT_LT(table[i], 400u);
    if (i > 0) EXPECT_GT(table[i], table[i - 1]);
  }
}

TEST(RandomOpfTest, EncryptDecryptRoundTrip) {
  Rng rng(2);
  const RandomOpf f = RandomOpf::Sample(30, 256, &rng);
  for (uint64_t m = 0; m < 30; ++m) {
    EXPECT_EQ(f.Decrypt(f.Encrypt(m)).value(), m);
  }
}

TEST(RandomOpfTest, DecryptRejectsNonImagePoints) {
  Rng rng(3);
  const RandomOpf f = RandomOpf::Sample(4, 64, &rng);
  int rejected = 0;
  for (uint64_t c = 0; c < 64; ++c) {
    if (!f.Decrypt(c).ok()) ++rejected;
  }
  EXPECT_EQ(rejected, 60);
}

TEST(RandomOpfTest, DecryptFloorCeil) {
  Rng rng(4);
  const RandomOpf f = RandomOpf::Sample(8, 64, &rng);
  for (uint64_t c = 0; c < 64; ++c) {
    uint64_t expected = 8;
    for (uint64_t m = 0; m < 8; ++m) {
      if (f.Encrypt(m) >= c) {
        expected = m;
        break;
      }
    }
    EXPECT_EQ(f.DecryptFloorCeil(c), expected) << c;
  }
}

TEST(RandomOpfTest, MarginalIsApproximatelyUniform) {
  // Each range point should appear in the image with probability M/N.
  Rng rng(5);
  constexpr int kTrials = 3000;
  constexpr uint64_t kM = 8, kN = 64;
  std::vector<int> hits(kN, 0);
  for (int t = 0; t < kTrials; ++t) {
    const RandomOpf f = RandomOpf::Sample(kM, kN, &rng);
    for (uint64_t v : f.table()) ++hits[v];
  }
  const double expected = static_cast<double>(kTrials) * kM / kN;
  for (uint64_t c = 0; c < kN; ++c) {
    EXPECT_NEAR(hits[c], expected, 5.0 * std::sqrt(expected)) << c;
  }
}

TEST(RandomOpfTest, FullBijectionWhenDomainEqualsRange) {
  Rng rng(6);
  const RandomOpf f = RandomOpf::Sample(16, 16, &rng);
  for (uint64_t m = 0; m < 16; ++m) EXPECT_EQ(f.Encrypt(m), m);
}

TEST(RandomMopfTest, RoundTripWithOffset) {
  Rng rng(7);
  const RandomMopf f = RandomMopf::Sample(40, 320, &rng);
  EXPECT_LT(f.offset(), 40u);
  for (uint64_t m = 0; m < 40; ++m) {
    EXPECT_EQ(f.Decrypt(f.Encrypt(m)).value(), m);
  }
}

TEST(RandomMopfTest, ModularOrderHasOneDescent) {
  Rng rng(8);
  for (int trial = 0; trial < 10; ++trial) {
    const RandomMopf f = RandomMopf::Sample(30, 300, &rng);
    int descents = 0;
    for (uint64_t m = 1; m < 30; ++m) {
      if (f.Encrypt(m) < f.Encrypt(m - 1)) ++descents;
    }
    EXPECT_EQ(descents, f.offset() == 0 ? 0 : 1);
  }
}

TEST(RandomMopfTest, OffsetIsUniformish) {
  Rng rng(9);
  constexpr uint64_t kM = 10;
  std::vector<int> counts(kM, 0);
  constexpr int kTrials = 5000;
  for (int t = 0; t < kTrials; ++t) {
    ++counts[RandomMopf::Sample(kM, 80, &rng).offset()];
  }
  for (uint64_t j = 0; j < kM; ++j) {
    EXPECT_NEAR(counts[j], kTrials / 10.0, 120.0) << j;
  }
}

}  // namespace
}  // namespace mope::ope
