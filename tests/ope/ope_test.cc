#include "ope/ope.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/random.h"

namespace mope::ope {
namespace {

OpeScheme MakeScheme(uint64_t domain, uint64_t range, uint64_t seed = 7) {
  Rng rng(seed);
  auto scheme = OpeScheme::Create({domain, range}, OpeKey::Generate(&rng));
  EXPECT_TRUE(scheme.ok()) << scheme.status();
  return std::move(scheme).value();
}

TEST(OpeTest, CreateValidatesParameters) {
  Rng rng(1);
  const OpeKey key = OpeKey::Generate(&rng);
  EXPECT_TRUE(OpeScheme::Create({0, 10}, key).status().IsInvalidArgument());
  EXPECT_TRUE(OpeScheme::Create({10, 5}, key).status().IsInvalidArgument());
  EXPECT_TRUE(OpeScheme::Create({10, 10}, key).ok());
}

TEST(OpeTest, SuggestRangeIsAtLeast8M) {
  EXPECT_GE(SuggestRange(100), 800u);
  EXPECT_GE(SuggestRange(1), 8u);
  // Power of two.
  const uint64_t n = SuggestRange(1000);
  EXPECT_EQ(n & (n - 1), 0u);
}

TEST(OpeTest, EncryptRejectsOutOfDomain) {
  OpeScheme s = MakeScheme(16, 128);
  EXPECT_TRUE(s.Encrypt(16).status().IsOutOfRange());
  EXPECT_TRUE(s.Encrypt(1000).status().IsOutOfRange());
  EXPECT_TRUE(s.Decrypt(128).status().IsOutOfRange());
}

TEST(OpeTest, StrictlyOrderPreservingOverFullDomain) {
  OpeScheme s = MakeScheme(200, 2048);
  uint64_t prev = 0;
  for (uint64_t m = 0; m < 200; ++m) {
    const auto c = s.Encrypt(m);
    ASSERT_TRUE(c.ok());
    if (m > 0) EXPECT_GT(c.value(), prev) << "m=" << m;
    prev = c.value();
    EXPECT_LT(c.value(), 2048u);
  }
}

TEST(OpeTest, EncryptDecryptRoundTrip) {
  OpeScheme s = MakeScheme(500, 4096);
  for (uint64_t m = 0; m < 500; ++m) {
    const auto c = s.Encrypt(m);
    ASSERT_TRUE(c.ok());
    const auto back = s.Decrypt(c.value());
    ASSERT_TRUE(back.ok()) << back.status() << " m=" << m;
    EXPECT_EQ(back.value(), m);
  }
}

TEST(OpeTest, DeterministicAcrossInstancesWithSameKey) {
  Rng rng(42);
  const OpeKey key = OpeKey::Generate(&rng);
  auto a = OpeScheme::Create({300, 4096}, key);
  auto b = OpeScheme::Create({300, 4096}, key);
  for (uint64_t m = 0; m < 300; m += 7) {
    EXPECT_EQ(a->Encrypt(m).value(), b->Encrypt(m).value());
  }
}

TEST(OpeTest, DifferentKeysGiveDifferentFunctions) {
  OpeScheme a = MakeScheme(256, 4096, 1);
  OpeScheme b = MakeScheme(256, 4096, 2);
  int differing = 0;
  for (uint64_t m = 0; m < 256; ++m) {
    if (a.Encrypt(m).value() != b.Encrypt(m).value()) ++differing;
  }
  EXPECT_GT(differing, 200);
}

TEST(OpeTest, InvalidCiphertextsReportCorruption) {
  OpeScheme s = MakeScheme(32, 1024);
  std::set<uint64_t> image;
  for (uint64_t m = 0; m < 32; ++m) image.insert(s.Encrypt(m).value());
  int checked = 0;
  for (uint64_t c = 0; c < 1024 && checked < 200; ++c) {
    if (image.contains(c)) continue;
    EXPECT_TRUE(s.Decrypt(c).status().IsCorruption()) << c;
    ++checked;
  }
  EXPECT_EQ(checked, 200);
}

TEST(OpeTest, DecryptFloorCeilMatchesExhaustiveSearch) {
  OpeScheme s = MakeScheme(64, 512);
  std::vector<uint64_t> image(64);
  for (uint64_t m = 0; m < 64; ++m) image[m] = s.Encrypt(m).value();
  for (uint64_t c = 0; c < 512; ++c) {
    // Reference: smallest m with image[m] >= c.
    uint64_t expected = 64;
    for (uint64_t m = 0; m < 64; ++m) {
      if (image[m] >= c) {
        expected = m;
        break;
      }
    }
    const auto got = s.DecryptFloorCeil(c);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value(), expected) << "c=" << c;
  }
}

TEST(OpeTest, DomainEqualsRangeIsIdentityLikeBijection) {
  // With M == N the only order-preserving function is the identity.
  OpeScheme s = MakeScheme(32, 32);
  for (uint64_t m = 0; m < 32; ++m) {
    EXPECT_EQ(s.Encrypt(m).value(), m);
  }
}

TEST(OpeTest, SingletonDomain) {
  OpeScheme s = MakeScheme(1, 64);
  const auto c = s.Encrypt(0);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(s.Decrypt(c.value()).value(), 0u);
}

TEST(OpeTest, LargeDomainSpotChecks) {
  OpeScheme s = MakeScheme(1 << 20, uint64_t{1} << 24);
  uint64_t prev_c = 0;
  bool first = true;
  for (uint64_t m = 0; m < (1 << 20); m += 37813) {
    const auto c = s.Encrypt(m);
    ASSERT_TRUE(c.ok());
    if (!first) EXPECT_GT(c.value(), prev_c);
    first = false;
    prev_c = c.value();
    EXPECT_EQ(s.Decrypt(c.value()).value(), m);
  }
}

class OpeParamSweepTest
    : public ::testing::TestWithParam<std::pair<uint64_t, uint64_t>> {};

TEST_P(OpeParamSweepTest, RoundTripAndOrderHold) {
  const auto [domain, range] = GetParam();
  OpeScheme s = MakeScheme(domain, range, domain * 31 + range);
  uint64_t prev = 0;
  const uint64_t step = std::max<uint64_t>(1, domain / 64);
  bool first = true;
  for (uint64_t m = 0; m < domain; m += step) {
    const auto c = s.Encrypt(m);
    ASSERT_TRUE(c.ok());
    if (!first) EXPECT_GT(c.value(), prev);
    first = false;
    prev = c.value();
    EXPECT_EQ(s.Decrypt(c.value()).value(), m);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OpeParamSweepTest,
    ::testing::Values(std::pair<uint64_t, uint64_t>{2, 16},
                      std::pair<uint64_t, uint64_t>{10, 100},
                      std::pair<uint64_t, uint64_t>{100, 800},
                      std::pair<uint64_t, uint64_t>{101, 1024},
                      std::pair<uint64_t, uint64_t>{1000, 8192},
                      std::pair<uint64_t, uint64_t>{2557, 32768},
                      std::pair<uint64_t, uint64_t>{10000, 131072}));

}  // namespace
}  // namespace mope::ope
