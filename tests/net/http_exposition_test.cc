#include "net/http_exposition.h"

#include <gtest/gtest.h>

#include <string>

#include "engine/server.h"
#include "net/socket.h"
#include "obs/alerts.h"
#include "obs/clock.h"
#include "obs/registry.h"
#include "obs/timeseries.h"
#include "storage/env.h"

namespace mope::net {
namespace {

using engine::Column;
using engine::Schema;
using engine::Value;
using engine::ValueType;

engine::DbServer MakeServer() {
  engine::DbServer server;
  Schema schema({Column{"key", ValueType::kInt},
                 Column{"payload", ValueType::kString}});
  auto table = server.catalog()->CreateTable("data", schema);
  EXPECT_TRUE(table.ok());
  for (int64_t k = 0; k < 10; ++k) {
    EXPECT_TRUE((*table)->Insert({k, std::string("row")}).ok());
  }
  return server;
}

/// One full HTTP exchange against a live endpoint: write the request, read
/// to EOF (the endpoint always closes), return everything received.
std::string Exchange(uint16_t port, const std::string& request) {
  SocketOptions options;
  options.read_timeout_ms = 2000;
  auto conn = ConnectTcp("127.0.0.1", port, options);
  EXPECT_TRUE(conn.ok()) << conn.status().ToString();
  EXPECT_TRUE((*conn)->Write(request.data(), request.size()).ok());
  std::string response;
  char buf[4096];
  while (true) {
    auto n = (*conn)->Read(buf, sizeof(buf));
    if (!n.ok() || n.value() == 0) break;
    response.append(buf, n.value());
  }
  return response;
}

TEST(HttpExpositionTest, MetricsRouteServesPrometheusText) {
  engine::DbServer server = MakeServer();
  server.metrics()->GetCounter("net.server.frames_served")->Increment(5);
  HttpExposition http(&server, HttpExpositionOptions{});

  const std::string response = http.HandleRequest("GET", "/metrics");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  EXPECT_NE(response.find("net_server_frames_served 5"), std::string::npos);
  EXPECT_NE(response.find("Connection: close"), std::string::npos);
}

TEST(HttpExpositionTest, QueryStringIsIgnored) {
  engine::DbServer server = MakeServer();
  HttpExposition http(&server, HttpExpositionOptions{});
  const std::string response = http.HandleRequest("GET", "/metrics?x=1");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
}

TEST(HttpExpositionTest, HealthzWithoutStorage) {
  engine::DbServer server = MakeServer();
  HttpExposition http(&server, HttpExpositionOptions{});
  const std::string response = http.HandleRequest("GET", "/healthz");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("ok\nstorage=none"), std::string::npos);
}

TEST(HttpExpositionTest, HealthzReflectsAttachedStorage) {
  storage::InMemEnv env;
  engine::DbServer server;
  engine::DurableCatalog::Options options;
  options.env = &env;
  ASSERT_TRUE(server.OpenStorage("/db", options).ok());
  HttpExposition http(&server, HttpExpositionOptions{});

  const std::string response = http.HandleRequest("GET", "/healthz");
  EXPECT_NE(response.find("storage=attached"), std::string::npos);
  EXPECT_NE(response.find("crash_recovered=false"), std::string::npos);
  EXPECT_NE(response.find("recovered_records=0"), std::string::npos);
  EXPECT_NE(response.find("checkpoints="), std::string::npos);
}

TEST(HttpExpositionTest, StatuszCarriesUptimeAndMetricsJson) {
  engine::DbServer server = MakeServer();
  obs::ManualClock clock(1000);
  HttpExposition http(&server, HttpExpositionOptions{}, &clock);
  // Start() anchors start_ns_; use the routing core directly with a started
  // endpoint to get a deterministic uptime.
  ASSERT_TRUE(http.Start().ok());
  clock.AdvanceNanos(500);
  const std::string response = http.HandleRequest("GET", "/statusz");
  EXPECT_NE(response.find("Content-Type: application/json"),
            std::string::npos);
  EXPECT_NE(response.find("\"uptime_ns\":500"), std::string::npos);
  EXPECT_NE(response.find("\"storage\":{\"attached\":false}"),
            std::string::npos);
  EXPECT_NE(response.find("\"leakage\":null"), std::string::npos);
  EXPECT_NE(response.find("\"metrics\":{"), std::string::npos);
  http.Stop();
}

TEST(HttpExpositionTest, UnknownRouteIs404AndNonGetIs405) {
  engine::DbServer server = MakeServer();
  HttpExposition http(&server, HttpExpositionOptions{});
  EXPECT_NE(http.HandleRequest("GET", "/nope").find("HTTP/1.1 404"),
            std::string::npos);
  EXPECT_NE(http.HandleRequest("POST", "/metrics").find("HTTP/1.1 405"),
            std::string::npos);
  EXPECT_EQ(
      server.metrics()->GetCounter("net.http.bad_requests")->Value(), 2);
  EXPECT_EQ(server.metrics()->GetCounter("net.http.requests")->Value(), 2);
}

TEST(HttpExpositionTest, NeverObservedHistogramStillRendersAllSeries) {
  engine::DbServer server = MakeServer();
  // Registered but never Observe()d: every series must still be present at
  // zero so temporal consumers get a continuous history from scrape one.
  server.metrics()->GetHistogram("storage.wal.fsync_ns");
  HttpExposition http(&server, HttpExpositionOptions{});

  const std::string response = http.HandleRequest("GET", "/metrics");
  EXPECT_NE(response.find("storage_wal_fsync_ns_bucket{le=\"+Inf\"} 0"),
            std::string::npos);
  EXPECT_NE(response.find("storage_wal_fsync_ns_sum 0"), std::string::npos);
  EXPECT_NE(response.find("storage_wal_fsync_ns_count 0"), std::string::npos);
  EXPECT_NE(response.find("storage_wal_fsync_ns_p50 0"), std::string::npos);
  EXPECT_NE(response.find("storage_wal_fsync_ns_p99 0"), std::string::npos);
}

TEST(HttpExpositionTest, VarsWithoutSamplerIs503) {
  engine::DbServer server = MakeServer();
  HttpExposition http(&server, HttpExpositionOptions{});
  const std::string response = http.HandleRequest("GET", "/vars");
  EXPECT_NE(response.find("HTTP/1.1 503"), std::string::npos);
  EXPECT_NE(response.find("time-series sampler disabled"), std::string::npos);
  EXPECT_EQ(server.metrics()->GetCounter("net.http.bad_requests")->Value(),
            1);
}

TEST(HttpExpositionTest, VarsServesSampledHistoryAsJson) {
  engine::DbServer server = MakeServer();
  obs::TimeSeriesOptions options;
  options.window_capacity = 8;
  obs::TimeSeriesSampler sampler(server.metrics(), options);
  sampler.Ingest(10, "leakage.gap.margin", obs::MetricKind::kGauge,
                 static_cast<uint64_t>(int64_t{42}));
  sampler.Ingest(20, "leakage.gap.margin", obs::MetricKind::kGauge,
                 static_cast<uint64_t>(int64_t{41}));
  HttpExposition http(&server, HttpExpositionOptions{});
  http.AttachTimeSeries(&sampler);

  const std::string response =
      http.HandleRequest("GET", "/vars?metric=leakage.gap&window=4");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("Content-Type: application/json"),
            std::string::npos);
  EXPECT_NE(response.find("\"name\":\"leakage.gap.margin\""),
            std::string::npos);
  EXPECT_NE(response.find("[10,42],[20,41]"), std::string::npos) << response;
  EXPECT_NE(response.find("\"window\":4"), std::string::npos);

  // No metric param: the empty prefix matches the whole history.
  EXPECT_NE(http.HandleRequest("GET", "/vars").find("HTTP/1.1 200 OK"),
            std::string::npos);
}

TEST(HttpExpositionTest, VarsRejectsBadWindowAndUnknownPrefix) {
  engine::DbServer server = MakeServer();
  obs::TimeSeriesOptions options;
  options.window_capacity = 8;
  obs::TimeSeriesSampler sampler(server.metrics(), options);
  sampler.Ingest(10, "known", obs::MetricKind::kCounter, 1);
  HttpExposition http(&server, HttpExpositionOptions{});
  http.AttachTimeSeries(&sampler);

  for (const char* target :
       {"/vars?window=0", "/vars?window=9", "/vars?window=abc",
        "/vars?window=99999999999999999999"}) {
    const std::string response = http.HandleRequest("GET", target);
    EXPECT_NE(response.find("HTTP/1.1 400"), std::string::npos) << target;
    EXPECT_NE(response.find("window must be an integer in [1, 8]"),
              std::string::npos)
        << target;
  }
  const std::string missing =
      http.HandleRequest("GET", "/vars?metric=no.such.prefix");
  EXPECT_NE(missing.find("HTTP/1.1 404"), std::string::npos);
  EXPECT_EQ(server.metrics()->GetCounter("net.http.bad_requests")->Value(),
            5);
}

TEST(HttpExpositionTest, AlertzWithoutEngineIs503) {
  engine::DbServer server = MakeServer();
  HttpExposition http(&server, HttpExpositionOptions{});
  const std::string response = http.HandleRequest("GET", "/alertz");
  EXPECT_NE(response.find("HTTP/1.1 503"), std::string::npos);
  EXPECT_NE(response.find("alert engine disabled"), std::string::npos);
}

TEST(HttpExpositionTest, AlertzRendersRuleStates) {
  engine::DbServer server = MakeServer();
  obs::AlertEngine engine(server.metrics());
  ASSERT_TRUE(engine.AddRuleSpec("hot: temp > 10").ok());
  engine.Observe(5, {{"temp", obs::MetricKind::kGauge,
                      static_cast<uint64_t>(int64_t{99})}});
  HttpExposition http(&server, HttpExpositionOptions{});
  http.AttachAlerts(&engine);

  const std::string response = http.HandleRequest("GET", "/alertz");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("Content-Type: application/json"),
            std::string::npos);
  EXPECT_NE(response.find("\"firing\":1"), std::string::npos);
  EXPECT_NE(response.find("\"name\":\"hot\""), std::string::npos);
}

TEST(HttpExpositionTest, LiveEndpointServesMetricsOverTcp) {
  engine::DbServer server = MakeServer();
  server.metrics()->GetHistogram("storage.wal.fsync_ns")->Observe(1500);
  HttpExpositionOptions options;
  options.port = 0;  // ephemeral
  HttpExposition http(&server, options);
  ASSERT_TRUE(http.Start().ok());

  const std::string response = Exchange(
      http.port(), "GET /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  // A histogram with samples renders interpolated quantile gauges.
  EXPECT_NE(response.find("storage_wal_fsync_ns_p50"), std::string::npos);
  http.Stop();
}

TEST(HttpExpositionTest, LiveEndpointAnswersSequentialScrapes) {
  engine::DbServer server = MakeServer();
  HttpExpositionOptions options;
  options.port = 0;
  HttpExposition http(&server, options);
  ASSERT_TRUE(http.Start().ok());
  for (int i = 0; i < 3; ++i) {
    const std::string response = Exchange(
        http.port(), "GET /healthz HTTP/1.1\r\nHost: localhost\r\n\r\n");
    EXPECT_NE(response.find("200 OK"), std::string::npos) << "scrape " << i;
  }
  http.Stop();
}

TEST(HttpExpositionTest, MalformedRequestLineGets400) {
  engine::DbServer server = MakeServer();
  HttpExpositionOptions options;
  options.port = 0;
  HttpExposition http(&server, options);
  ASSERT_TRUE(http.Start().ok());
  const std::string response = Exchange(http.port(), "GIBBERISH\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 400"), std::string::npos);
  http.Stop();
}

TEST(HttpExpositionTest, OversizedRequestHeadGets431) {
  engine::DbServer server = MakeServer();
  HttpExpositionOptions options;
  options.port = 0;
  options.max_request_bytes = 128;
  HttpExposition http(&server, options);
  ASSERT_TRUE(http.Start().ok());
  std::string request = "GET /metrics HTTP/1.1\r\n";
  request += "X-Padding: " + std::string(512, 'a') + "\r\n\r\n";
  const std::string response = Exchange(http.port(), request);
  EXPECT_NE(response.find("HTTP/1.1 431"), std::string::npos);
  http.Stop();
}

}  // namespace
}  // namespace mope::net
