#include "net/wire.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/codec.h"
#include "engine/server.h"
#include "net/dispatcher.h"
#include "net/transport.h"

namespace mope::net {
namespace {

using engine::Column;
using engine::Schema;
using engine::Value;
using engine::ValueType;

// --- Framing --------------------------------------------------------------

TEST(FrameTest, RoundTrip) {
  const std::string bytes =
      EncodeFrame(MessageType::kSchemaRequest, "payload!");
  ASSERT_EQ(bytes.size(), kFrameHeaderBytes + 8);
  size_t consumed = 0;
  auto frame = DecodeFrame(bytes, &consumed);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(consumed, bytes.size());
  EXPECT_EQ(frame->type, static_cast<uint8_t>(MessageType::kSchemaRequest));
  EXPECT_EQ(frame->payload, "payload!");
}

TEST(FrameTest, EmptyPayloadRoundTrip) {
  const std::string bytes = EncodeFrame(MessageType::kCountBatchRequest, "");
  size_t consumed = 0;
  auto frame = DecodeFrame(bytes, &consumed);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->payload, "");
}

TEST(FrameTest, TruncatedHeaderIsUnavailable) {
  // An incomplete prefix is not an error — more bytes may be in flight.
  const std::string bytes = EncodeFrame(MessageType::kSchemaRequest, "x");
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    size_t consumed = 0;
    auto frame = DecodeFrame(std::string_view(bytes).substr(0, cut), &consumed);
    ASSERT_FALSE(frame.ok()) << "cut=" << cut;
    EXPECT_TRUE(frame.status().IsUnavailable()) << "cut=" << cut;
  }
}

TEST(FrameTest, BadMagicIsCorruption) {
  std::string bytes = EncodeFrame(MessageType::kSchemaRequest, "x");
  bytes[0] ^= 0x01;
  size_t consumed = 0;
  EXPECT_TRUE(DecodeFrame(bytes, &consumed).status().IsCorruption());
}

TEST(FrameTest, BadVersionIsCorruption) {
  std::string bytes = EncodeFrame(MessageType::kSchemaRequest, "x");
  bytes[4] = static_cast<char>(kWireVersion + 1);
  size_t consumed = 0;
  EXPECT_TRUE(DecodeFrame(bytes, &consumed).status().IsCorruption());
}

TEST(FrameTest, NonzeroReservedIsCorruption) {
  std::string bytes = EncodeFrame(MessageType::kSchemaRequest, "x");
  bytes[6] = 0x01;
  size_t consumed = 0;
  EXPECT_TRUE(DecodeFrame(bytes, &consumed).status().IsCorruption());
}

TEST(FrameTest, OversizedLengthIsCorruption) {
  std::string bytes = EncodeFrame(MessageType::kSchemaRequest, "x");
  // Rewrite the length field to claim a payload beyond kMaxPayloadBytes.
  std::string length;
  engine::PutU32(&length, kMaxPayloadBytes + 1);
  bytes.replace(8, 4, length);
  size_t consumed = 0;
  auto frame = DecodeFrame(bytes, &consumed);
  ASSERT_FALSE(frame.ok());
  // Must be Corruption (reject), not Unavailable (wait for 64 MiB that will
  // never come) — the distinction is what stops a memory-exhaustion tease.
  EXPECT_TRUE(frame.status().IsCorruption());
}

TEST(FrameTest, CrcMismatchIsCorruption) {
  std::string bytes = EncodeFrame(MessageType::kSchemaRequest, "payload");
  bytes[kFrameHeaderBytes] ^= 0x40;  // flip a payload bit
  size_t consumed = 0;
  EXPECT_TRUE(DecodeFrame(bytes, &consumed).status().IsCorruption());
}

TEST(FrameTest, Crc32KnownAnswer) {
  // IEEE 802.3 check value for "123456789".
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
}

TEST(FrameTest, ReadFrameFromTransport) {
  StringTransport transport(EncodeFrame(MessageType::kSchemaReply, "abc"));
  auto frame = ReadFrame(&transport);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->payload, "abc");
}

TEST(FrameTest, ReadFrameEofAtBoundaryIsUnavailable) {
  StringTransport transport("");
  auto frame = ReadFrame(&transport);
  ASSERT_FALSE(frame.ok());
  EXPECT_TRUE(frame.status().IsUnavailable());
}

TEST(FrameTest, ReadFrameEofMidFrameIsUnavailable) {
  const std::string bytes = EncodeFrame(MessageType::kSchemaReply, "abc");
  StringTransport transport(bytes.substr(0, bytes.size() - 1));
  auto frame = ReadFrame(&transport);
  ASSERT_FALSE(frame.ok());
  EXPECT_TRUE(frame.status().IsUnavailable());
}

TEST(FrameTest, WriteFrameRejectsOversizedPayloadAsStatus) {
  // An over-limit payload must surface as InvalidArgument with nothing on
  // the wire — not trip EncodeFrame's MOPE_CHECK and abort the process.
  StringTransport transport("");
  std::string huge(static_cast<size_t>(kMaxPayloadBytes) + 1, 'x');
  const Status status =
      WriteFrame(&transport, MessageType::kRangeBatchRequest, std::move(huge));
  EXPECT_TRUE(status.IsInvalidArgument()) << status.ToString();
  EXPECT_TRUE(transport.output().empty());
}

TEST(FrameTest, WriteFrameAppendsDecodableBytes) {
  StringTransport transport("");
  ASSERT_TRUE(WriteFrame(&transport, MessageType::kCountBatchReply,
                         EncodeCountBatchReply(9)).ok());
  size_t consumed = 0;
  auto frame = DecodeFrame(transport.output(), &consumed);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(DecodeCountBatchReply(frame->payload).value(), 9u);
}

// --- Message bodies -------------------------------------------------------

TEST(MessageTest, RangeBatchRequestRoundTrip) {
  RangeBatchRequest request;
  request.table = "lineitem";
  request.column = "l_shipdate";
  request.ranges = {ModularInterval(10, 5, 100),
                    ModularInterval(95, 10, 100),  // wraps
                    ModularInterval(0, 100, 100)};
  auto decoded = DecodeRangeBatchRequest(EncodeRangeBatchRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->table, "lineitem");
  EXPECT_EQ(decoded->column, "l_shipdate");
  ASSERT_EQ(decoded->ranges.size(), 3u);
  EXPECT_EQ(decoded->ranges[1].start(), 95u);
  EXPECT_EQ(decoded->ranges[1].length(), 10u);
  EXPECT_EQ(decoded->ranges[1].domain(), 100u);
}

TEST(MessageTest, InvalidIntervalOnWireIsCorruptionNotAbort) {
  // Hand-craft a request whose interval would trip ModularInterval's
  // MOPE_CHECK preconditions; the decoder must reject it first.
  struct Bad { uint64_t start, length, domain; };
  for (const Bad& bad : {Bad{5, 1, 0},     // zero domain
                         Bad{100, 1, 100}, // start >= domain
                         Bad{0, 0, 100},   // zero length
                         Bad{0, 101, 100}}) {  // length > domain
    std::string payload;
    engine::PutString(&payload, "t");
    engine::PutString(&payload, "c");
    engine::PutU32(&payload, 1);
    engine::PutU64(&payload, bad.start);
    engine::PutU64(&payload, bad.length);
    engine::PutU64(&payload, bad.domain);
    auto decoded = DecodeRangeBatchRequest(payload);
    ASSERT_FALSE(decoded.ok());
    EXPECT_TRUE(decoded.status().IsCorruption());
  }
}

TEST(MessageTest, RangeBatchReplyRoundTrip) {
  RowsWithIds rows;
  rows.emplace_back(7, engine::Row{Value{int64_t{42}}, Value{1.5},
                                   Value{std::string("tag")}});
  rows.emplace_back(9, engine::Row{Value{int64_t{-1}}, Value{0.0},
                                   Value{std::string()}});
  auto decoded = DecodeRangeBatchReply(EncodeRangeBatchReply(rows));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->size(), 2u);
  EXPECT_EQ((*decoded)[0].first, 7u);
  EXPECT_EQ(std::get<int64_t>((*decoded)[0].second[0]), 42);
  EXPECT_EQ((*decoded)[1].first, 9u);
  EXPECT_EQ(std::get<std::string>((*decoded)[1].second[2]), "");
}

TEST(MessageTest, ImplausibleRowCountIsCorruption) {
  // A reply claiming 2^50 rows in a 20-byte payload must be rejected before
  // any allocation happens.
  std::string payload;
  engine::PutU64(&payload, 1ull << 50);
  payload += "somebytes";
  EXPECT_TRUE(DecodeRangeBatchReply(payload).status().IsCorruption());
}

TEST(MessageTest, SchemaRoundTrip) {
  const Schema schema({Column{"key", ValueType::kInt},
                       Column{"price", ValueType::kDouble},
                       Column{"tag", ValueType::kString}});
  auto decoded = DecodeSchemaReply(EncodeSchemaReply(schema));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->num_columns(), 3u);
  EXPECT_EQ(decoded->column(0).name, "key");
  EXPECT_EQ(decoded->column(1).type, ValueType::kDouble);
  EXPECT_EQ(decoded->column(2).name, "tag");
}

TEST(MessageTest, StatusReplyRoundTrip) {
  const Status original = Status::NotFound("no table 'x'");
  Status decoded;
  ASSERT_TRUE(DecodeStatusReply(EncodeStatusReply(original), &decoded).ok());
  EXPECT_TRUE(decoded.IsNotFound());
  EXPECT_EQ(decoded.ToString(), original.ToString());
}

TEST(MessageTest, StatusReplyCarryingOkIsCorruption) {
  std::string payload;
  payload.push_back(0);  // StatusCode::kOk — meaningless as an error reply
  engine::PutString(&payload, "");
  Status decoded;
  EXPECT_TRUE(DecodeStatusReply(payload, &decoded).IsCorruption());
}

TEST(MessageTest, TrailingGarbageIsCorruption) {
  std::string payload = EncodeCountBatchReply(3);
  payload.push_back('!');
  EXPECT_TRUE(DecodeCountBatchReply(payload).status().IsCorruption());
}

// --- Dispatcher -----------------------------------------------------------

engine::DbServer MakeServer() {
  engine::DbServer server;
  auto table = server.catalog()->CreateTable(
      "data", Schema({Column{"key", ValueType::kInt},
                      Column{"tag", ValueType::kString}}));
  EXPECT_TRUE(table.ok());
  for (int64_t k = 0; k < 100; ++k) {
    EXPECT_TRUE((*table)->Insert({k, std::string("row")}).ok());
  }
  EXPECT_TRUE((*table)->CreateIndex("key").ok());
  return server;
}

Result<Frame> Dispatch(WireDispatcher* dispatcher, MessageType type,
                       std::string payload) {
  const std::string request = EncodeFrame(type, std::move(payload));
  size_t consumed = 0;
  MOPE_ASSIGN_OR_RETURN(std::string reply,
                        dispatcher->HandleFrameBytes(request, &consumed));
  EXPECT_EQ(consumed, request.size());
  return DecodeFrame(reply, &consumed);
}

TEST(DispatcherTest, RangeBatchMatchesDirectCall) {
  engine::DbServer server = MakeServer();
  WireDispatcher dispatcher(&server);
  RangeBatchRequest request{"data", "key", {ModularInterval(10, 5, 100)}};
  auto reply = Dispatch(&dispatcher, MessageType::kRangeBatchRequest,
                        EncodeRangeBatchRequest(request));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_EQ(reply->type, static_cast<uint8_t>(MessageType::kRangeBatchReply));
  auto rows = DecodeRangeBatchReply(reply->payload);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 5u);
  EXPECT_EQ(dispatcher.frames_served(), 1u);
}

TEST(DispatcherTest, CountBatch) {
  engine::DbServer server = MakeServer();
  WireDispatcher dispatcher(&server);
  RangeBatchRequest request{"data", "key", {ModularInterval(95, 10, 100)}};
  auto reply = Dispatch(&dispatcher, MessageType::kCountBatchRequest,
                        EncodeRangeBatchRequest(request));
  ASSERT_TRUE(reply.ok());
  ASSERT_EQ(reply->type, static_cast<uint8_t>(MessageType::kCountBatchReply));
  EXPECT_EQ(DecodeCountBatchReply(reply->payload).value(), 10u);
}

TEST(DispatcherTest, ApplicationErrorBecomesStatusReply) {
  engine::DbServer server = MakeServer();
  WireDispatcher dispatcher(&server);
  auto reply = Dispatch(&dispatcher, MessageType::kSchemaRequest,
                        EncodeSchemaRequest("no_such_table"));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_EQ(reply->type, static_cast<uint8_t>(MessageType::kStatusReply));
  Status carried;
  ASSERT_TRUE(DecodeStatusReply(reply->payload, &carried).ok());
  EXPECT_TRUE(carried.IsNotFound());
}

TEST(DispatcherTest, UnknownMessageTypeBecomesStatusReply) {
  engine::DbServer server = MakeServer();
  WireDispatcher dispatcher(&server);
  auto reply = Dispatch(&dispatcher, static_cast<MessageType>(200), "??");
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_EQ(reply->type, static_cast<uint8_t>(MessageType::kStatusReply));
  Status carried;
  ASSERT_TRUE(DecodeStatusReply(reply->payload, &carried).ok());
  EXPECT_TRUE(carried.IsInvalidArgument());
}

TEST(DispatcherTest, MalformedPayloadClosesSession) {
  engine::DbServer server = MakeServer();
  WireDispatcher dispatcher(&server);
  // Framing is intact but the payload is not a RangeBatchRequest: the stream
  // can no longer be trusted, so the dispatcher errors instead of replying.
  auto reply = Dispatch(&dispatcher, MessageType::kRangeBatchRequest, "junk");
  ASSERT_FALSE(reply.ok());
  EXPECT_TRUE(reply.status().IsCorruption());
}

TEST(DispatcherTest, OversizedReplyBecomesStatusReplyNotAbort) {
  // A well-formed request whose *result* overflows the frame cap is a
  // legitimate query on a big table; it must cost an error answer, not the
  // daemon. A tiny cap stands in for the real 64 MiB one.
  engine::DbServer server = MakeServer();
  WireDispatcher dispatcher(&server, /*max_reply_payload_bytes=*/64);
  RangeBatchRequest request{"data", "key", {ModularInterval(0, 100, 100)}};
  auto reply = Dispatch(&dispatcher, MessageType::kRangeBatchRequest,
                        EncodeRangeBatchRequest(request));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_EQ(reply->type, static_cast<uint8_t>(MessageType::kStatusReply));
  Status carried;
  ASSERT_TRUE(DecodeStatusReply(reply->payload, &carried).ok());
  EXPECT_TRUE(carried.IsInvalidArgument()) << carried.ToString();

  // The session stays usable: a narrower query on the same dispatcher works.
  RangeBatchRequest narrow{"data", "key", {ModularInterval(0, 1, 100)}};
  auto ok_reply = Dispatch(&dispatcher, MessageType::kRangeBatchRequest,
                           EncodeRangeBatchRequest(narrow));
  ASSERT_TRUE(ok_reply.ok());
  EXPECT_EQ(ok_reply->type,
            static_cast<uint8_t>(MessageType::kRangeBatchReply));
}

TEST(DispatcherTest, ByteAccountingReachesServerStats) {
  engine::DbServer server = MakeServer();
  WireDispatcher dispatcher(&server);
  RangeBatchRequest request{"data", "key", {ModularInterval(0, 50, 100)}};
  ASSERT_TRUE(Dispatch(&dispatcher, MessageType::kRangeBatchRequest,
                       EncodeRangeBatchRequest(request)).ok());
  const engine::ServerStats stats = server.stats();
  EXPECT_GT(stats.bytes_received, kFrameHeaderBytes);
  // 50 rows went back; the reply dwarfs the request.
  EXPECT_GT(stats.bytes_sent, stats.bytes_received);
}

}  // namespace
}  // namespace mope::net
