#include "net/inmem.h"

#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "net/remote_connection.h"
#include "net/wire.h"
#include "proxy/system.h"

namespace mope::net {
namespace {

using engine::Column;
using engine::Schema;
using engine::ValueType;

engine::DbServer MakeServer() {
  engine::DbServer server;
  auto table = server.catalog()->CreateTable(
      "data", Schema({Column{"key", ValueType::kInt}}));
  EXPECT_TRUE(table.ok());
  for (int64_t k = 0; k < 100; ++k) {
    EXPECT_TRUE((*table)->Insert({k}).ok());
  }
  EXPECT_TRUE((*table)->CreateIndex("key").ok());
  return server;
}

/// Wiring for one flaky-network scenario: every (re)connect pops the next
/// FaultSpec off the script; once the script runs dry, connections are clean.
struct FlakyNet {
  explicit FlakyNet(engine::DbServer* server, std::vector<FaultSpec> script)
      : dispatcher(server), channel(&dispatcher),
        faults(script.begin(), script.end()) {}

  RemoteOptions Options(uint32_t max_retries) {
    RemoteOptions options;
    options.max_retries = max_retries;
    options.backoff_initial_ms = 0;  // keep tests instant
    options.transport_factory =
        [this]() -> Result<std::unique_ptr<Transport>> {
      FaultSpec spec;
      if (!faults.empty()) {
        spec = faults.front();
        faults.pop_front();
      }
      return std::unique_ptr<Transport>(std::make_unique<FaultInjectingTransport>(
          channel.NewTransport(), spec));
    };
    return options;
  }

  WireDispatcher dispatcher;
  InProcessChannel channel;
  std::deque<FaultSpec> faults;
};

const std::vector<ModularInterval> kRanges = {ModularInterval(10, 5, 100)};

TEST(FaultTest, CleanChannelWorks) {
  engine::DbServer server = MakeServer();
  FlakyNet net(&server, {});
  RemoteConnection conn(net.Options(0));
  auto rows = conn.ExecuteRangeBatch("data", "key", kRanges);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->size(), 5u);
  EXPECT_EQ(conn.retries(), 0u);
  EXPECT_EQ(conn.connects(), 1u);
}

TEST(FaultTest, DroppedRequestIsRetried) {
  engine::DbServer server = MakeServer();
  FlakyNet net(&server, {{FaultKind::kDropWrite, 0}});
  RemoteConnection conn(net.Options(3));
  auto rows = conn.ExecuteRangeBatch("data", "key", kRanges);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->size(), 5u);
  EXPECT_EQ(conn.retries(), 1u);
  EXPECT_EQ(conn.connects(), 2u);  // reconnected after the loss
}

TEST(FaultTest, FailedWriteIsRetried) {
  engine::DbServer server = MakeServer();
  FlakyNet net(&server, {{FaultKind::kFailWrite, 0}});
  RemoteConnection conn(net.Options(3));
  auto rows = conn.ExecuteRangeBatch("data", "key", kRanges);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(conn.retries(), 1u);
}

TEST(FaultTest, ReadTimeoutIsRetried) {
  engine::DbServer server = MakeServer();
  FlakyNet net(&server, {{FaultKind::kTimeoutRead, 0}});
  RemoteConnection conn(net.Options(3));
  auto count = conn.CountRangeBatch("data", "key", kRanges);
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(*count, 5u);
  EXPECT_EQ(conn.retries(), 1u);
}

TEST(FaultTest, TruncatedReplyIsRetried) {
  engine::DbServer server = MakeServer();
  // Cut the reply off inside the frame header.
  FlakyNet net(&server, {{FaultKind::kTruncate, 7}});
  RemoteConnection conn(net.Options(3));
  auto rows = conn.ExecuteRangeBatch("data", "key", kRanges);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->size(), 5u);
  EXPECT_EQ(conn.retries(), 1u);
}

TEST(FaultTest, MidReplyDisconnectIsRetried) {
  engine::DbServer server = MakeServer();
  // Hang up after the header: the payload never arrives.
  FlakyNet net(&server, {{FaultKind::kDisconnect, kFrameHeaderBytes}});
  RemoteConnection conn(net.Options(3));
  auto rows = conn.ExecuteRangeBatch("data", "key", kRanges);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->size(), 5u);
  EXPECT_EQ(conn.retries(), 1u);
}

TEST(FaultTest, CorruptedReplyFailsFastAsCorruption) {
  engine::DbServer server = MakeServer();
  // Flip a payload byte: CRC must catch it, and the client must NOT retry —
  // a corrupted stream is a bug or an attack, not a transient outage.
  FlakyNet net(&server, {{FaultKind::kCorrupt, kFrameHeaderBytes + 2}});
  RemoteConnection conn(net.Options(5));
  auto rows = conn.ExecuteRangeBatch("data", "key", kRanges);
  ASSERT_FALSE(rows.ok());
  EXPECT_TRUE(rows.status().IsCorruption()) << rows.status().ToString();
  EXPECT_EQ(conn.retries(), 0u);
}

TEST(FaultTest, BackToBackFaultsExhaustRetries) {
  engine::DbServer server = MakeServer();
  FlakyNet net(&server, {{FaultKind::kTimeoutRead, 0},
                         {FaultKind::kDropWrite, 0},
                         {FaultKind::kTimeoutRead, 0},
                         {FaultKind::kTimeoutRead, 0}});
  RemoteConnection conn(net.Options(2));  // 1 try + 2 retries < 4 faults
  auto rows = conn.ExecuteRangeBatch("data", "key", kRanges);
  ASSERT_FALSE(rows.ok());
  EXPECT_TRUE(rows.status().IsUnavailable()) << rows.status().ToString();
  EXPECT_EQ(conn.retries(), 2u);
  EXPECT_EQ(conn.connects(), 3u);
}

TEST(FaultTest, RecoversAfterSeveralFailures) {
  engine::DbServer server = MakeServer();
  FlakyNet net(&server, {{FaultKind::kTimeoutRead, 0},
                         {FaultKind::kTruncate, 3},
                         {FaultKind::kDropWrite, 0}});
  RemoteConnection conn(net.Options(3));
  auto rows = conn.ExecuteRangeBatch("data", "key", kRanges);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->size(), 5u);
  EXPECT_EQ(conn.retries(), 3u);
  EXPECT_EQ(conn.connects(), 4u);
}

TEST(FaultTest, ServerSideErrorIsReturnedVerbatimNotRetried) {
  engine::DbServer server = MakeServer();
  FlakyNet net(&server, {});
  RemoteConnection conn(net.Options(5));
  auto rows = conn.ExecuteRangeBatch("no_such_table", "key", kRanges);
  ASSERT_FALSE(rows.ok());
  EXPECT_TRUE(rows.status().IsNotFound()) << rows.status().ToString();
  EXPECT_EQ(conn.retries(), 0u);  // an answer, not an outage
}

TEST(FaultTest, ConnectionSurvivesAcrossRequests) {
  engine::DbServer server = MakeServer();
  FlakyNet net(&server, {});
  RemoteConnection conn(net.Options(0));
  ASSERT_TRUE(conn.ExecuteRangeBatch("data", "key", kRanges).ok());
  ASSERT_TRUE(conn.GetSchema("data").ok());
  ASSERT_TRUE(conn.CountRangeBatch("data", "key", kRanges).ok());
  EXPECT_EQ(conn.connects(), 1u);  // one stream, three requests
}

// --- The whole proxy stack over a flaky wire ------------------------------

TEST(FaultTest, EncryptedQueriesSucceedOverFlakyWire) {
  // Full MOPE pipeline — key generation, encryption, fakes, batching,
  // filtering — with every server round trip running through the wire
  // protocol over a network that times out and drops the first requests.
  proxy::MopeSystem system(/*seed=*/123);
  auto net = std::make_shared<FlakyNet>(
      system.server(), std::vector<FaultSpec>{{FaultKind::kTimeoutRead, 0},
                                              {FaultKind::kDropWrite, 0}});
  system.set_connection_factory(
      [net]() -> Result<std::unique_ptr<proxy::ServerConnection>> {
        return std::unique_ptr<proxy::ServerConnection>(
            std::make_unique<RemoteConnection>(net->Options(4)));
      });

  std::vector<engine::Row> rows;
  for (int64_t v = 0; v < 64; ++v) rows.push_back({v});
  proxy::EncryptedColumnSpec spec;
  spec.column = "key";
  spec.domain = 64;
  spec.k = 4;
  spec.mode = proxy::QueryMode::kAdaptiveUniform;
  ASSERT_TRUE(system
                  .LoadTable("data", Schema({Column{"key", ValueType::kInt}}),
                             rows, spec)
                  .ok());

  auto response = system.Query("data", "key", {10, 13});
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_EQ(response->rows.size(), 4u);
  std::set<int64_t> got;
  for (const engine::Row& row : response->rows) {
    got.insert(std::get<int64_t>(row[0]));
  }
  EXPECT_EQ(got, (std::set<int64_t>{10, 11, 12, 13}));
}

}  // namespace
}  // namespace mope::net
