/// \file stress_test.cc
/// Multi-threaded hammering of the server stack through the in-memory
/// transport: N client threads share one WireDispatcher (the same object a
/// TcpServer's worker pool shares) and mix range queries, stats fetches and
/// `\leakage`-style verdict reads while the live leakage auditor is on.
///
/// The point is not the answers (other tests pin those down) — it is that
/// the whole locked surface (dispatcher -> engine -> auditor -> registry)
/// survives concurrent clients. Under the tsan preset this test doubles as
/// a data-race probe, and because sanitizer builds force
/// MOPE_LOCK_RANK_CHECKS on, it also exercises the debug lock-rank
/// assertions along the full loopback call chain.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/interval.h"
#include "common/random.h"
#include "net/inmem.h"
#include "net/remote_connection.h"
#include "net/server.h"
#include "obs/leakage.h"

namespace mope::net {
namespace {

using engine::Column;
using engine::Schema;
using engine::ValueType;

constexpr uint64_t kDomain = 100;

engine::DbServer MakeAuditedServer() {
  engine::DbServer server;
  auto table = server.catalog()->CreateTable(
      "data", Schema({Column{"key", ValueType::kInt}}));
  EXPECT_TRUE(table.ok());
  for (int64_t k = 0; k < static_cast<int64_t>(kDomain); ++k) {
    EXPECT_TRUE((*table)->Insert({k}).ok());
  }
  EXPECT_TRUE((*table)->CreateIndex("key").ok());
  obs::LeakageAuditConfig audit;
  audit.space = kDomain;
  audit.domain = kDomain;
  audit.min_observations = 16;
  EXPECT_TRUE(server.EnableLeakageAudit(audit).ok());
  return server;
}

/// One client's wiring: a private channel (transports are single-threaded
/// by contract) over the shared dispatcher.
struct Client {
  explicit Client(WireDispatcher* dispatcher) : channel(dispatcher) {
    RemoteOptions options;
    options.backoff_initial_ms = 0;
    options.transport_factory = [this]() -> Result<std::unique_ptr<Transport>> {
      return std::unique_ptr<Transport>(channel.NewTransport());
    };
    connection = std::make_unique<RemoteConnection>(options);
  }

  InProcessChannel channel;
  std::unique_ptr<RemoteConnection> connection;
};

TEST(NetStressTest, ConcurrentClientsShareOneDispatcher) {
  engine::DbServer server = MakeAuditedServer();
  WireDispatcher dispatcher(&server);

  constexpr int kThreads = 8;
  constexpr int kIterations = 60;

  std::vector<std::unique_ptr<Client>> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.push_back(std::make_unique<Client>(&dispatcher));
  }

  std::atomic<int> failures{0};
  std::atomic<uint64_t> rows_seen{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(0x5EED0000u + static_cast<uint64_t>(t));
      Client& client = *clients[static_cast<size_t>(t)];
      for (int i = 0; i < kIterations; ++i) {
        const uint64_t start = rng.UniformUint64(kDomain);
        const uint64_t length = 1 + rng.UniformUint64(kDomain / 4);
        auto rows = client.connection->ExecuteRangeBatch(
            "data", "key", {ModularInterval(start, length, kDomain)});
        if (!rows.ok()) {
          ++failures;
          continue;
        }
        rows_seen += rows->size();
        // Every few queries, read the stats endpoint and render the leakage
        // verdict from the snapshot — the `mope_shell \leakage` path.
        if (i % 8 == t % 8) {
          auto stats = client.connection->FetchServerStats();
          if (!stats.ok()) {
            ++failures;
            continue;
          }
          const std::string report = obs::LeakageAuditor::DescribeStats(*stats);
          if (report.empty()) ++failures;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(rows_seen.load(), 0u);
  // Every query funneled into the one engine; the auditor saw one range
  // start per ExecuteRangeBatch call.
  auto* auditor = server.leakage_auditor();
  ASSERT_NE(auditor, nullptr);
  EXPECT_EQ(auditor->Verdict().observations,
            static_cast<uint64_t>(kThreads) * kIterations);
}

/// Regression for the TcpServer::Stop missed-wakeup fix: a worker that had
/// just observed an empty queue (but not yet blocked) must still see the
/// stop flag. Before the fix, Stop() notified without ever holding
/// queue_mutex_, so that worker could sleep through the only NotifyAll and
/// Stop() would hang in join(). Rapid start/stop cycles make the window
/// wide enough to matter; with the fix this completes instantly.
TEST(NetStressTest, TcpServerStartStopCycles) {
  engine::DbServer server = MakeAuditedServer();
  for (int i = 0; i < 25; ++i) {
    TcpServerOptions options;
    options.num_workers = 4;
    options.poll_interval_ms = 5;
    auto tcp = TcpServer::Start(&server, options);
    ASSERT_TRUE(tcp.ok());
    (*tcp)->Stop();
  }
}

}  // namespace
}  // namespace mope::net
