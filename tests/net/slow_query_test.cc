/// Slow-query accounting end to end at the dispatcher level: a request over
/// the threshold must produce one structured `event=slow_query` log line
/// carrying the request's wire trace id and a per-span breakdown, plus a
/// Chrome-trace export (written through the Env seam) whose trace id matches
/// and whose spans include the storage work the request triggered.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/codec.h"
#include "engine/server.h"
#include "net/dispatcher.h"
#include "net/wire.h"
#include "obs/clock.h"
#include "obs/log.h"
#include "storage/env.h"

namespace mope::net {
namespace {

using engine::Column;
using engine::Schema;
using engine::Value;
using engine::ValueType;

struct CapturedLines {
  std::vector<std::string> lines;
  static void Sink(void* user_data, const std::string& line) {
    static_cast<CapturedLines*>(user_data)->lines.push_back(line);
  }
};

/// Redirects the process-default logger into a capture for the test's
/// lifetime (the dispatcher logs through Logger::Default()), restoring the
/// stderr sink on destruction.
class ScopedDefaultSink {
 public:
  explicit ScopedDefaultSink(CapturedLines* capture) {
    obs::Logger::Default()->SetSink(&CapturedLines::Sink, capture);
  }
  ~ScopedDefaultSink() { obs::Logger::Default()->SetSink(nullptr, nullptr); }
};

const std::string* FindEvent(const std::vector<std::string>& lines,
                             const std::string& needle) {
  for (const std::string& line : lines) {
    if (line.find(needle) != std::string::npos) return &line;
  }
  return nullptr;
}

TEST(SlowQueryTest, ThresholdedRequestLogsBreakdownAndExportsTrace) {
  storage::InMemEnv env;
  engine::DbServer server;
  engine::DurableCatalog::Options storage_options;
  storage_options.env = &env;
  storage_options.wal_sync_every = 0;  // sync only at checkpoint
  ASSERT_TRUE(server.OpenStorage("/db", storage_options).ok());

  Schema schema({Column{"key", ValueType::kInt},
                 Column{"payload", ValueType::kString}});
  auto table = server.catalog()->CreateTable("data", schema);
  ASSERT_TRUE(table.ok());
  for (int64_t k = 0; k < 50; ++k) {
    ASSERT_TRUE((*table)->Insert({k, std::string("row")}).ok());
  }
  ASSERT_TRUE((*table)->CreateIndex("key").ok());

  obs::ManualClock clock(0, /*auto_advance_ns=*/1000000);  // 1ms per read
  DispatcherOptions options;
  options.clock = &clock;
  options.slow_query_threshold_ns = 1;  // everything is slow
  options.slow_query_trace_path = "/slow_query_trace.json";
  options.trace_env = &env;
  options.checkpoint_every = 1;  // storage work inside the dispatch section
  WireDispatcher dispatcher(&server, options);

  CapturedLines captured;
  ScopedDefaultSink scoped_sink(&captured);

  const uint64_t wire_trace_id = 31337;
  RangeBatchRequest request{"data", "key", {ModularInterval(10, 5, 100)}};
  const std::string bytes =
      EncodeFrame(MessageType::kRangeBatchRequest,
                  EncodeRangeBatchRequest(request), wire_trace_id);
  size_t consumed = 0;
  auto reply = dispatcher.HandleFrameBytes(bytes, &consumed);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();

  // The reply echoes the wire trace id.
  size_t reply_consumed = 0;
  auto reply_frame = DecodeFrame(*reply, &reply_consumed);
  ASSERT_TRUE(reply_frame.ok());
  EXPECT_EQ(reply_frame->trace_id, wire_trace_id);

  // One slow-query line, carrying the same trace id and a span breakdown
  // that includes the dispatch critical section and the checkpoint's
  // storage work.
  const std::string* line = FindEvent(captured.lines, "event=slow_query");
  ASSERT_NE(line, nullptr);
  EXPECT_NE(line->find("trace=31337"), std::string::npos) << *line;
  EXPECT_NE(line->find("span_ns.server.handle="), std::string::npos) << *line;
  EXPECT_NE(line->find("span_ns.server.checkpoint="), std::string::npos)
      << *line;
  EXPECT_NE(line->find("span_ns.storage.wal.sync="), std::string::npos)
      << *line;
  EXPECT_NE(line->find("threshold_ns=1"), std::string::npos) << *line;
  EXPECT_EQ(server.metrics()->GetCounter("server.slow_queries")->Value(), 1);

  // The Chrome export landed atomically in the Env, with the same trace id
  // and the WAL/buffer-pool spans visible.
  auto exported = env.ReadFile("/slow_query_trace.json");
  ASSERT_TRUE(exported.ok()) << exported.status().ToString();
  EXPECT_NE(exported->find("\"trace_id\":\"31337\""), std::string::npos);
  EXPECT_NE(exported->find("\"name\":\"server.handle\""), std::string::npos);
  EXPECT_NE(exported->find("\"name\":\"server.checkpoint\""),
            std::string::npos);
  EXPECT_NE(exported->find("\"name\":\"storage.wal.sync\""),
            std::string::npos);
  EXPECT_NE(exported->find("\"name\":\"storage.pool.writeback\""),
            std::string::npos);
}

TEST(SlowQueryTest, FastPathStaysSilentWhenThresholdDisabled) {
  engine::DbServer server;
  Schema schema({Column{"key", ValueType::kInt}});
  auto table = server.catalog()->CreateTable("data", schema);
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE((*table)->Insert({int64_t{1}}).ok());
  ASSERT_TRUE((*table)->CreateIndex("key").ok());

  obs::ManualClock clock(0, 1000000);
  DispatcherOptions options;
  options.clock = &clock;  // threshold stays 0: fast path
  WireDispatcher dispatcher(&server, options);

  CapturedLines captured;
  ScopedDefaultSink scoped_sink(&captured);

  RangeBatchRequest request{"data", "key", {ModularInterval(0, 2, 100)}};
  const std::string bytes = EncodeFrame(
      MessageType::kRangeBatchRequest, EncodeRangeBatchRequest(request), 7);
  size_t consumed = 0;
  ASSERT_TRUE(dispatcher.HandleFrameBytes(bytes, &consumed).ok());
  EXPECT_EQ(FindEvent(captured.lines, "event=slow_query"), nullptr);
  EXPECT_EQ(server.metrics()->GetCounter("server.slow_queries")->Value(), 0);
}

TEST(SlowQueryTest, UnderThresholdRequestDoesNotLog) {
  engine::DbServer server;
  Schema schema({Column{"key", ValueType::kInt}});
  auto table = server.catalog()->CreateTable("data", schema);
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE((*table)->Insert({int64_t{1}}).ok());
  ASSERT_TRUE((*table)->CreateIndex("key").ok());

  obs::ManualClock clock(0, 1000);  // 1us per read: well under threshold
  DispatcherOptions options;
  options.clock = &clock;
  options.slow_query_threshold_ns = 1000000000;  // 1s
  WireDispatcher dispatcher(&server, options);

  CapturedLines captured;
  ScopedDefaultSink scoped_sink(&captured);

  RangeBatchRequest request{"data", "key", {ModularInterval(0, 2, 100)}};
  const std::string bytes = EncodeFrame(
      MessageType::kRangeBatchRequest, EncodeRangeBatchRequest(request), 9);
  size_t consumed = 0;
  ASSERT_TRUE(dispatcher.HandleFrameBytes(bytes, &consumed).ok());
  EXPECT_EQ(FindEvent(captured.lines, "event=slow_query"), nullptr);
  EXPECT_EQ(server.metrics()->GetCounter("server.slow_queries")->Value(), 0);
}

}  // namespace
}  // namespace mope::net
