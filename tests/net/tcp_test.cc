#include "net/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/remote_connection.h"
#include "net/socket.h"
#include "net/wire.h"

namespace mope::net {
namespace {

using engine::Column;
using engine::Schema;
using engine::ValueType;

engine::DbServer MakeServer() {
  engine::DbServer server;
  auto table = server.catalog()->CreateTable(
      "data", Schema({Column{"key", ValueType::kInt},
                      Column{"tag", ValueType::kString}}));
  EXPECT_TRUE(table.ok());
  for (int64_t k = 0; k < 200; ++k) {
    EXPECT_TRUE((*table)->Insert({k, std::string("row")}).ok());
  }
  EXPECT_TRUE((*table)->CreateIndex("key").ok());
  return server;
}

RemoteOptions LoopbackOptions(uint16_t port) {
  RemoteOptions options;
  options.host = "127.0.0.1";
  options.port = port;
  options.max_retries = 2;
  options.backoff_initial_ms = 1;
  return options;
}

TEST(TcpTest, RequestReplyOverLoopback) {
  engine::DbServer db = MakeServer();
  auto daemon = TcpServer::Start(&db, TcpServerOptions{});
  ASSERT_TRUE(daemon.ok()) << daemon.status().ToString();
  ASSERT_NE((*daemon)->port(), 0);  // ephemeral port was resolved

  RemoteConnection conn(LoopbackOptions((*daemon)->port()));
  auto rows =
      conn.ExecuteRangeBatch("data", "key", {ModularInterval(10, 5, 200)});
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->size(), 5u);
  auto count =
      conn.CountRangeBatch("data", "key", {ModularInterval(190, 20, 200)});
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 20u);
  auto schema = conn.GetSchema("data");
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->num_columns(), 2u);

  (*daemon)->Stop();
  EXPECT_GE((*daemon)->connections_accepted(), 1u);
  EXPECT_EQ((*daemon)->frames_served(), 3u);
  EXPECT_GT(db.stats().bytes_received, 0u);
  EXPECT_GT(db.stats().bytes_sent, 0u);
}

TEST(TcpTest, ServerErrorComesBackAsStatus) {
  engine::DbServer db = MakeServer();
  auto daemon = TcpServer::Start(&db, TcpServerOptions{});
  ASSERT_TRUE(daemon.ok());
  RemoteConnection conn(LoopbackOptions((*daemon)->port()));
  auto rows =
      conn.ExecuteRangeBatch("nope", "key", {ModularInterval(0, 1, 200)});
  ASSERT_FALSE(rows.ok());
  EXPECT_TRUE(rows.status().IsNotFound()) << rows.status().ToString();
}

TEST(TcpTest, GarbageBytesOnlyCostTheirOwnConnection) {
  engine::DbServer db = MakeServer();
  auto daemon = TcpServer::Start(&db, TcpServerOptions{});
  ASSERT_TRUE(daemon.ok());

  // A hostile client spews non-protocol bytes; the daemon must drop that
  // session and keep serving everyone else.
  {
    auto hostile = ConnectTcp("127.0.0.1", (*daemon)->port(), SocketOptions{});
    ASSERT_TRUE(hostile.ok()) << hostile.status().ToString();
    ASSERT_TRUE((*hostile)->Write("GET / HTTP/1.1\r\n\r\n", 18).ok());
    char buf[64];
    // Server closes on the framing violation: EOF or reset, never a reply.
    auto got = (*hostile)->Read(buf, sizeof buf);
    EXPECT_TRUE(!got.ok() || *got == 0);
    (*hostile)->Close();
  }

  RemoteConnection conn(LoopbackOptions((*daemon)->port()));
  auto rows =
      conn.ExecuteRangeBatch("data", "key", {ModularInterval(0, 3, 200)});
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->size(), 3u);
}

TEST(TcpTest, IdleSessionsAreClosedAndFreeTheirWorker) {
  engine::DbServer db = MakeServer();
  TcpServerOptions options;
  options.num_workers = 1;  // one idle client would otherwise starve everyone
  options.poll_interval_ms = 10;
  options.idle_timeout_ms = 50;
  auto daemon = TcpServer::Start(&db, options);
  ASSERT_TRUE(daemon.ok());

  // A client that connects and then says nothing must be hung up on.
  auto idle = ConnectTcp("127.0.0.1", (*daemon)->port(), SocketOptions{});
  ASSERT_TRUE(idle.ok()) << idle.status().ToString();
  char buf[16];
  auto got = (*idle)->Read(buf, sizeof buf);  // blocks until the server acts
  EXPECT_TRUE(!got.ok() || *got == 0);        // EOF or reset, not a timeout
  (*idle)->Close();

  // The lone worker is free again: a real client gets served.
  RemoteConnection conn(LoopbackOptions((*daemon)->port()));
  auto rows =
      conn.ExecuteRangeBatch("data", "key", {ModularInterval(0, 3, 200)});
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->size(), 3u);
}

TEST(TcpTest, FullPendingQueueShedsConnectionsInsteadOfQueueing) {
  engine::DbServer db = MakeServer();
  TcpServerOptions options;
  options.max_pending_sessions = 0;  // degenerate bound: shed every accept
  auto daemon = TcpServer::Start(&db, options);
  ASSERT_TRUE(daemon.ok());

  auto shed = ConnectTcp("127.0.0.1", (*daemon)->port(), SocketOptions{});
  ASSERT_TRUE(shed.ok()) << shed.status().ToString();
  char buf[16];
  auto got = (*shed)->Read(buf, sizeof buf);
  EXPECT_TRUE(!got.ok() || *got == 0);  // closed at accept, never served
  (*shed)->Close();
  EXPECT_GE((*daemon)->connections_rejected(), 1u);
}

TEST(TcpTest, QueriesAfterStopFailCleanly) {
  engine::DbServer db = MakeServer();
  auto daemon = TcpServer::Start(&db, TcpServerOptions{});
  ASSERT_TRUE(daemon.ok());
  const uint16_t port = (*daemon)->port();

  RemoteConnection conn(LoopbackOptions(port));
  ASSERT_TRUE(
      conn.ExecuteRangeBatch("data", "key", {ModularInterval(0, 1, 200)})
          .ok());
  (*daemon)->Stop();

  // The daemon is gone: the next request must fail with a transport error,
  // not hang and not crash.
  auto rows =
      conn.ExecuteRangeBatch("data", "key", {ModularInterval(0, 1, 200)});
  ASSERT_FALSE(rows.ok());
  EXPECT_TRUE(rows.status().IsUnavailable()) << rows.status().ToString();
}

TEST(TcpTest, StopIsIdempotent) {
  engine::DbServer db = MakeServer();
  auto daemon = TcpServer::Start(&db, TcpServerOptions{});
  ASSERT_TRUE(daemon.ok());
  (*daemon)->Stop();
  (*daemon)->Stop();  // and ~TcpServer calls it a third time
}

TEST(TcpTest, ConnectToClosedPortIsUnavailable) {
  // Bind-then-close to get a port that is very likely unused.
  uint16_t dead_port = 0;
  {
    auto listener = TcpListener::Bind("127.0.0.1", 0);
    ASSERT_TRUE(listener.ok());
    dead_port = (*listener)->port();
  }
  SocketOptions options;
  options.connect_timeout_ms = 500;
  auto conn = ConnectTcp("127.0.0.1", dead_port, options);
  ASSERT_FALSE(conn.ok());
  EXPECT_TRUE(conn.status().IsUnavailable()) << conn.status().ToString();
}

TEST(TcpTest, DnsNamesOtherThanLocalhostAreRejected) {
  auto conn = ConnectTcp("example.com", 80, SocketOptions{});
  ASSERT_FALSE(conn.ok());
  EXPECT_TRUE(conn.status().IsInvalidArgument());
}

TEST(TcpTest, ConcurrentClientsSeeConsistentData) {
  engine::DbServer db = MakeServer();
  TcpServerOptions options;
  options.num_workers = 4;
  auto daemon = TcpServer::Start(&db, options);
  ASSERT_TRUE(daemon.ok());
  const uint16_t port = (*daemon)->port();

  constexpr int kClients = 6;
  constexpr int kRequestsPerClient = 20;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([port, c, &failures]() {
      RemoteOptions remote = LoopbackOptions(port);
      // Waiting for a free worker counts against the read deadline; give
      // sanitizer-slowed runs plenty of headroom.
      remote.socket.read_timeout_ms = 60000;
      RemoteConnection conn(std::move(remote));
      for (int i = 0; i < kRequestsPerClient; ++i) {
        const uint64_t start = static_cast<uint64_t>((c * 31 + i * 7) % 200);
        auto count = conn.CountRangeBatch(
            "data", "key", {ModularInterval(start, 10, 200)});
        if (!count.ok() || *count != 10) {
          ++failures;
          continue;
        }
        auto rows = conn.ExecuteRangeBatch(
            "data", "key", {ModularInterval(start, 3, 200)});
        if (!rows.ok() || rows->size() != 3) ++failures;
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  // Retries can only add frames, never lose them.
  EXPECT_GE((*daemon)->frames_served(),
            static_cast<uint64_t>(kClients * kRequestsPerClient * 2));
  (*daemon)->Stop();
}

}  // namespace
}  // namespace mope::net
