/// Wire-format compatibility for the version-2 extensions (trace id,
/// profile).
///
/// The contract under test: frames using no extension are emitted as
/// *byte-identical* version-1 frames (an old peer keeps working until
/// tracing or profiling is actually used), a version-2 frame carries exactly
/// the extensions selected by the flags byte, and anything this build does
/// not understand — unknown flag bits, flags in a version-1 frame — is
/// rejected as Corruption instead of being silently mis-framed.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>

#include "engine/codec.h"
#include "engine/server.h"
#include "net/dispatcher.h"
#include "net/wire.h"
#include "obs/clock.h"

namespace mope::net {
namespace {

/// Hand-builds a frame exactly as a version-1-only peer would: 16-byte
/// header, no extensions. Kept independent of EncodeFrame on purpose — it is
/// the "old build" in these tests.
std::string BuildV1Frame(MessageType type, const std::string& payload,
                         uint8_t flags = 0, uint8_t version = 1) {
  std::string frame;
  engine::PutU32(&frame, kWireMagic);
  frame.push_back(static_cast<char>(version));
  frame.push_back(static_cast<char>(type));
  frame.push_back(static_cast<char>(flags));
  frame.push_back('\0');  // reserved
  engine::PutU32(&frame, static_cast<uint32_t>(payload.size()));
  engine::PutU32(&frame, Crc32(payload));
  frame += payload;
  return frame;
}

TEST(FrameCompatTest, TracelessFrameIsByteIdenticalToVersion1) {
  const std::string payload = "payload bytes";
  const std::string encoded =
      EncodeFrame(MessageType::kRangeBatchRequest, payload);
  EXPECT_EQ(encoded,
            BuildV1Frame(MessageType::kRangeBatchRequest, payload));
  EXPECT_EQ(static_cast<uint8_t>(encoded[4]), 1u);  // version byte
  EXPECT_EQ(static_cast<uint8_t>(encoded[6]), 0u);  // flags byte
}

TEST(FrameCompatTest, TracedFrameIsVersion2WithTraceIdExtension) {
  const std::string payload = "payload bytes";
  const uint64_t trace_id = 0x1122334455667788ull;
  const std::string encoded =
      EncodeFrame(MessageType::kRangeBatchRequest, payload, trace_id);
  ASSERT_EQ(encoded.size(),
            kFrameHeaderBytes + kTraceIdBytes + payload.size());
  EXPECT_EQ(static_cast<uint8_t>(encoded[4]), kWireVersion);
  EXPECT_EQ(static_cast<uint8_t>(encoded[6]), kFrameFlagHasTraceId);
  // The trace id sits between header and payload, little-endian, and is
  // excluded from the length field and the CRC.
  std::string expected_id;
  engine::PutU64(&expected_id, trace_id);
  EXPECT_EQ(encoded.substr(kFrameHeaderBytes, kTraceIdBytes), expected_id);

  size_t consumed = 0;
  auto decoded = DecodeFrame(encoded, &consumed);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(consumed, encoded.size());
  EXPECT_EQ(decoded->trace_id, trace_id);
  EXPECT_EQ(decoded->payload, payload);
}

TEST(FrameCompatTest, HandBuiltV1FrameDecodes) {
  const std::string frame = BuildV1Frame(MessageType::kSchemaRequest, "t");
  size_t consumed = 0;
  auto decoded = DecodeFrame(frame, &consumed);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(consumed, frame.size());
  EXPECT_EQ(decoded->type,
            static_cast<uint8_t>(MessageType::kSchemaRequest));
  EXPECT_EQ(decoded->trace_id, 0u);  // no extension = no trace
  EXPECT_EQ(decoded->payload, "t");
}

TEST(FrameCompatTest, UnknownFlagBitIsCorruption) {
  // A future extension bit this build does not know how to frame: the
  // payload boundary would be wrong, so the only safe answer is Corruption.
  const std::string frame =
      BuildV1Frame(MessageType::kStatsRequest, "", /*flags=*/0x04,
                   /*version=*/kWireVersion);
  size_t consumed = 0;
  EXPECT_TRUE(DecodeFrame(frame, &consumed).status().IsCorruption());
}

TEST(FrameCompatTest, FlagsInVersion1FrameAreCorruption) {
  // Version 1 predates the flags byte; a nonzero value there means the peer
  // is broken or hostile, not "version 1 with extensions".
  const std::string frame = BuildV1Frame(
      MessageType::kStatsRequest, "", /*flags=*/kFrameFlagHasTraceId);
  size_t consumed = 0;
  EXPECT_TRUE(DecodeFrame(frame, &consumed).status().IsCorruption());
}

TEST(FrameCompatTest, TruncatedTraceIdIsUnavailableNotMisframed) {
  const std::string encoded =
      EncodeFrame(MessageType::kStatsRequest, "", /*trace_id=*/42);
  // Cut inside the trace-id extension: more bytes may still arrive.
  size_t consumed = 0;
  const auto status =
      DecodeFrame(std::string_view(encoded).substr(
                      0, kFrameHeaderBytes + kTraceIdBytes - 1),
                  &consumed)
          .status();
  EXPECT_TRUE(status.IsUnavailable()) << status.ToString();
}

TEST(StatsWireTest, StatsReplyRoundTrip) {
  const StatsReply stats = {
      {"engine.batches_received", 12},
      {"net.server.frames_served", 34},
      {"server.dispatch_ns.count", 34},
  };
  auto decoded = DecodeStatsReply(EncodeStatsReply(stats));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(*decoded, stats);

  auto empty = DecodeStatsReply(EncodeStatsReply({}));
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

TEST(StatsWireTest, TruncatedStatsReplyIsCorruption) {
  const std::string encoded =
      EncodeStatsReply({{"a", 1}, {"bb", 2}, {"ccc", 3}});
  for (size_t cut = 1; cut < encoded.size(); ++cut) {
    EXPECT_TRUE(DecodeStatsReply(std::string_view(encoded).substr(0, cut))
                    .status()
                    .IsCorruption())
        << "cut at " << cut;
  }
}

TEST(StatsWireTest, ImplausibleStatsCountIsCorruption) {
  // A count far beyond what the payload could hold must be rejected before
  // any allocation sized by it.
  std::string payload;
  engine::PutU32(&payload, ~uint32_t{0});
  EXPECT_TRUE(DecodeStatsReply(payload).status().IsCorruption());
}

TEST(DispatcherCompatTest, HandBuiltV1FrameDispatches) {
  // The "old peer" end-to-end: a frame built without any knowledge of
  // version 2 goes through the dispatcher and gets a well-formed answer.
  engine::DbServer server;
  WireDispatcher dispatcher(&server);
  const std::string request = BuildV1Frame(MessageType::kStatsRequest, "");
  size_t consumed = 0;
  auto reply = dispatcher.HandleFrameBytes(request, &consumed);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(consumed, request.size());

  size_t reply_consumed = 0;
  auto frame = DecodeFrame(*reply, &reply_consumed);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->type, static_cast<uint8_t>(MessageType::kStatsReply));
  EXPECT_EQ(frame->trace_id, 0u);  // traceless in, traceless out
  auto stats = DecodeStatsReply(frame->payload);
  ASSERT_TRUE(stats.ok());
  EXPECT_FALSE(stats->empty());
}

TEST(DispatcherCompatTest, TraceIdIsEchoedOnTheReply) {
  engine::DbServer server;
  WireDispatcher dispatcher(&server);
  const uint64_t trace_id = 0xFEEDull;
  const std::string request =
      EncodeFrame(MessageType::kStatsRequest, "", trace_id);
  size_t consumed = 0;
  auto reply = dispatcher.HandleFrameBytes(request, &consumed);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();

  size_t reply_consumed = 0;
  auto frame = DecodeFrame(*reply, &reply_consumed);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->trace_id, trace_id);
  // ...including on error answers, which matter most for correlation.
  const std::string bad = EncodeFrame(
      MessageType::kSchemaRequest, EncodeSchemaRequest("nope"), trace_id);
  auto bad_reply = dispatcher.HandleFrameBytes(bad, &consumed);
  ASSERT_TRUE(bad_reply.ok());
  auto bad_frame = DecodeFrame(*bad_reply, &reply_consumed);
  ASSERT_TRUE(bad_frame.ok());
  EXPECT_EQ(bad_frame->type,
            static_cast<uint8_t>(MessageType::kStatusReply));
  EXPECT_EQ(bad_frame->trace_id, trace_id);
}

TEST(DispatcherCompatTest, StatsRequestWithPayloadClosesSession) {
  // kStatsRequest is defined as empty-bodied; a payload means the stream is
  // mis-framed, and framing violations are session-fatal by contract.
  engine::DbServer server;
  WireDispatcher dispatcher(&server);
  const std::string request =
      EncodeFrame(MessageType::kStatsRequest, "unexpected");
  size_t consumed = 0;
  EXPECT_TRUE(dispatcher.HandleFrameBytes(request, &consumed)
                  .status()
                  .IsCorruption());
}

TEST(DispatcherCompatTest, DispatchLatencyLandsInServerHistogram) {
  engine::DbServer server;
  // Auto-advance 50ns per read: each dispatch reads the clock twice, so
  // every observed latency is exactly 50ns.
  obs::ManualClock clock(0, 50);
  WireDispatcher dispatcher(&server, kMaxPayloadBytes, &clock);
  size_t consumed = 0;
  for (int i = 0; i < 3; ++i) {
    auto reply = dispatcher.HandleFrameBytes(
        EncodeFrame(MessageType::kStatsRequest, ""), &consumed);
    ASSERT_TRUE(reply.ok());
  }
  obs::ExpHistogram* hist =
      server.metrics()->GetHistogram("server.dispatch_ns");
  EXPECT_EQ(hist->Count(), 3u);
  EXPECT_EQ(hist->Sum(), 150u);
  EXPECT_EQ(dispatcher.frames_served(), 3u);
}

}  // namespace
}  // namespace mope::net
