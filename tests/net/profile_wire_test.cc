/// The profile extension on the v2 wire protocol, request to reply: an
/// empty profile section on a request means "profile me", the dispatcher
/// answers with attributed counter deltas (StatsReply-encoded, stamped with
/// the request's trace id), profile-less traffic stays byte-identical to
/// version 1, and only data-bearing requests are ever profiled — so an
/// embedded query's profile stays field-identical to a remote one.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <utility>

#include "engine/server.h"
#include "net/dispatcher.h"
#include "net/wire.h"

namespace mope::net {
namespace {

using engine::Column;
using engine::Schema;
using engine::ValueType;

engine::DbServer MakeServer() {
  engine::DbServer server;
  auto table = server.catalog()->CreateTable(
      "data", Schema({Column{"key", ValueType::kInt},
                      Column{"tag", ValueType::kString}}));
  EXPECT_TRUE(table.ok());
  for (int64_t k = 0; k < 100; ++k) {
    EXPECT_TRUE((*table)->Insert({k, std::string("row")}).ok());
  }
  EXPECT_TRUE((*table)->CreateIndex("key").ok());
  return server;
}

Result<Frame> Dispatch(WireDispatcher* dispatcher, MessageType type,
                       std::string payload, uint64_t trace_id = 0,
                       bool want_profile = false) {
  const std::string request = EncodeFrame(type, std::move(payload), trace_id,
                                          want_profile);
  size_t consumed = 0;
  MOPE_ASSIGN_OR_RETURN(std::string reply,
                        dispatcher->HandleFrameBytes(request, &consumed));
  EXPECT_EQ(consumed, request.size());
  return DecodeFrame(reply, &consumed);
}

TEST(ProfileWireTest, ProfileSectionRoundTripsOnAFrame) {
  const StatsReply profile = {{"srv.engine.rows_returned", 42},
                              {"profile.trace_id", 7}};
  const std::string encoded =
      EncodeFrame(MessageType::kRangeBatchReply, "rows", /*trace_id=*/7,
                  /*has_profile=*/true, EncodeStatsReply(profile));
  size_t consumed = 0;
  auto frame = DecodeFrame(encoded, &consumed);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(consumed, encoded.size());
  EXPECT_TRUE(frame->has_profile);
  EXPECT_EQ(frame->trace_id, 7u);
  EXPECT_EQ(frame->payload, "rows");
  auto decoded = DecodeStatsReply(frame->profile);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, profile);
}

TEST(ProfileWireTest, EmptyProfileSectionMeansProfileMe) {
  // A request can't know the deltas yet: it sends the extension with zero
  // bytes of profile, which must round-trip as has_profile=true, empty.
  const std::string encoded =
      EncodeFrame(MessageType::kRangeBatchRequest, "req", /*trace_id=*/0,
                  /*has_profile=*/true);
  size_t consumed = 0;
  auto frame = DecodeFrame(encoded, &consumed);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_TRUE(frame->has_profile);
  EXPECT_TRUE(frame->profile.empty());
}

TEST(ProfileWireTest, ProfilelessFrameHasNoExtensionBytes) {
  const std::string with = EncodeFrame(MessageType::kRangeBatchRequest, "x",
                                       0, /*has_profile=*/true);
  const std::string without =
      EncodeFrame(MessageType::kRangeBatchRequest, "x");
  // The extension costs exactly its length prefix when empty, and nothing
  // is left behind when it's off.
  EXPECT_EQ(with.size(), without.size() + kProfileLengthBytes);
  EXPECT_EQ(without.size(), kFrameHeaderBytes + 1);
}

TEST(ProfileWireTest, DispatcherAttachesProfileWhenAsked) {
  engine::DbServer server = MakeServer();
  WireDispatcher dispatcher(&server);
  RangeBatchRequest request{"data", "key", {ModularInterval(10, 5, 100)}};
  auto reply = Dispatch(&dispatcher, MessageType::kRangeBatchRequest,
                        EncodeRangeBatchRequest(request), /*trace_id=*/99,
                        /*want_profile=*/true);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_EQ(reply->type, static_cast<uint8_t>(MessageType::kRangeBatchReply));
  ASSERT_TRUE(reply->has_profile);
  auto profile = DecodeStatsReply(reply->profile);
  ASSERT_TRUE(profile.ok());
  std::map<std::string, uint64_t> entries(profile->begin(), profile->end());
  // Every fixed counter is present (zeros included) so embedded and remote
  // profiles carry the same field set...
  for (const std::string& name :
       engine::ServerProfileProbe::CounterNames()) {
    EXPECT_TRUE(entries.count("srv." + name)) << name;
  }
  // ...the deltas are this request's, not lifetime totals...
  EXPECT_EQ(entries["srv.engine.batches_received"], 1u);
  EXPECT_EQ(entries["srv.engine.rows_returned"], 5u);
  // ...and the reply names the trace the deltas belong to.
  EXPECT_EQ(entries["profile.trace_id"], 99u);
}

TEST(ProfileWireTest, SecondRequestGetsItsOwnDeltas) {
  engine::DbServer server = MakeServer();
  WireDispatcher dispatcher(&server);
  RangeBatchRequest request{"data", "key", {ModularInterval(0, 20, 100)}};
  ASSERT_TRUE(Dispatch(&dispatcher, MessageType::kRangeBatchRequest,
                       EncodeRangeBatchRequest(request), 1, true).ok());
  RangeBatchRequest narrow{"data", "key", {ModularInterval(0, 3, 100)}};
  auto reply = Dispatch(&dispatcher, MessageType::kRangeBatchRequest,
                        EncodeRangeBatchRequest(narrow), 2, true);
  ASSERT_TRUE(reply.ok());
  auto profile = DecodeStatsReply(reply->profile);
  ASSERT_TRUE(profile.ok());
  std::map<std::string, uint64_t> entries(profile->begin(), profile->end());
  EXPECT_EQ(entries["srv.engine.rows_returned"], 3u);  // not 23
  EXPECT_EQ(entries["profile.trace_id"], 2u);
}

TEST(ProfileWireTest, UnprofiledRequestGetsUnprofiledReply) {
  engine::DbServer server = MakeServer();
  WireDispatcher dispatcher(&server);
  RangeBatchRequest request{"data", "key", {ModularInterval(10, 5, 100)}};
  auto reply = Dispatch(&dispatcher, MessageType::kRangeBatchRequest,
                        EncodeRangeBatchRequest(request));
  ASSERT_TRUE(reply.ok());
  // No speculative profiling: a peer that didn't ask pays zero bytes.
  EXPECT_FALSE(reply->has_profile);
}

TEST(ProfileWireTest, NonDataRequestsIgnoreTheProfileFlag) {
  engine::DbServer server = MakeServer();
  WireDispatcher dispatcher(&server);
  auto reply = Dispatch(&dispatcher, MessageType::kSchemaRequest,
                        EncodeSchemaRequest("data"), /*trace_id=*/5,
                        /*want_profile=*/true);
  ASSERT_TRUE(reply.ok());
  ASSERT_EQ(reply->type, static_cast<uint8_t>(MessageType::kSchemaReply));
  // Schema lookups execute no query: attaching a profile would make a remote
  // session's profile differ from an embedded one (which never profiles its
  // in-process schema call).
  EXPECT_FALSE(reply->has_profile);
}

TEST(ProfileWireTest, TruncatedProfileSectionIsUnavailableNotMisframed) {
  const std::string encoded =
      EncodeFrame(MessageType::kRangeBatchReply, "rows", 0,
                  /*has_profile=*/true,
                  EncodeStatsReply({{"srv.engine.rows_returned", 1}}));
  size_t consumed = 0;
  // Every truncation point mid-extension reads as "need more bytes", never
  // as a decoded frame with garbage profile bytes.
  for (size_t len = kFrameHeaderBytes; len < encoded.size(); ++len) {
    auto frame = DecodeFrame(std::string_view(encoded).substr(0, len),
                             &consumed);
    EXPECT_FALSE(frame.ok()) << "decoded at " << len;
    EXPECT_TRUE(frame.status().IsUnavailable()) << frame.status().ToString();
  }
}

}  // namespace
}  // namespace mope::net
