#include "storage/disk_manager.h"

#include <gtest/gtest.h>

#include <cstring>

#include "obs/registry.h"
#include "storage/env.h"
#include "storage/page.h"

namespace mope::storage {
namespace {

TEST(DiskManagerTest, WriteReadRoundTrip) {
  InMemEnv env;
  obs::MetricsRegistry metrics;
  auto dm = DiskManager::Open(&env, "/pages", &metrics);
  ASSERT_TRUE(dm.ok()) << dm.status();

  const PageId id = (*dm)->AllocatePage();
  char page[kPageSize];
  PageView view(page);
  view.Format(PageType::kHeap);
  view.set_count(7);
  view.set_lsn(42);
  ASSERT_TRUE((*dm)->WritePage(id, page).ok());

  char back[kPageSize];
  ASSERT_TRUE((*dm)->ReadPage(id, back).ok());
  PageView bview(back);
  EXPECT_EQ(bview.type(), PageType::kHeap);
  EXPECT_EQ(bview.count(), 7);
  EXPECT_EQ(bview.lsn(), 42u);
  EXPECT_EQ(metrics.GetCounter("storage.disk.page_writes")->Value(), 1u);
  EXPECT_EQ(metrics.GetCounter("storage.disk.page_reads")->Value(), 1u);
}

TEST(DiskManagerTest, ChecksumDetectsCorruption) {
  InMemEnv env;
  obs::MetricsRegistry metrics;
  auto dm = DiskManager::Open(&env, "/pages", &metrics);
  ASSERT_TRUE(dm.ok());
  const PageId id = (*dm)->AllocatePage();
  char page[kPageSize];
  PageView(page).Format(PageType::kHeap);
  ASSERT_TRUE((*dm)->WritePage(id, page).ok());

  // Flip one payload byte behind the manager's back.
  auto file = env.OpenRandomAccess("/pages");
  ASSERT_TRUE(file.ok());
  std::string byte;
  ASSERT_TRUE((*file)->Read(id * kPageSize + 100, 1, &byte).ok());
  byte[0] = static_cast<char>(byte[0] ^ 0xFF);
  ASSERT_TRUE((*file)->Write(id * kPageSize + 100, byte).ok());

  char back[kPageSize];
  EXPECT_TRUE((*dm)->ReadPage(id, back).IsCorruption());
  EXPECT_EQ(metrics.GetCounter("storage.disk.read_corruptions")->Value(), 1u);
}

TEST(DiskManagerTest, ReadPastEndIsOutOfRange) {
  InMemEnv env;
  auto dm = DiskManager::Open(&env, "/pages", nullptr);
  ASSERT_TRUE(dm.ok());
  char back[kPageSize];
  EXPECT_TRUE((*dm)->ReadPage(3, back).IsOutOfRange());
}

TEST(DiskManagerTest, TornFileTailRoundedDown) {
  InMemEnv env;
  {
    auto dm = DiskManager::Open(&env, "/pages", nullptr);
    ASSERT_TRUE(dm.ok());
    char page[kPageSize];
    PageView(page).Format(PageType::kHeap);
    ASSERT_TRUE((*dm)->WritePage((*dm)->AllocatePage(), page).ok());
    ASSERT_TRUE((*dm)->WritePage((*dm)->AllocatePage(), page).ok());
    ASSERT_TRUE((*dm)->Sync().ok());
  }
  // A crash mid-extension leaves a non-multiple size.
  auto file = env.OpenRandomAccess("/pages");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Write(2 * kPageSize, "torn tail").ok());

  auto dm = DiskManager::Open(&env, "/pages", nullptr);
  ASSERT_TRUE(dm.ok());
  EXPECT_EQ((*dm)->page_count(), 2u);
  // The next allocation reuses the torn slot; a full write repairs it.
  EXPECT_EQ((*dm)->AllocatePage(), 2u);
}

TEST(DiskManagerTest, ReserveThroughExtendsAllocation) {
  InMemEnv env;
  auto dm = DiskManager::Open(&env, "/pages", nullptr);
  ASSERT_TRUE(dm.ok());
  (*dm)->ReserveThrough(9);
  EXPECT_EQ((*dm)->page_count(), 10u);
  EXPECT_EQ((*dm)->AllocatePage(), 10u);
}

TEST(DiskManagerTest, PersistsAcrossReopen) {
  InMemEnv env;
  PageId id = kInvalidPageId;
  {
    auto dm = DiskManager::Open(&env, "/pages", nullptr);
    ASSERT_TRUE(dm.ok());
    id = (*dm)->AllocatePage();
    char page[kPageSize];
    PageView view(page);
    view.Format(PageType::kBTreeLeaf);
    view.set_aux(1234);
    ASSERT_TRUE((*dm)->WritePage(id, page).ok());
    ASSERT_TRUE((*dm)->Sync().ok());
  }
  env.SimulateCrash();
  auto dm = DiskManager::Open(&env, "/pages", nullptr);
  ASSERT_TRUE(dm.ok());
  EXPECT_EQ((*dm)->page_count(), 1u);
  char back[kPageSize];
  ASSERT_TRUE((*dm)->ReadPage(id, back).ok());
  EXPECT_EQ(PageView(back).aux(), 1234u);
}

}  // namespace
}  // namespace mope::storage
