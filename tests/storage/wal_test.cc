#include "storage/wal.h"

#include <gtest/gtest.h>

#include "obs/registry.h"
#include "storage/env.h"

namespace mope::storage {
namespace {

TEST(WalTest, AppendReadAllRoundTrip) {
  InMemEnv env;
  auto wal = Wal::Open(&env, "/wal", /*next_lsn=*/1, /*sync_every=*/1, nullptr);
  ASSERT_TRUE(wal.ok()) << wal.status();
  auto l1 = (*wal)->Append(WalRecordType::kCatalog, "ddl one");
  auto l2 = (*wal)->Append(WalRecordType::kHeapAppend, "row bytes");
  ASSERT_TRUE(l1.ok() && l2.ok());
  EXPECT_EQ(*l1, 1u);
  EXPECT_EQ(*l2, 2u);

  auto records = Wal::ReadAll(&env, "/wal", /*after_lsn=*/0);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[0].lsn, 1u);
  EXPECT_EQ((*records)[0].type, WalRecordType::kCatalog);
  EXPECT_EQ((*records)[0].payload, "ddl one");
  EXPECT_EQ((*records)[1].payload, "row bytes");
}

TEST(WalTest, AfterLsnFiltersStaleRecords) {
  InMemEnv env;
  auto wal = Wal::Open(&env, "/wal", 1, 1, nullptr);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->Append(WalRecordType::kCatalog, "old").ok());
  ASSERT_TRUE((*wal)->Append(WalRecordType::kCatalog, "new").ok());
  auto records = Wal::ReadAll(&env, "/wal", /*after_lsn=*/1);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].payload, "new");
}

TEST(WalTest, GroupCommitSyncsEveryN) {
  InMemEnv env;
  obs::MetricsRegistry metrics;
  auto wal = Wal::Open(&env, "/wal", 1, /*sync_every=*/3, &metrics);
  ASSERT_TRUE(wal.ok());
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE((*wal)->Append(WalRecordType::kCatalog, "r").ok());
  }
  // 7 appends, policy N=3: two automatic syncs (after 3 and 6).
  EXPECT_EQ(metrics.GetCounter("storage.wal.syncs")->Value(), 2u);
  env.SimulateCrash();
  auto records = Wal::ReadAll(&env, "/wal", 0);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 6u);  // the 7th was never synced
}

TEST(WalTest, ExplicitSyncCommitsEverything) {
  InMemEnv env;
  auto wal = Wal::Open(&env, "/wal", 1, /*sync_every=*/0, nullptr);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->Append(WalRecordType::kCatalog, "a").ok());
  ASSERT_TRUE((*wal)->Append(WalRecordType::kCatalog, "b").ok());
  ASSERT_TRUE((*wal)->Sync().ok());
  env.SimulateCrash();
  auto records = Wal::ReadAll(&env, "/wal", 0);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 2u);
}

TEST(WalTest, SyncToCoversRequestedLsn) {
  InMemEnv env;
  auto wal = Wal::Open(&env, "/wal", 1, 0, nullptr);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->Append(WalRecordType::kCatalog, "a").ok());
  ASSERT_TRUE((*wal)->Append(WalRecordType::kCatalog, "b").ok());
  ASSERT_TRUE((*wal)->SyncTo(2).ok());
  env.SimulateCrash();
  auto records = Wal::ReadAll(&env, "/wal", 0);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 2u);
  // LSN 0 needs no sync at all (pages written without a WAL record).
  auto wal2 = Wal::Open(&env, "/wal", 3, 0, nullptr);
  ASSERT_TRUE(wal2.ok());
  EXPECT_TRUE((*wal2)->SyncTo(0).ok());
}

TEST(WalTest, TornTailToleratedNotFatal) {
  InMemEnv env;
  auto wal = Wal::Open(&env, "/wal", 1, 1, nullptr);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->Append(WalRecordType::kCatalog, "whole record").ok());

  // Simulate a torn append: raw garbage after the last good record.
  auto file = env.OpenAppend("/wal", false);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("\x10\x00\x00\x00garbage").ok());

  auto records = Wal::ReadAll(&env, "/wal", 0);
  ASSERT_TRUE(records.ok()) << records.status();
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].payload, "whole record");
}

TEST(WalTest, RestartTruncatesAndLsnsContinue) {
  InMemEnv env;
  auto wal = Wal::Open(&env, "/wal", 1, 1, nullptr);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->Append(WalRecordType::kCatalog, "before").ok());
  ASSERT_TRUE((*wal)->Restart().ok());
  auto lsn = (*wal)->Append(WalRecordType::kCatalog, "after");
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(*lsn, 2u);  // never reused

  auto records = Wal::ReadAll(&env, "/wal", 0);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].payload, "after");
}

TEST(WalTest, ReadAllOnMissingFileIsEmpty) {
  InMemEnv env;
  auto records = Wal::ReadAll(&env, "/never-created", 0);
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE(records->empty());
}

TEST(WalTest, FailedSyncSurfacesToAppend) {
  InMemEnv base;
  FaultyEnv env(&base);
  auto wal = Wal::Open(&env, "/wal", 1, /*sync_every=*/1, nullptr);
  ASSERT_TRUE(wal.ok());
  FaultyEnv::Faults faults;
  faults.fail_sync = true;
  env.set_faults(faults);
  // sync_every=1 makes the failed fsync visible on the append itself.
  EXPECT_FALSE((*wal)->Append(WalRecordType::kCatalog, "r").ok());
}

}  // namespace
}  // namespace mope::storage
