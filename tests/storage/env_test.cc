#include "storage/env.h"

#include <gtest/gtest.h>

namespace mope::storage {
namespace {

TEST(InMemEnvTest, ReadFileNotFound) {
  InMemEnv env;
  EXPECT_TRUE(env.ReadFile("/nope").status().IsNotFound());
  EXPECT_FALSE(env.FileExists("/nope"));
}

TEST(InMemEnvTest, AppendAndReadBack) {
  InMemEnv env;
  auto file = env.OpenAppend("/log", /*truncate=*/false);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("hello ").ok());
  ASSERT_TRUE((*file)->Append("world").ok());
  auto contents = env.ReadFile("/log");
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, "hello world");
  auto size = (*file)->Size();
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 11u);
}

TEST(InMemEnvTest, RandomAccessReadWrite) {
  InMemEnv env;
  auto file = env.OpenRandomAccess("/pages");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Write(0, "aaaa").ok());
  ASSERT_TRUE((*file)->Write(8, "bbbb").ok());  // hole is zero-filled
  std::string out;
  ASSERT_TRUE((*file)->Read(8, 4, &out).ok());
  EXPECT_EQ(out, "bbbb");
  // Reading past EOF is an error, never silent padding.
  EXPECT_TRUE((*file)->Read(10, 4, &out).IsOutOfRange());
}

TEST(InMemEnvTest, CrashRevertsToSyncedContents) {
  InMemEnv env;
  auto file = env.OpenAppend("/log", false);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("committed").ok());
  ASSERT_TRUE((*file)->Sync().ok());
  ASSERT_TRUE((*file)->Append(" lost").ok());

  env.SimulateCrash();

  auto contents = env.ReadFile("/log");
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, "committed");
  // The pre-crash handle keeps working against the reverted state.
  ASSERT_TRUE((*file)->Append("+new").ok());
  EXPECT_EQ(*env.ReadFile("/log"), "committed+new");
}

TEST(InMemEnvTest, UnsyncedFileVanishesOnCrash) {
  InMemEnv env;
  auto file = env.OpenAppend("/log", false);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("never synced").ok());
  env.SimulateCrash();
  EXPECT_EQ(*env.ReadFile("/log"), "");
}

TEST(InMemEnvTest, WriteFileAtomicSurvivesCrashWhole) {
  InMemEnv env;
  ASSERT_TRUE(env.WriteFileAtomic("/meta", "v1").ok());
  env.SimulateCrash();
  EXPECT_EQ(*env.ReadFile("/meta"), "v1");
  ASSERT_TRUE(env.WriteFileAtomic("/meta", "v2-longer").ok());
  env.SimulateCrash();
  // Old or new, never a prefix.
  EXPECT_EQ(*env.ReadFile("/meta"), "v2-longer");
}

TEST(InMemEnvTest, TruncateNotDurableUntilSync) {
  InMemEnv env;
  {
    auto file = env.OpenAppend("/log", false);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append("old records").ok());
    ASSERT_TRUE((*file)->Sync().ok());
  }
  {
    // Re-open truncating, but crash before the truncation is synced: the
    // old bytes come back — exactly the case the checkpoint-LSN filter
    // exists for.
    auto file = env.OpenAppend("/log", /*truncate=*/true);
    ASSERT_TRUE(file.ok());
  }
  env.SimulateCrash();
  EXPECT_EQ(*env.ReadFile("/log"), "old records");
}

TEST(FaultyEnvTest, FailsAfterCountdownAndStaysDead) {
  InMemEnv base;
  FaultyEnv env(&base);
  FaultyEnv::Faults faults;
  faults.fail_after_writes = 2;
  env.set_faults(faults);

  auto file = env.OpenAppend("/log", false);
  ASSERT_TRUE(file.ok());
  EXPECT_TRUE((*file)->Append("one").ok());
  EXPECT_TRUE((*file)->Append("two").ok());
  EXPECT_FALSE((*file)->Append("three").ok());
  // The disk does not come back.
  EXPECT_FALSE((*file)->Append("four").ok());
  EXPECT_EQ(*base.ReadFile("/log"), "onetwo");
}

TEST(FaultyEnvTest, TornWritePersistsPrefix) {
  InMemEnv base;
  FaultyEnv env(&base);
  FaultyEnv::Faults faults;
  faults.fail_after_writes = 0;
  faults.torn = true;
  faults.torn_fraction = 0.5;
  env.set_faults(faults);

  auto file = env.OpenAppend("/log", false);
  ASSERT_TRUE(file.ok());
  EXPECT_FALSE((*file)->Append("0123456789").ok());
  EXPECT_EQ(*base.ReadFile("/log"), "01234");
}

TEST(FaultyEnvTest, FailedSyncSurfaces) {
  InMemEnv base;
  FaultyEnv env(&base);
  FaultyEnv::Faults faults;
  faults.fail_sync = true;
  env.set_faults(faults);
  auto file = env.OpenAppend("/log", false);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("data").ok());
  EXPECT_FALSE((*file)->Sync().ok());
}

TEST(PosixEnvTest, AtomicWriteAndReadBack) {
  Env* env = Env::Posix();
  const std::string path = ::testing::TempDir() + "/mope_env_test.bin";
  ASSERT_TRUE(env->WriteFileAtomic(path, std::string("abc\0def", 7)).ok());
  auto contents = env->ReadFile(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, std::string("abc\0def", 7));
  EXPECT_TRUE(env->FileExists(path));
  ASSERT_TRUE(env->RemoveFile(path).ok());
  EXPECT_FALSE(env->FileExists(path));
}

}  // namespace
}  // namespace mope::storage
