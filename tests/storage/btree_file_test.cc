#include "storage/btree_file.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "common/random.h"
#include "obs/registry.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/env.h"

namespace mope::storage {
namespace {

struct TreeFixture {
  InMemEnv env;
  obs::MetricsRegistry metrics;
  std::unique_ptr<DiskManager> disk;
  std::unique_ptr<BufferPool> pool;

  explicit TreeFixture(size_t frames = 64) {
    auto dm = DiskManager::Open(&env, "/pages", &metrics);
    EXPECT_TRUE(dm.ok());
    disk = std::move(dm).value();
    pool = std::make_unique<BufferPool>(
        disk.get(), frames, [](uint64_t) { return Status::OK(); }, &metrics);
  }
};

std::vector<std::pair<uint64_t, uint64_t>> CollectRange(BTreeFile* tree,
                                                        uint64_t lo,
                                                        uint64_t hi) {
  std::vector<std::pair<uint64_t, uint64_t>> out;
  auto n = tree->ScanRange(
      lo, hi, [&out](uint64_t k, uint64_t r) { out.emplace_back(k, r); });
  EXPECT_TRUE(n.ok()) << n.status();
  EXPECT_EQ(*n, out.size());
  return out;
}

TEST(BTreeFileTest, EmptyTreeScansNothing) {
  TreeFixture f;
  auto tree = BTreeFile::Open(f.pool.get(), kInvalidPageId);
  ASSERT_TRUE(tree.ok()) << tree.status();
  EXPECT_TRUE(CollectRange(tree->get(), 0, ~uint64_t{0}).empty());
  EXPECT_TRUE((*tree)->CheckInvariants().ok());
}

TEST(BTreeFileTest, InsertScanAgainstReference) {
  TreeFixture f;
  auto tree = BTreeFile::Open(f.pool.get(), kInvalidPageId);
  ASSERT_TRUE(tree.ok());
  Rng rng(0xB7EE);
  std::vector<std::pair<uint64_t, uint64_t>> reference;
  for (uint64_t rid = 0; rid < 3000; ++rid) {
    const uint64_t key = rng.UniformUint64(500);  // heavy duplication
    ASSERT_TRUE((*tree)->Insert(key, rid).ok()) << rid;
    reference.emplace_back(key, rid);
  }
  ASSERT_TRUE((*tree)->CheckInvariants().ok());
  std::sort(reference.begin(), reference.end());

  EXPECT_EQ(CollectRange(tree->get(), 0, ~uint64_t{0}), reference);

  // Sub-ranges, including empty and single-key ones.
  for (auto [lo, hi] : std::vector<std::pair<uint64_t, uint64_t>>{
           {100, 200}, {0, 0}, {499, 499}, {500, 900}, {250, 250}}) {
    std::vector<std::pair<uint64_t, uint64_t>> expect;
    for (const auto& e : reference) {
      if (e.first >= lo && e.first <= hi) expect.push_back(e);
    }
    EXPECT_EQ(CollectRange(tree->get(), lo, hi), expect) << lo << ".." << hi;
    auto count = (*tree)->CountRange(lo, hi);
    ASSERT_TRUE(count.ok());
    EXPECT_EQ(*count, expect.size());
  }
}

TEST(BTreeFileTest, SequentialAndReverseInsertsSplitCorrectly) {
  for (const bool reverse : {false, true}) {
    TreeFixture f;
    auto tree = BTreeFile::Open(f.pool.get(), kInvalidPageId);
    ASSERT_TRUE(tree.ok());
    const uint64_t n = 2000;  // several leaf splits + root split
    for (uint64_t i = 0; i < n; ++i) {
      const uint64_t key = reverse ? n - 1 - i : i;
      ASSERT_TRUE((*tree)->Insert(key, key).ok()) << key;
    }
    ASSERT_TRUE((*tree)->CheckInvariants().ok()) << "reverse=" << reverse;
    auto all = CollectRange(tree->get(), 0, ~uint64_t{0});
    ASSERT_EQ(all.size(), n);
    for (uint64_t i = 0; i < n; ++i) {
      EXPECT_EQ(all[i].first, i);
    }
  }
}

TEST(BTreeFileTest, EraseRemovesExactlyOneEntry) {
  TreeFixture f;
  auto tree = BTreeFile::Open(f.pool.get(), kInvalidPageId);
  ASSERT_TRUE(tree.ok());
  for (uint64_t rid = 0; rid < 10; ++rid) {
    ASSERT_TRUE((*tree)->Insert(42, rid).ok());
  }
  auto erased = (*tree)->Erase(42, 5);
  ASSERT_TRUE(erased.ok());
  EXPECT_TRUE(*erased);
  auto missing = (*tree)->Erase(42, 5);
  ASSERT_TRUE(missing.ok());
  EXPECT_FALSE(*missing);
  EXPECT_FALSE(*(*tree)->Erase(99, 0));

  auto rest = CollectRange(tree->get(), 42, 42);
  ASSERT_EQ(rest.size(), 9u);
  for (const auto& e : rest) EXPECT_NE(e.second, 5u);
  EXPECT_TRUE((*tree)->CheckInvariants().ok());
}

TEST(BTreeFileTest, LazyDeletionToleratesEmptyLeaves) {
  TreeFixture f;
  auto tree = BTreeFile::Open(f.pool.get(), kInvalidPageId);
  ASSERT_TRUE(tree.ok());
  for (uint64_t i = 0; i < 1500; ++i) {
    ASSERT_TRUE((*tree)->Insert(i, i).ok());
  }
  // Drain a whole key region: some leaves go empty, none are merged.
  for (uint64_t i = 300; i < 900; ++i) {
    ASSERT_TRUE((*tree)->Erase(i, i).ok());
  }
  ASSERT_TRUE((*tree)->CheckInvariants().ok());
  EXPECT_EQ(*(*tree)->CountRange(0, 1499), 900u);
  EXPECT_EQ(*(*tree)->CountRange(300, 899), 0u);
  EXPECT_EQ(CollectRange(tree->get(), 250, 950).size(), 101u);
}

TEST(BTreeFileTest, ReopenFromRootSeesEverything) {
  TreeFixture f;
  PageId root;
  {
    auto tree = BTreeFile::Open(f.pool.get(), kInvalidPageId);
    ASSERT_TRUE(tree.ok());
    for (uint64_t i = 0; i < 1000; ++i) {
      ASSERT_TRUE((*tree)->Insert(i * 3, i).ok());
    }
    root = (*tree)->root();
  }
  auto tree = BTreeFile::Open(f.pool.get(), root);
  ASSERT_TRUE(tree.ok());
  EXPECT_TRUE((*tree)->CheckInvariants().ok());
  EXPECT_EQ(*(*tree)->CountRange(0, 3000), 1000u);
  ASSERT_TRUE((*tree)->Insert(1, 12345).ok());
  EXPECT_EQ(*(*tree)->CountRange(0, 3000), 1001u);
}

TEST(BTreeFileTest, ScanStatsCountLeafPages) {
  TreeFixture f;
  auto tree = BTreeFile::Open(f.pool.get(), kInvalidPageId);
  ASSERT_TRUE(tree.ok());
  for (uint64_t i = 0; i < 2000; ++i) {
    ASSERT_TRUE((*tree)->Insert(i, i).ok());
  }
  BTreeFile::ScanStats stats;
  auto n = (*tree)->ScanRange(0, 1999, [](uint64_t, uint64_t) {}, &stats);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 2000u);
  // 254 entries per leaf: a full scan touches at least ceil(2000/254) = 8.
  EXPECT_GE(stats.nodes_visited, 8u);
  // A point scan touches far fewer leaves than a full scan.
  BTreeFile::ScanStats point;
  ASSERT_TRUE((*tree)->ScanRange(17, 17, [](uint64_t, uint64_t) {}, &point).ok());
  EXPECT_LT(point.nodes_visited, stats.nodes_visited);
}

TEST(BTreeFileTest, WorksThroughTinyPool) {
  // 8 frames is the supported floor: descents + splits must never hold more
  // pins than that.
  TreeFixture f(8);
  auto tree = BTreeFile::Open(f.pool.get(), kInvalidPageId);
  ASSERT_TRUE(tree.ok());
  Rng rng(0x71AE);
  for (uint64_t rid = 0; rid < 4000; ++rid) {
    ASSERT_TRUE((*tree)->Insert(rng.UniformUint64(1u << 20), rid).ok()) << rid;
  }
  ASSERT_TRUE((*tree)->CheckInvariants().ok());
  EXPECT_EQ(*(*tree)->CountRange(0, ~uint64_t{0}), 4000u);
}

}  // namespace
}  // namespace mope::storage
