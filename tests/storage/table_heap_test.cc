#include "storage/table_heap.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/registry.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/env.h"
#include "storage/wal.h"
#include "storage/wal_logger.h"

namespace mope::storage {
namespace {

struct HeapFixture {
  InMemEnv env;
  obs::MetricsRegistry metrics;
  std::unique_ptr<DiskManager> disk;
  std::unique_ptr<Wal> wal;
  std::unique_ptr<WalLogger> logger;
  std::unique_ptr<BufferPool> pool;

  explicit HeapFixture(size_t frames = 16) {
    auto dm = DiskManager::Open(&env, "/pages", &metrics);
    EXPECT_TRUE(dm.ok());
    disk = std::move(dm).value();
    auto w = Wal::Open(&env, "/wal", 1, 0, &metrics);
    EXPECT_TRUE(w.ok());
    wal = std::move(w).value();
    logger = std::make_unique<WalLogger>(wal.get());
    Wal* wal_ptr = wal.get();
    pool = std::make_unique<BufferPool>(
        disk.get(), frames,
        [wal_ptr](uint64_t lsn) { return wal_ptr->SyncTo(lsn); }, &metrics);
  }
};

TEST(TableHeapTest, AppendReadRoundTrip) {
  HeapFixture f;
  auto heap = TableHeap::Open(f.pool.get(), f.logger.get(), kInvalidPageId);
  ASSERT_TRUE(heap.ok()) << heap.status();
  auto rid = (*heap)->Append("ciphertext row bytes");
  ASSERT_TRUE(rid.ok());
  auto back = (*heap)->Read(*rid);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, "ciphertext row bytes");
}

TEST(TableHeapTest, ChainGrowsAcrossManyPages) {
  HeapFixture f(4);  // smaller than the chain: forces real paging
  auto heap = TableHeap::Open(f.pool.get(), f.logger.get(), kInvalidPageId);
  ASSERT_TRUE(heap.ok());
  const std::string record(600, 'x');  // ~6 per page
  std::vector<RecordId> rids;
  for (int i = 0; i < 100; ++i) {
    auto rid = (*heap)->Append(record + std::to_string(i));
    ASSERT_TRUE(rid.ok()) << i << ": " << rid.status();
    rids.push_back(*rid);
  }
  // Multiple distinct pages were used.
  EXPECT_GT(rids.back().page_id, rids.front().page_id);
  // Scan visits every record in append order.
  size_t i = 0;
  Status scan = (*heap)->Scan([&](RecordId rid, std::string_view bytes) {
    EXPECT_EQ(rid, rids[i]) << i;
    EXPECT_EQ(bytes, record + std::to_string(i));
    ++i;
    return Status::OK();
  });
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(i, rids.size());
}

TEST(TableHeapTest, ReopenFindsTailAndKeepsAppending) {
  HeapFixture f;
  PageId head;
  RecordId last;
  {
    auto heap = TableHeap::Open(f.pool.get(), f.logger.get(), kInvalidPageId);
    ASSERT_TRUE(heap.ok());
    head = (*heap)->head();
    const std::string record(1000, 'y');
    for (int i = 0; i < 20; ++i) {
      auto rid = (*heap)->Append(record);
      ASSERT_TRUE(rid.ok());
      last = *rid;
    }
  }
  auto heap = TableHeap::Open(f.pool.get(), f.logger.get(), head);
  ASSERT_TRUE(heap.ok());
  auto rid = (*heap)->Append("after reopen");
  ASSERT_TRUE(rid.ok());
  // Appended on (or after) the old tail page, not a fresh chain.
  EXPECT_GE(rid->page_id, last.page_id);
  auto back = (*heap)->Read(*rid);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, "after reopen");
}

TEST(TableHeapTest, UpdateInPlaceSameOrSmaller) {
  HeapFixture f;
  auto heap = TableHeap::Open(f.pool.get(), f.logger.get(), kInvalidPageId);
  ASSERT_TRUE(heap.ok());
  auto rid = (*heap)->Append("0123456789");
  ASSERT_TRUE(rid.ok());
  ASSERT_TRUE((*heap)->Update(*rid, "abcdefghij").ok());
  EXPECT_EQ(*(*heap)->Read(*rid), "abcdefghij");
  ASSERT_TRUE((*heap)->Update(*rid, "short").ok());
  EXPECT_EQ(*(*heap)->Read(*rid), "short");
}

TEST(TableHeapTest, UpdateMayNotGrow) {
  HeapFixture f;
  auto heap = TableHeap::Open(f.pool.get(), f.logger.get(), kInvalidPageId);
  ASSERT_TRUE(heap.ok());
  auto rid = (*heap)->Append("tiny");
  ASSERT_TRUE(rid.ok());
  EXPECT_TRUE((*heap)->Update(*rid, "much longer record").IsInvalidArgument());
  EXPECT_EQ(*(*heap)->Read(*rid), "tiny");
}

TEST(TableHeapTest, OversizeRecordRejected) {
  HeapFixture f;
  auto heap = TableHeap::Open(f.pool.get(), f.logger.get(), kInvalidPageId);
  ASSERT_TRUE(heap.ok());
  const std::string big(heap_page::kMaxRecordSize + 1, 'z');
  EXPECT_TRUE((*heap)->Append(big).status().IsInvalidArgument());
  const std::string max(heap_page::kMaxRecordSize, 'z');
  EXPECT_TRUE((*heap)->Append(max).ok());
}

TEST(TableHeapTest, ReadOfBadRidFails) {
  HeapFixture f;
  auto heap = TableHeap::Open(f.pool.get(), f.logger.get(), kInvalidPageId);
  ASSERT_TRUE(heap.ok());
  auto rid = (*heap)->Append("one");
  ASSERT_TRUE(rid.ok());
  EXPECT_FALSE((*heap)->Read(RecordId{rid->page_id, 40}).ok());
}

TEST(HeapPayloadCodecTest, SlotPayloadRoundTrip) {
  const std::string payload = EncodeHeapSlotPayload(7, 3, "record");
  auto decoded = DecodeHeapSlotPayload(payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->page_id, 7u);
  EXPECT_EQ(decoded->slot, 3);
  EXPECT_EQ(decoded->record, "record");
  EXPECT_TRUE(DecodeHeapSlotPayload("short").status().IsCorruption());
  EXPECT_TRUE(
      DecodeHeapSlotPayload(payload.substr(0, payload.size() - 1))
          .status()
          .IsCorruption());
}

TEST(HeapPayloadCodecTest, LinkPayloadRoundTrip) {
  const std::string payload = EncodeHeapLinkPayload(5, 9);
  auto decoded = DecodeHeapLinkPayload(payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->page_id, 5u);
  EXPECT_EQ(decoded->next, 9u);
  EXPECT_TRUE(DecodeHeapLinkPayload("x").status().IsCorruption());
}

}  // namespace
}  // namespace mope::storage
