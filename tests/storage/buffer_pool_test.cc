#include "storage/buffer_pool.h"

#include <gtest/gtest.h>

#include <vector>

#include "obs/registry.h"
#include "storage/disk_manager.h"
#include "storage/env.h"

namespace mope::storage {
namespace {

BufferPool::EnsureDurable NoWal() {
  return [](uint64_t) { return Status::OK(); };
}

struct PoolFixture {
  InMemEnv env;
  obs::MetricsRegistry metrics;
  std::unique_ptr<DiskManager> disk;
  std::unique_ptr<BufferPool> pool;

  explicit PoolFixture(size_t frames,
                       BufferPool::EnsureDurable durable = NoWal()) {
    auto dm = DiskManager::Open(&env, "/pages", &metrics);
    EXPECT_TRUE(dm.ok());
    disk = std::move(dm).value();
    pool = std::make_unique<BufferPool>(disk.get(), frames, std::move(durable),
                                        &metrics);
  }

  uint64_t Counter(const char* name) {
    return metrics.GetCounter(name)->Value();
  }
};

TEST(BufferPoolTest, CreateFetchRoundTrip) {
  PoolFixture f(4);
  PageId id;
  {
    auto guard = f.pool->Create(PageType::kHeap);
    ASSERT_TRUE(guard.ok());
    id = guard->id();
    guard->view().set_count(5);
    guard->MarkDirty();
  }
  auto again = f.pool->Fetch(id);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->view().count(), 5);
  EXPECT_EQ(again->view().type(), PageType::kHeap);
  EXPECT_GE(f.Counter("storage.pool.hits"), 1u);
}

TEST(BufferPoolTest, EvictionWritesBackDirtyPages) {
  PoolFixture f(2);
  std::vector<PageId> ids;
  for (int i = 0; i < 5; ++i) {
    auto guard = f.pool->Create(PageType::kHeap);
    ASSERT_TRUE(guard.ok());
    guard->view().set_count(static_cast<uint16_t>(i + 1));
    guard->MarkDirty();
    ids.push_back(guard->id());
  }
  // Pool of 2 held 5 pages: at least 3 evictions, each writing back.
  EXPECT_GE(f.Counter("storage.pool.evictions"), 3u);
  EXPECT_GE(f.Counter("storage.pool.writebacks"), 3u);
  // Every page readable with its data intact (re-read through the pool).
  for (size_t i = 0; i < ids.size(); ++i) {
    auto guard = f.pool->Fetch(ids[i]);
    ASSERT_TRUE(guard.ok());
    EXPECT_EQ(guard->view().count(), i + 1) << i;
  }
}

TEST(BufferPoolTest, AllFramesPinnedIsAnError) {
  PoolFixture f(2);
  auto a = f.pool->Create(PageType::kHeap);
  auto b = f.pool->Create(PageType::kHeap);
  ASSERT_TRUE(a.ok() && b.ok());
  auto c = f.pool->Create(PageType::kHeap);
  EXPECT_FALSE(c.ok());
  // Releasing one pin makes room again.
  a->Release();
  auto d = f.pool->Create(PageType::kHeap);
  EXPECT_TRUE(d.ok());
}

TEST(BufferPoolTest, LruEvictsLeastRecentlyReleased) {
  PoolFixture f(2);
  auto a = f.pool->Create(PageType::kHeap);
  auto b = f.pool->Create(PageType::kHeap);
  ASSERT_TRUE(a.ok() && b.ok());
  const PageId id_a = a->id(), id_b = b->id();
  a->Release();  // a is now LRU
  b->Release();

  auto c = f.pool->Create(PageType::kHeap);  // evicts a
  ASSERT_TRUE(c.ok());
  const uint64_t hits_before = f.Counter("storage.pool.hits");
  auto again_b = f.pool->Fetch(id_b);  // still resident: hit
  ASSERT_TRUE(again_b.ok());
  EXPECT_EQ(f.Counter("storage.pool.hits"), hits_before + 1);
  again_b->Release();
  c->Release();
  const uint64_t misses_before = f.Counter("storage.pool.misses");
  auto again_a = f.pool->Fetch(id_a);  // was evicted: miss
  ASSERT_TRUE(again_a.ok());
  EXPECT_EQ(f.Counter("storage.pool.misses"), misses_before + 1);
}

TEST(BufferPoolTest, WalAheadRuleInvokedBeforeWriteBack) {
  std::vector<uint64_t> durable_calls;
  PoolFixture f(1, [&durable_calls](uint64_t lsn) {
    durable_calls.push_back(lsn);
    return Status::OK();
  });
  {
    auto a = f.pool->Create(PageType::kHeap);
    ASSERT_TRUE(a.ok());
    a->view().set_lsn(77);
    a->MarkDirty();
  }
  // Force eviction of the dirty page.
  auto b = f.pool->Create(PageType::kHeap);
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(durable_calls.size(), 1u);
  EXPECT_EQ(durable_calls[0], 77u);
}

TEST(BufferPoolTest, EnsureDurableFailureBlocksEviction) {
  PoolFixture f(1, [](uint64_t) { return Status::Internal("wal is sad"); });
  {
    auto a = f.pool->Create(PageType::kHeap);
    ASSERT_TRUE(a.ok());
    a->MarkDirty();
    a->view().set_lsn(1);
  }
  auto b = f.pool->Create(PageType::kHeap);
  EXPECT_FALSE(b.ok());
}

TEST(BufferPoolTest, FlushAllPersistsEverythingResident) {
  PoolFixture f(4);
  auto a = f.pool->Create(PageType::kHeap);
  ASSERT_TRUE(a.ok());
  a->view().set_count(9);
  a->MarkDirty();
  // Pinned pages are flushed too (checkpoint quiesces writers first).
  ASSERT_TRUE(f.pool->FlushAll().ok());
  EXPECT_GE(f.Counter("storage.pool.flushes"), 1u);

  char raw[kPageSize];
  ASSERT_TRUE(f.disk->ReadPage(a->id(), raw).ok());
  EXPECT_EQ(PageView(raw).count(), 9);
}

TEST(BufferPoolTest, MovedGuardKeepsPinAlive) {
  PoolFixture f(2);
  auto a = f.pool->Create(PageType::kHeap);
  ASSERT_TRUE(a.ok());
  PageGuard moved = std::move(*a);
  EXPECT_TRUE(moved.valid());
  EXPECT_FALSE(a->valid());
  moved.view().set_count(3);
  moved.MarkDirty();
  const PageId id = moved.id();
  moved.Release();
  auto again = f.pool->Fetch(id);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->view().count(), 3);
}

}  // namespace
}  // namespace mope::storage
