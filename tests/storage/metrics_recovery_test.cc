/// Storage metrics across a crash/recovery cycle. One MetricsRegistry is
/// shared across every engine generation — exactly how the daemon's registry
/// survives an in-process reopen — so the `storage.*` counters must be
/// monotone over crashes, and the fsync/miss-stall histograms must account
/// work done by recovery itself.

#include <gtest/gtest.h>

#include <string>

#include "obs/clock.h"
#include "obs/registry.h"
#include "storage/env.h"
#include "storage/storage_engine.h"
#include "storage/table_heap.h"

namespace mope::storage {
namespace {

StorageOptions TestOptions(Env* env, obs::MetricsRegistry* metrics,
                           obs::Clock* clock) {
  StorageOptions options;
  options.env = env;
  options.metrics = metrics;
  options.clock = clock;
  options.pool_frames = 8;
  options.wal_sync_every = 1;
  return options;
}

TEST(MetricsRecoveryTest, CountersAreMonotoneAcrossCrashAndRecovery) {
  InMemEnv env;
  obs::MetricsRegistry metrics;
  obs::ManualClock clock(0, /*auto_advance_ns=*/100);
  const StorageOptions options = TestOptions(&env, &metrics, &clock);

  {
    auto engine = StorageEngine::Open("/db", options);
    ASSERT_TRUE(engine.ok()) << engine.status();
    auto heap = TableHeap::Open((*engine)->pool(), (*engine)->logger(),
                                kInvalidPageId);
    ASSERT_TRUE(heap.ok());
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE((*heap)->Append("row " + std::to_string(i)).ok());
    }
  }
  const int64_t records_before =
      metrics.GetCounter("storage.wal.records")->Value();
  const int64_t syncs_before = metrics.GetCounter("storage.wal.syncs")->Value();
  const uint64_t fsyncs_before =
      metrics.GetHistogram("storage.wal.fsync_ns")->Count();
  EXPECT_GT(records_before, 0);
  EXPECT_GT(syncs_before, 0);
  // sync_every=1: every sync came through the timed path.
  EXPECT_EQ(fsyncs_before, static_cast<uint64_t>(syncs_before));
  EXPECT_EQ(metrics.GetCounter("storage.engine.recoveries")->Value(), 0);

  env.SimulateCrash();

  {
    auto engine = StorageEngine::Open("/db", options);
    ASSERT_TRUE(engine.ok()) << engine.status();
    EXPECT_TRUE((*engine)->crash_recovered());
    EXPECT_GT((*engine)->recovered_records(), 0u);

    // Recovery in the same registry: recovery counters advance, everything
    // else never moves backwards.
    EXPECT_EQ(metrics.GetCounter("storage.engine.recoveries")->Value(), 1);
    EXPECT_EQ(metrics.GetCounter("storage.engine.recovered_records")->Value(),
              static_cast<int64_t>((*engine)->recovered_records()));
    EXPECT_GE(metrics.GetCounter("storage.wal.records")->Value(),
              records_before);
    EXPECT_GE(metrics.GetCounter("storage.wal.syncs")->Value(), syncs_before);

    // New work keeps the same counters climbing.
    auto heap = TableHeap::Open((*engine)->pool(), (*engine)->logger(),
                                kInvalidPageId);
    ASSERT_TRUE(heap.ok());
    ASSERT_TRUE((*heap)->Append("post-recovery row").ok());
    EXPECT_GT(metrics.GetCounter("storage.wal.records")->Value(),
              records_before);
    EXPECT_GT(metrics.GetHistogram("storage.wal.fsync_ns")->Count(),
              fsyncs_before);
  }
}

TEST(MetricsRecoveryTest, SecondCrashIncrementsRecoveriesAgain) {
  InMemEnv env;
  obs::MetricsRegistry metrics;
  obs::ManualClock clock(0, 100);
  const StorageOptions options = TestOptions(&env, &metrics, &clock);

  for (int generation = 1; generation <= 3; ++generation) {
    {
      auto engine = StorageEngine::Open("/db", options);
      ASSERT_TRUE(engine.ok()) << engine.status();
      auto heap = TableHeap::Open((*engine)->pool(), (*engine)->logger(),
                                  kInvalidPageId);
      ASSERT_TRUE(heap.ok());
      ASSERT_TRUE((*heap)->Append("gen " + std::to_string(generation)).ok());
    }
    env.SimulateCrash();
  }
  auto engine = StorageEngine::Open("/db", options);
  ASSERT_TRUE(engine.ok());
  // Generations 2 and 3 and the final open each replayed a WAL; gen 1's
  // open saw a fresh directory.
  EXPECT_EQ(metrics.GetCounter("storage.engine.recoveries")->Value(), 3);
}

TEST(MetricsRecoveryTest, CheckpointCounterSurvivesCrash) {
  InMemEnv env;
  obs::MetricsRegistry metrics;
  obs::ManualClock clock(0, 100);
  const StorageOptions options = TestOptions(&env, &metrics, &clock);

  {
    auto engine = StorageEngine::Open("/db", options);
    ASSERT_TRUE(engine.ok());
    auto heap = TableHeap::Open((*engine)->pool(), (*engine)->logger(),
                                kInvalidPageId);
    ASSERT_TRUE(heap.ok());
    ASSERT_TRUE((*heap)->Append("durable").ok());
    ASSERT_TRUE((*engine)->Checkpoint("").ok());
    EXPECT_EQ(metrics.GetCounter("storage.engine.checkpoints")->Value(), 1);
  }
  env.SimulateCrash();
  auto engine = StorageEngine::Open("/db", options);
  ASSERT_TRUE(engine.ok());
  // The WAL was truncated by the checkpoint: a clean reopen, and the
  // process-lifetime checkpoint count is untouched.
  EXPECT_FALSE((*engine)->crash_recovered());
  EXPECT_EQ(metrics.GetCounter("storage.engine.checkpoints")->Value(), 1);
  EXPECT_EQ(metrics.GetCounter("storage.engine.recoveries")->Value(), 0);
}

TEST(MetricsRecoveryTest, MissStallHistogramObservesReadsWithManualClock) {
  InMemEnv env;
  obs::MetricsRegistry metrics;
  obs::ManualClock clock(0, 50);
  const StorageOptions options = TestOptions(&env, &metrics, &clock);

  PageId head = kInvalidPageId;
  {
    auto engine = StorageEngine::Open("/db", options);
    ASSERT_TRUE(engine.ok());
    auto heap = TableHeap::Open((*engine)->pool(), (*engine)->logger(),
                                kInvalidPageId);
    ASSERT_TRUE(heap.ok());
    head = (*heap)->head();
    ASSERT_TRUE((*heap)->Append("page payload").ok());
    ASSERT_TRUE((*engine)->Checkpoint("").ok());
  }
  const uint64_t stalls_before =
      metrics.GetHistogram("storage.pool.miss_stall_ns")->Count();

  // Clean reopen: the head page is read back through the pool on first
  // touch, which must land one timed miss-stall observation.
  auto engine = StorageEngine::Open("/db", options);
  ASSERT_TRUE(engine.ok());
  auto heap = TableHeap::Open((*engine)->pool(), (*engine)->logger(), head);
  ASSERT_TRUE(heap.ok());
  int rows = 0;
  ASSERT_TRUE((*heap)
                  ->Scan([&rows](RecordId, std::string_view) {
                    ++rows;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(rows, 1);
  EXPECT_GT(metrics.GetHistogram("storage.pool.miss_stall_ns")->Count(),
            stalls_before);
}

}  // namespace
}  // namespace mope::storage
