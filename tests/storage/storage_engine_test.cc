#include "storage/storage_engine.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/registry.h"
#include "storage/env.h"
#include "storage/page.h"
#include "storage/table_heap.h"

namespace mope::storage {
namespace {

StorageOptions TestOptions(Env* env, obs::MetricsRegistry* metrics,
                           uint64_t sync_every = 1) {
  StorageOptions options;
  options.env = env;
  options.metrics = metrics;
  options.pool_frames = 8;
  options.wal_sync_every = sync_every;
  return options;
}

std::string EncodeHead(PageId head) {
  std::string blob(8, '\0');
  StoreU64(blob.data(), head);
  return blob;
}

PageId DecodeHead(std::string_view blob) {
  EXPECT_EQ(blob.size(), 8u);
  return LoadU64(blob.data());
}

TEST(StorageEngineTest, FreshDirectoryOpensEmpty) {
  InMemEnv env;
  obs::MetricsRegistry metrics;
  auto engine = StorageEngine::Open("/db", TestOptions(&env, &metrics));
  ASSERT_TRUE(engine.ok()) << engine.status();
  EXPECT_FALSE((*engine)->crash_recovered());
  EXPECT_TRUE((*engine)->catalog_blob().empty());
  EXPECT_TRUE((*engine)->TakeCatalogRecords().empty());
}

TEST(StorageEngineTest, CrashRecoveryReplaysCommittedRecords) {
  InMemEnv env;
  obs::MetricsRegistry metrics;
  PageId head = kInvalidPageId;
  {
    auto engine = StorageEngine::Open("/db", TestOptions(&env, &metrics));
    ASSERT_TRUE(engine.ok());
    auto heap = TableHeap::Open((*engine)->pool(), (*engine)->logger(),
                                kInvalidPageId);
    ASSERT_TRUE(heap.ok());
    head = (*heap)->head();
    // The engine's DDL record referencing the head page.
    ASSERT_TRUE((*engine)
                    ->logger()
                    ->Log(WalRecordType::kCatalog, EncodeHead(head))
                    .ok());
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE((*heap)->Append("row " + std::to_string(i)).ok());
    }
    // sync_every=1: every record is committed. No flush, no checkpoint —
    // the page file may contain nothing at all.
  }
  env.SimulateCrash();

  obs::MetricsRegistry metrics2;
  auto engine = StorageEngine::Open("/db", TestOptions(&env, &metrics2));
  ASSERT_TRUE(engine.ok()) << engine.status();
  EXPECT_TRUE((*engine)->crash_recovered());
  EXPECT_GT((*engine)->recovered_records(), 0u);
  EXPECT_EQ(metrics2.GetCounter("storage.engine.recoveries")->Value(), 1u);

  auto catalog_records = (*engine)->TakeCatalogRecords();
  ASSERT_EQ(catalog_records.size(), 1u);
  EXPECT_EQ(DecodeHead(catalog_records[0].payload), head);

  auto heap = TableHeap::Open((*engine)->pool(), (*engine)->logger(), head);
  ASSERT_TRUE(heap.ok()) << heap.status();
  int count = 0;
  ASSERT_TRUE((*heap)
                  ->Scan([&count](RecordId, std::string_view bytes) {
                    EXPECT_EQ(bytes, "row " + std::to_string(count));
                    ++count;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(count, 50);
}

TEST(StorageEngineTest, CheckpointThenCrashIsCleanReopen) {
  InMemEnv env;
  obs::MetricsRegistry metrics;
  PageId head = kInvalidPageId;
  {
    auto engine = StorageEngine::Open("/db", TestOptions(&env, &metrics));
    ASSERT_TRUE(engine.ok());
    auto heap = TableHeap::Open((*engine)->pool(), (*engine)->logger(),
                                kInvalidPageId);
    ASSERT_TRUE(heap.ok());
    head = (*heap)->head();
    for (int i = 0; i < 30; ++i) {
      ASSERT_TRUE((*heap)->Append("checkpointed " + std::to_string(i)).ok());
    }
    ASSERT_TRUE((*engine)->Checkpoint(EncodeHead(head)).ok());
  }
  env.SimulateCrash();

  auto engine = StorageEngine::Open("/db", TestOptions(&env, &metrics));
  ASSERT_TRUE(engine.ok()) << engine.status();
  // Nothing to replay: the WAL was truncated at the checkpoint.
  EXPECT_FALSE((*engine)->crash_recovered());
  EXPECT_EQ(DecodeHead((*engine)->catalog_blob()), head);

  auto heap = TableHeap::Open((*engine)->pool(), (*engine)->logger(), head);
  ASSERT_TRUE(heap.ok());
  int count = 0;
  ASSERT_TRUE((*heap)
                  ->Scan([&count](RecordId, std::string_view) {
                    ++count;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(count, 30);
}

TEST(StorageEngineTest, WorkAfterCheckpointAlsoRecovers) {
  InMemEnv env;
  obs::MetricsRegistry metrics;
  PageId head = kInvalidPageId;
  {
    auto engine = StorageEngine::Open("/db", TestOptions(&env, &metrics));
    ASSERT_TRUE(engine.ok());
    auto heap = TableHeap::Open((*engine)->pool(), (*engine)->logger(),
                                kInvalidPageId);
    ASSERT_TRUE(heap.ok());
    head = (*heap)->head();
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE((*heap)->Append("before").ok());
    }
    ASSERT_TRUE((*engine)->Checkpoint(EncodeHead(head)).ok());
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE((*heap)->Append("after").ok());
    }
  }
  env.SimulateCrash();

  auto engine = StorageEngine::Open("/db", TestOptions(&env, &metrics));
  ASSERT_TRUE(engine.ok());
  EXPECT_TRUE((*engine)->crash_recovered());
  auto heap = TableHeap::Open((*engine)->pool(), (*engine)->logger(), head);
  ASSERT_TRUE(heap.ok());
  int before = 0, after = 0;
  ASSERT_TRUE((*heap)
                  ->Scan([&](RecordId, std::string_view bytes) {
                    (bytes == "before" ? before : after)++;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(before, 10);
  EXPECT_EQ(after, 10);
}

TEST(StorageEngineTest, RecoveryIsIdempotentAcrossRepeatedCrashes) {
  InMemEnv env;
  obs::MetricsRegistry metrics;
  PageId head = kInvalidPageId;
  {
    auto engine = StorageEngine::Open("/db", TestOptions(&env, &metrics));
    ASSERT_TRUE(engine.ok());
    auto heap = TableHeap::Open((*engine)->pool(), (*engine)->logger(),
                                kInvalidPageId);
    ASSERT_TRUE(heap.ok());
    head = (*heap)->head();
    for (int i = 0; i < 25; ++i) {
      ASSERT_TRUE((*heap)->Append("stable " + std::to_string(i)).ok());
    }
  }
  // Crash, recover, crash again without checkpointing, recover again: the
  // same records replay over already-recovered pages (LSN guard).
  for (int round = 0; round < 3; ++round) {
    env.SimulateCrash();
    auto engine = StorageEngine::Open("/db", TestOptions(&env, &metrics));
    ASSERT_TRUE(engine.ok()) << "round " << round << ": " << engine.status();
    auto heap = TableHeap::Open((*engine)->pool(), (*engine)->logger(), head);
    ASSERT_TRUE(heap.ok());
    int count = 0;
    ASSERT_TRUE((*heap)
                    ->Scan([&count](RecordId, std::string_view bytes) {
                      EXPECT_EQ(bytes, "stable " + std::to_string(count));
                      ++count;
                      return Status::OK();
                    })
                    .ok());
    EXPECT_EQ(count, 25) << "round " << round;
  }
}

/// The exhaustive harness: run a deterministic mixed workload (appends,
/// same-size updates, one mid-way checkpoint), kill the process after every
/// possible prefix, and require recovery to produce exactly that prefix's
/// state. With sync_every=1 each completed operation is committed, so the
/// recovered state must match the in-memory model byte for byte.
TEST(StorageEngineTest, CrashAtEveryPointRecoversExactPrefix) {
  constexpr int kSteps = 36;
  constexpr int kCheckpointAt = 18;

  for (int crash_at = 0; crash_at <= kSteps; ++crash_at) {
    InMemEnv env;
    obs::MetricsRegistry metrics;
    PageId head = kInvalidPageId;
    std::vector<std::string> expected;

    {
      auto engine = StorageEngine::Open("/db", TestOptions(&env, &metrics));
      ASSERT_TRUE(engine.ok());
      auto heap = TableHeap::Open((*engine)->pool(), (*engine)->logger(),
                                  kInvalidPageId);
      ASSERT_TRUE(heap.ok());
      head = (*heap)->head();
      ASSERT_TRUE((*engine)
                      ->logger()
                      ->Log(WalRecordType::kCatalog, EncodeHead(head))
                      .ok());
      std::vector<RecordId> rids;
      for (int i = 0; i < crash_at; ++i) {
        if (i == kCheckpointAt) {
          ASSERT_TRUE((*engine)->Checkpoint(EncodeHead(head)).ok());
        }
        if (i % 7 == 3 && !rids.empty()) {
          // Same-length in-place update (the rotation pattern). Large
          // enough records that the chain grows a few pages.
          const size_t victim = static_cast<size_t>(i) % rids.size();
          std::string updated(expected[victim].size(), 'U');
          ASSERT_TRUE((*heap)->Update(rids[victim], updated).ok());
          expected[victim] = updated;
        } else {
          std::string record(120 + i, static_cast<char>('a' + i % 26));
          auto rid = (*heap)->Append(record);
          ASSERT_TRUE(rid.ok());
          rids.push_back(*rid);
          expected.push_back(record);
        }
      }
    }
    env.SimulateCrash();

    auto engine = StorageEngine::Open("/db", TestOptions(&env, &metrics));
    ASSERT_TRUE(engine.ok()) << "crash_at=" << crash_at << ": "
                             << engine.status();
    // Head comes from the blob (post-checkpoint) or the replayed DDL
    // record (pre-checkpoint) — exactly how the engine layer finds it.
    PageId recovered_head = kInvalidPageId;
    if (!(*engine)->catalog_blob().empty()) {
      recovered_head = DecodeHead((*engine)->catalog_blob());
    } else {
      auto records = (*engine)->TakeCatalogRecords();
      ASSERT_FALSE(records.empty()) << "crash_at=" << crash_at;
      recovered_head = DecodeHead(records[0].payload);
    }
    ASSERT_EQ(recovered_head, head) << "crash_at=" << crash_at;

    auto heap =
        TableHeap::Open((*engine)->pool(), (*engine)->logger(), recovered_head);
    ASSERT_TRUE(heap.ok()) << "crash_at=" << crash_at;
    std::vector<std::string> recovered;
    ASSERT_TRUE((*heap)
                    ->Scan([&recovered](RecordId, std::string_view bytes) {
                      recovered.emplace_back(bytes);
                      return Status::OK();
                    })
                    .ok())
        << "crash_at=" << crash_at;
    EXPECT_EQ(recovered, expected) << "crash_at=" << crash_at;
  }
}

TEST(StorageEngineTest, MetaCorruptionIsDetected) {
  InMemEnv env;
  obs::MetricsRegistry metrics;
  {
    auto engine = StorageEngine::Open("/db", TestOptions(&env, &metrics));
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE((*engine)->Checkpoint("blob!").ok());
  }
  auto meta = env.ReadFile("/db/storage.meta");
  ASSERT_TRUE(meta.ok());
  std::string tampered = *meta;
  tampered[tampered.size() / 2] ^= 0x40;
  ASSERT_TRUE(env.WriteFileAtomic("/db/storage.meta", tampered).ok());
  auto engine = StorageEngine::Open("/db", TestOptions(&env, &metrics));
  EXPECT_FALSE(engine.ok());
}

}  // namespace
}  // namespace mope::storage
