/// EXPLAIN / EXPLAIN ANALYZE surface: the statement grammar, the cheap
/// prefix peek the session uses to arm tracing before parsing, and the
/// plan renderer's line format (indentation, estimates, actuals).

#include "sql/explain.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "engine/executor.h"
#include "engine/table.h"
#include "obs/clock.h"
#include "sql/parser.h"
#include "sql/planner.h"

namespace mope::sql {
namespace {

using engine::Catalog;
using engine::Column;
using engine::Row;
using engine::Schema;
using engine::ValueType;

TEST(ExplainParseTest, ExplainPrefixSetsFlag) {
  auto stmt = ParseStatement("EXPLAIN SELECT a FROM t WHERE a > 3");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_TRUE(stmt->explain);
  EXPECT_FALSE(stmt->analyze);
  EXPECT_EQ(stmt->select.from_table, "t");
}

TEST(ExplainParseTest, ExplainAnalyzeSetsBothFlags) {
  auto stmt = ParseStatement("explain analyze SELECT a FROM t WHERE a > 3");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_TRUE(stmt->explain);
  EXPECT_TRUE(stmt->analyze);
}

TEST(ExplainParseTest, PlainSelectHasNeitherFlag) {
  auto stmt = ParseStatement("SELECT a FROM t WHERE a > 3");
  ASSERT_TRUE(stmt.ok());
  EXPECT_FALSE(stmt->explain);
  EXPECT_FALSE(stmt->analyze);
}

TEST(ExplainParseTest, ExplainNeedsASelect) {
  EXPECT_FALSE(ParseStatement("EXPLAIN").ok());
  EXPECT_FALSE(ParseStatement("EXPLAIN ANALYZE").ok());
}

TEST(ExplainParseTest, IsExplainAnalyzePeek) {
  EXPECT_TRUE(IsExplainAnalyze("EXPLAIN ANALYZE SELECT 1 FROM t"));
  EXPECT_TRUE(IsExplainAnalyze("  explain  Analyze SELECT 1 FROM t"));
  EXPECT_FALSE(IsExplainAnalyze("EXPLAIN SELECT 1 FROM t"));
  EXPECT_FALSE(IsExplainAnalyze("SELECT 1 FROM t"));
  // The peek never throws on junk; it just answers "no".
  EXPECT_FALSE(IsExplainAnalyze(""));
  EXPECT_FALSE(IsExplainAnalyze("@@@"));
}

class ExplainRenderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto t = catalog_.CreateTable(
        "t", Schema({Column{"a", ValueType::kInt},
                     Column{"b", ValueType::kDouble}}));
    ASSERT_TRUE(t.ok());
    for (int64_t i = 0; i < 50; ++i) {
      ASSERT_TRUE((*t)->Insert({i, i * 0.5}).ok());
    }
  }

  PlannedQuery PlanOf(const std::string& sql) {
    auto stmt = ParseStatement(sql);
    EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
    Planner planner(&catalog_);
    auto plan = planner.Plan(std::move(stmt->select));
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    return std::move(*plan);
  }

  Catalog catalog_;
};

TEST_F(ExplainRenderTest, PlainExplainShowsTreeWithEstimates) {
  PlannedQuery plan =
      PlanOf("SELECT COUNT(*) FROM t WHERE a BETWEEN 10 AND 19");
  ExplainOptions options;
  auto lines = RenderPlanLines(plan.root.get(), options);
  ASSERT_GE(lines.size(), 3u);
  // Root renders unprefixed; each level below gets "-> " two spaces deeper.
  EXPECT_EQ(lines[0].rfind("Aggregate", 0), 0u) << lines[0];
  EXPECT_EQ(lines[1].rfind("-> Filter", 0), 0u) << lines[1];
  EXPECT_EQ(lines[2].rfind("  -> SeqScan", 0), 0u) << lines[2];
  // Every node carries the planner's cardinality estimate...
  for (const std::string& line : lines) {
    EXPECT_NE(line.find("(rows="), std::string::npos) << line;
    // ...and no actuals, because nothing executed.
    EXPECT_EQ(line.find("actual"), std::string::npos) << line;
  }
}

TEST_F(ExplainRenderTest, AnalyzeAppendsActuals) {
  PlannedQuery plan =
      PlanOf("SELECT COUNT(*) FROM t WHERE a BETWEEN 10 AND 19");
  obs::ManualClock clock(0, 3);
  engine::ProfileContext ctx;
  ctx.clock = &clock;
  plan.root->EnableProfiling(&ctx);
  ASSERT_TRUE(engine::Collect(plan.root.get()).ok());

  ExplainOptions options;
  options.analyze = true;
  auto lines = RenderPlanLines(plan.root.get(), options);
  ASSERT_GE(lines.size(), 3u);
  EXPECT_NE(lines[0].find("(actual rows=1 "), std::string::npos) << lines[0];
  EXPECT_NE(lines[1].find("(actual rows=10 "), std::string::npos) << lines[1];
  for (const std::string& line : lines) {
    EXPECT_NE(line.find("next_calls="), std::string::npos) << line;
    EXPECT_NE(line.find("ns="), std::string::npos) << line;
  }
}

TEST_F(ExplainRenderTest, PlanLinesToResultIsOneColumn) {
  SqlResult result = PlanLinesToResult({"alpha", "beta"});
  ASSERT_EQ(result.columns.size(), 1u);
  EXPECT_EQ(result.columns[0], "QUERY PLAN");
  ASSERT_EQ(result.rows.size(), 2u);
  EXPECT_EQ(std::get<std::string>(result.rows[0][0]), "alpha");
  EXPECT_EQ(std::get<std::string>(result.rows[1][0]), "beta");
}

}  // namespace
}  // namespace mope::sql
