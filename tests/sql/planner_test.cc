#include "sql/planner.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "sql/binder.h"
#include "sql/parser.h"

namespace mope::sql {
namespace {

using engine::Catalog;
using engine::Column;
using engine::Row;
using engine::Schema;
using engine::ValueType;

/// Catalog with "items"(v int indexed, w int, price double) holding
/// v = i % 50, w = i, price = i / 10 for i in 0..499.
Catalog MakeCatalog() {
  Catalog catalog;
  auto table = catalog.CreateTable(
      "items", Schema({Column{"v", ValueType::kInt},
                       Column{"w", ValueType::kInt},
                       Column{"price", ValueType::kDouble}}));
  EXPECT_TRUE(table.ok());
  for (int64_t i = 0; i < 500; ++i) {
    EXPECT_TRUE(
        (*table)->Insert({i % 50, i, static_cast<double>(i) / 10.0}).ok());
  }
  EXPECT_TRUE((*table)->CreateIndex("v").ok());
  return catalog;
}

PlannedQuery PlanSql(Catalog* catalog, const std::string& sql) {
  auto stmt = Parse(sql);
  EXPECT_TRUE(stmt.ok()) << stmt.status();
  Planner planner(catalog);
  auto plan = planner.Plan(std::move(stmt).value());
  EXPECT_TRUE(plan.ok()) << plan.status();
  return std::move(plan).value();
}

TEST(PlannerTest, SelectStarSeqScan) {
  Catalog catalog = MakeCatalog();
  auto result = ExecuteSql(&catalog, "SELECT * FROM items");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 500u);
  EXPECT_EQ(result->columns, (std::vector<std::string>{"v", "w", "price"}));
}

TEST(PlannerTest, RangePredicateUsesIndex) {
  Catalog catalog = MakeCatalog();
  PlannedQuery plan =
      PlanSql(&catalog, "SELECT * FROM items WHERE v BETWEEN 10 AND 14");
  EXPECT_TRUE(plan.used_index);
  EXPECT_EQ(plan.index_column, "v");
  auto rows = engine::Collect(plan.root.get());
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 50u);  // 5 values x 10 rows each
}

TEST(PlannerTest, DisjunctionOfRangesUsesOneSweep) {
  Catalog catalog = MakeCatalog();
  PlannedQuery plan = PlanSql(
      &catalog,
      "SELECT * FROM items WHERE v BETWEEN 0 AND 4 OR v BETWEEN 40 AND 44 "
      "OR v = 25");
  EXPECT_TRUE(plan.used_index);
  auto rows = engine::Collect(plan.root.get());
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 110u);  // (5 + 5 + 1) * 10
}

TEST(PlannerTest, MixedColumnDisjunctionFallsBackToSeqScan) {
  Catalog catalog = MakeCatalog();
  PlannedQuery plan = PlanSql(
      &catalog, "SELECT * FROM items WHERE v = 1 OR w = 2");
  EXPECT_FALSE(plan.used_index);
  auto rows = engine::Collect(plan.root.get());
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 11u);  // 10 rows with v=1, 1 extra row with w=2
}

TEST(PlannerTest, ConjunctRangeIsExtractedAndResidualApplied) {
  Catalog catalog = MakeCatalog();
  PlannedQuery plan = PlanSql(
      &catalog,
      "SELECT * FROM items WHERE v BETWEEN 10 AND 19 AND price < 20.0");
  EXPECT_TRUE(plan.used_index);
  auto rows = engine::Collect(plan.root.get());
  ASSERT_TRUE(rows.ok());
  // v in [10,19] gives 100 rows; price < 20 keeps w < 200: rows with
  // w in {10..19, 60..69, 110..119, 160..169} -> 40 rows.
  EXPECT_EQ(rows->size(), 40u);
}

TEST(PlannerTest, IndexAndSeqScanAgree) {
  Catalog catalog = MakeCatalog();
  // Same predicate on indexed and unindexed columns over identical data:
  // force seq scan via the unindexed column w and compare counts.
  auto indexed =
      ExecuteSql(&catalog, "SELECT COUNT(*) FROM items WHERE v >= 45");
  auto full = ExecuteSql(
      &catalog, "SELECT COUNT(*) FROM items WHERE v >= 45 AND w >= 0");
  ASSERT_TRUE(indexed.ok() && full.ok());
  EXPECT_EQ(std::get<int64_t>(indexed->rows[0][0]),
            std::get<int64_t>(full->rows[0][0]));
}

TEST(PlannerTest, ComparisonOperatorsAsRanges) {
  Catalog catalog = MakeCatalog();
  struct Case {
    const char* sql;
    size_t expected;
  } cases[] = {
      {"SELECT COUNT(*) FROM items WHERE v < 5", 50},
      {"SELECT COUNT(*) FROM items WHERE v <= 5", 60},
      {"SELECT COUNT(*) FROM items WHERE v > 44", 50},
      {"SELECT COUNT(*) FROM items WHERE v >= 44", 60},
      {"SELECT COUNT(*) FROM items WHERE v = 7", 10},
      {"SELECT COUNT(*) FROM items WHERE 5 > v", 50},  // literal on the left
  };
  for (const auto& c : cases) {
    auto result = ExecuteSql(&catalog, c.sql);
    ASSERT_TRUE(result.ok()) << c.sql;
    EXPECT_EQ(std::get<int64_t>(result->rows[0][0]),
              static_cast<int64_t>(c.expected))
        << c.sql;
  }
}

TEST(PlannerTest, ScalarAggregates) {
  Catalog catalog = MakeCatalog();
  auto result = ExecuteSql(
      &catalog,
      "SELECT COUNT(*), SUM(v), AVG(price), MIN(w), MAX(w) FROM items");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 1u);
  const Row& r = result->rows[0];
  EXPECT_EQ(std::get<int64_t>(r[0]), 500);
  EXPECT_DOUBLE_EQ(std::get<double>(r[1]), 10.0 * (49.0 * 50.0 / 2.0));
  EXPECT_DOUBLE_EQ(std::get<double>(r[3]), 0.0);
  EXPECT_DOUBLE_EQ(std::get<double>(r[4]), 499.0);
}

TEST(PlannerTest, GroupByAggregates) {
  Catalog catalog = MakeCatalog();
  auto result = ExecuteSql(
      &catalog, "SELECT COUNT(*) FROM items WHERE v < 3 GROUP BY v");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 3u);
  for (const Row& r : result->rows) {
    EXPECT_EQ(std::get<int64_t>(r[1]), 10);
  }
  EXPECT_EQ(result->columns[0], "v");
}

TEST(PlannerTest, ProjectionWithExpressions) {
  Catalog catalog = MakeCatalog();
  auto result = ExecuteSql(
      &catalog, "SELECT v * 2 AS dbl, price FROM items WHERE w = 7");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(std::get<int64_t>(result->rows[0][0]), 14);
  EXPECT_EQ(result->columns[0], "dbl");
}

TEST(PlannerTest, JoinWithAggregate) {
  Catalog catalog = MakeCatalog();
  auto dim = catalog.CreateTable(
      "dim", Schema({Column{"k", ValueType::kInt},
                     Column{"weight", ValueType::kDouble}}));
  ASSERT_TRUE(dim.ok());
  for (int64_t k = 0; k < 50; ++k) {
    ASSERT_TRUE((*dim)->Insert({k, k % 2 == 0 ? 1.0 : 0.0}).ok());
  }
  auto result = ExecuteSql(
      &catalog,
      "SELECT SUM(weight) FROM items JOIN dim ON v = k WHERE w < 100");
  ASSERT_TRUE(result.ok());
  // w < 100 -> 100 rows, v = w % 50 covers each v twice; weight 1 for even
  // v: 50 even-v rows -> sum 50.
  EXPECT_DOUBLE_EQ(std::get<double>(result->rows[0][0]), 50.0);
}

TEST(PlannerTest, UnknownTableFails) {
  Catalog catalog = MakeCatalog();
  EXPECT_TRUE(ExecuteSql(&catalog, "SELECT * FROM nope").status().IsNotFound());
}

TEST(PlannerTest, UnknownColumnFails) {
  Catalog catalog = MakeCatalog();
  EXPECT_FALSE(ExecuteSql(&catalog, "SELECT zz FROM items").ok());
}

TEST(PlannerTest, MixedAggregateAndPlainRejected) {
  Catalog catalog = MakeCatalog();
  EXPECT_TRUE(ExecuteSql(&catalog, "SELECT v, COUNT(*) FROM items")
                  .status()
                  .IsNotSupported());
}

TEST(PlannerTest, NegativeBoundsClampToEmptyOrZero) {
  Catalog catalog = MakeCatalog();
  auto lt = ExecuteSql(&catalog, "SELECT COUNT(*) FROM items WHERE v < -1");
  ASSERT_TRUE(lt.ok());
  EXPECT_EQ(std::get<int64_t>(lt->rows[0][0]), 0);
  auto ge = ExecuteSql(&catalog, "SELECT COUNT(*) FROM items WHERE v >= -5");
  ASSERT_TRUE(ge.ok());
  EXPECT_EQ(std::get<int64_t>(ge->rows[0][0]), 500);
}


TEST(PlannerTest, OrderByAndLimit) {
  Catalog catalog = MakeCatalog();
  auto result = ExecuteSql(
      &catalog, "SELECT w FROM items WHERE v = 3 ORDER BY w DESC LIMIT 3");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->rows.size(), 3u);
  EXPECT_EQ(std::get<int64_t>(result->rows[0][0]), 453);
  EXPECT_EQ(std::get<int64_t>(result->rows[1][0]), 403);
  EXPECT_EQ(std::get<int64_t>(result->rows[2][0]), 353);
}

TEST(PlannerTest, OrderByAlias) {
  Catalog catalog = MakeCatalog();
  auto result = ExecuteSql(
      &catalog,
      "SELECT w * 2 AS dbl FROM items WHERE v = 0 ORDER BY dbl ASC LIMIT 2");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->rows.size(), 2u);
  EXPECT_EQ(std::get<int64_t>(result->rows[0][0]), 0);
  EXPECT_EQ(std::get<int64_t>(result->rows[1][0]), 100);
}

TEST(PlannerTest, OrderByGroupedAggregate) {
  Catalog catalog = MakeCatalog();
  auto result = ExecuteSql(
      &catalog,
      "SELECT SUM(w) AS total FROM items WHERE v < 5 GROUP BY v "
      "ORDER BY total DESC LIMIT 1");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->rows.size(), 1u);
  // v = 4 has w in {4, 54, ..., 454}: the largest group sum.
  EXPECT_EQ(std::get<int64_t>(result->rows[0][0]), 4);
}

TEST(PlannerTest, OrderByUnknownColumnFails) {
  Catalog catalog = MakeCatalog();
  EXPECT_TRUE(ExecuteSql(&catalog, "SELECT v FROM items ORDER BY nope")
                  .status()
                  .IsNotFound());
}

TEST(PlannerTest, LimitWithoutOrderBy) {
  Catalog catalog = MakeCatalog();
  auto result = ExecuteSql(&catalog, "SELECT * FROM items LIMIT 5");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 5u);
}


// ---------------------------------------------------------------------------
// Randomized differential test: arbitrary WHERE trees must produce the same
// row count through the full parse/plan/execute pipeline as direct predicate
// evaluation over every row.

std::string RandomPredicate(mope::Rng* rng, int depth) {
  const char* columns[] = {"v", "w"};
  auto leaf = [&]() -> std::string {
    const char* col = columns[rng->UniformUint64(2)];
    const int64_t a = rng->UniformInt64(-20, 520);
    switch (rng->UniformUint64(6)) {
      case 0: return std::string(col) + " < " + std::to_string(a);
      case 1: return std::string(col) + " <= " + std::to_string(a);
      case 2: return std::string(col) + " > " + std::to_string(a);
      case 3: return std::string(col) + " >= " + std::to_string(a);
      case 4: return std::string(col) + " = " + std::to_string(a);
      default: {
        const int64_t b = a + static_cast<int64_t>(rng->UniformUint64(60));
        return std::string(col) + " BETWEEN " + std::to_string(a) + " AND " +
               std::to_string(b);
      }
    }
  };
  if (depth == 0 || rng->Bernoulli(0.35)) return leaf();
  const std::string lhs = RandomPredicate(rng, depth - 1);
  const std::string rhs = RandomPredicate(rng, depth - 1);
  const char* op = rng->Bernoulli(0.5) ? " AND " : " OR ";
  std::string out = "(" + lhs + op + rhs + ")";
  if (rng->Bernoulli(0.15)) out = "NOT " + out;
  return out;
}

TEST(PlannerFuzzTest, RandomWhereTreesMatchDirectEvaluation) {
  Catalog catalog = MakeCatalog();
  auto table = catalog.GetTable("items");
  ASSERT_TRUE(table.ok());
  mope::Rng rng(0xF022);
  for (int trial = 0; trial < 150; ++trial) {
    const std::string predicate = RandomPredicate(&rng, 3);
    const std::string sql =
        "SELECT COUNT(*) FROM items WHERE " + predicate;
    auto result = ExecuteSql(&catalog, sql);
    ASSERT_TRUE(result.ok()) << sql << " -> " << result.status();

    // Reference: bind the parsed predicate and evaluate it per row.
    auto stmt = Parse(sql);
    ASSERT_TRUE(stmt.ok());
    const RowLayout layout = RowLayout::ForTable(**table);
    ASSERT_TRUE(BindExpr(stmt->where.get(), layout).ok());
    int64_t expected = 0;
    for (engine::RowId r = 0; r < (*table)->row_count(); ++r) {
      auto pass = EvalPredicate(*stmt->where, (*table)->row(r));
      ASSERT_TRUE(pass.ok());
      if (pass.value()) ++expected;
    }
    EXPECT_EQ(std::get<int64_t>(result->rows[0][0]), expected) << sql;
  }
}


TEST(PlannerTest, InListUsesIndexAsMultiRange) {
  Catalog catalog = MakeCatalog();
  PlannedQuery plan = PlanSql(
      &catalog, "SELECT * FROM items WHERE v IN (1, 5, 9, 5)");
  EXPECT_TRUE(plan.used_index);
  auto rows = engine::Collect(plan.root.get());
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 30u);  // 3 distinct values x 10 rows
}

TEST(PlannerTest, NotInViaNegation) {
  Catalog catalog = MakeCatalog();
  auto result = ExecuteSql(
      &catalog, "SELECT COUNT(*) FROM items WHERE NOT v IN (0, 1)");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(std::get<int64_t>(result->rows[0][0]), 480);
}

}  // namespace
}  // namespace mope::sql
