#include "sql/lexer.h"

#include <gtest/gtest.h>

namespace mope::sql {
namespace {

TEST(LexerTest, KeywordsAreCaseInsensitive) {
  auto tokens = Tokenize("select FROM WhErE");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 4u);  // 3 + end
  EXPECT_EQ((*tokens)[0].type, TokenType::kKeyword);
  EXPECT_EQ((*tokens)[0].text, "SELECT");
  EXPECT_EQ((*tokens)[2].text, "WHERE");
}

TEST(LexerTest, IdentifiersKeepCase) {
  auto tokens = Tokenize("LineItem l_shipdate");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kIdentifier);
  EXPECT_EQ((*tokens)[0].text, "LineItem");
  EXPECT_EQ((*tokens)[1].text, "l_shipdate");
}

TEST(LexerTest, IntegerLiterals) {
  auto tokens = Tokenize("42 0 123456789");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kIntLiteral);
  EXPECT_EQ((*tokens)[0].int_val, 42);
  EXPECT_EQ((*tokens)[2].int_val, 123456789);
}

TEST(LexerTest, DoubleLiterals) {
  auto tokens = Tokenize("3.14 0.05");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kDoubleLiteral);
  EXPECT_DOUBLE_EQ((*tokens)[0].double_val, 3.14);
  EXPECT_DOUBLE_EQ((*tokens)[1].double_val, 0.05);
}

TEST(LexerTest, StringLiterals) {
  auto tokens = Tokenize("'hello world' ''");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kStringLiteral);
  EXPECT_EQ((*tokens)[0].text, "hello world");
  EXPECT_EQ((*tokens)[1].text, "");
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_TRUE(Tokenize("'oops").status().IsParseError());
}

TEST(LexerTest, TwoCharacterOperators) {
  auto tokens = Tokenize("<= >= <> !=");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "<=");
  EXPECT_EQ((*tokens)[1].text, ">=");
  EXPECT_EQ((*tokens)[2].text, "<>");
  EXPECT_EQ((*tokens)[3].text, "<>");  // != normalizes
}

TEST(LexerTest, SingleCharacterSymbols) {
  auto tokens = Tokenize("( ) , * . + - / = < >");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens->size(), 12u);
  for (size_t i = 0; i + 1 < tokens->size(); ++i) {
    EXPECT_EQ((*tokens)[i].type, TokenType::kSymbol);
  }
}

TEST(LexerTest, UnexpectedCharacterFails) {
  EXPECT_TRUE(Tokenize("SELECT # FROM t").status().IsParseError());
}

TEST(LexerTest, PositionsAreByteOffsets) {
  auto tokens = Tokenize("a  bb");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].position, 0u);
  EXPECT_EQ((*tokens)[1].position, 3u);
}

TEST(LexerTest, EndTokenAlwaysPresent) {
  auto tokens = Tokenize("");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 1u);
  EXPECT_EQ((*tokens)[0].type, TokenType::kEnd);
}

TEST(LexerTest, AggregateNamesAreKeywords) {
  auto tokens = Tokenize("SUM COUNT AVG MIN MAX");
  ASSERT_TRUE(tokens.ok());
  for (size_t i = 0; i + 1 < tokens->size(); ++i) {
    EXPECT_EQ((*tokens)[i].type, TokenType::kKeyword) << i;
  }
}

}  // namespace
}  // namespace mope::sql
