#include "sql/parser.h"

#include <gtest/gtest.h>

namespace mope::sql {
namespace {

TEST(ParserTest, SelectStar) {
  auto stmt = Parse("SELECT * FROM t");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_TRUE(stmt->select_star);
  EXPECT_EQ(stmt->from_table, "t");
  EXPECT_EQ(stmt->where, nullptr);
}

TEST(ParserTest, SelectColumns) {
  auto stmt = Parse("SELECT a, b FROM t");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ(stmt->items.size(), 2u);
  EXPECT_EQ(stmt->items[0].expr->column, "a");
  EXPECT_EQ(stmt->items[1].expr->column, "b");
}

TEST(ParserTest, WhereComparison) {
  auto stmt = Parse("SELECT * FROM t WHERE x >= 10");
  ASSERT_TRUE(stmt.ok());
  ASSERT_NE(stmt->where, nullptr);
  EXPECT_EQ(stmt->where->kind, ExprKind::kBinary);
  EXPECT_EQ(stmt->where->bin_op, BinaryOp::kGe);
}

TEST(ParserTest, WhereBetween) {
  auto stmt = Parse("SELECT * FROM t WHERE x BETWEEN 5 AND 9");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->where->kind, ExprKind::kBetween);
  EXPECT_EQ(stmt->where->children[1]->int_val, 5);
  EXPECT_EQ(stmt->where->children[2]->int_val, 9);
}

TEST(ParserTest, AndOrPrecedence) {
  // a OR b AND c parses as a OR (b AND c).
  auto stmt = Parse("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->where->bin_op, BinaryOp::kOr);
  EXPECT_EQ(stmt->where->children[1]->bin_op, BinaryOp::kAnd);
}

TEST(ParserTest, ArithmeticPrecedence) {
  // 1 + 2 * 3 parses as 1 + (2 * 3).
  auto stmt = Parse("SELECT 1 + 2 * 3 FROM t");
  ASSERT_TRUE(stmt.ok());
  const Expr& e = *stmt->items[0].expr;
  EXPECT_EQ(e.bin_op, BinaryOp::kAdd);
  EXPECT_EQ(e.children[1]->bin_op, BinaryOp::kMul);
}

TEST(ParserTest, ParenthesesOverridePrecedence) {
  auto stmt = Parse("SELECT (1 + 2) * 3 FROM t");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->items[0].expr->bin_op, BinaryOp::kMul);
}

TEST(ParserTest, Aggregates) {
  auto stmt = Parse(
      "SELECT SUM(price * qty) AS total, COUNT(*), AVG(qty) FROM sales");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ(stmt->items.size(), 3u);
  EXPECT_EQ(stmt->items[0].agg, AggFunc::kSum);
  EXPECT_EQ(stmt->items[0].alias, "total");
  EXPECT_TRUE(stmt->items[1].count_star);
  EXPECT_EQ(stmt->items[2].agg, AggFunc::kAvg);
}

TEST(ParserTest, Join) {
  auto stmt =
      Parse("SELECT * FROM lineitem JOIN part ON l_partkey = p_partkey");
  ASSERT_TRUE(stmt.ok());
  ASSERT_TRUE(stmt->join.has_value());
  EXPECT_EQ(stmt->join->table, "part");
  EXPECT_EQ(stmt->join->left_key->column, "l_partkey");
  EXPECT_EQ(stmt->join->right_key->column, "p_partkey");
}

TEST(ParserTest, GroupBy) {
  auto stmt = Parse("SELECT COUNT(*) FROM t GROUP BY flag");
  ASSERT_TRUE(stmt.ok());
  ASSERT_TRUE(stmt->group_by.has_value());
  EXPECT_EQ(*stmt->group_by, "flag");
}

TEST(ParserTest, QualifiedColumnNames) {
  auto stmt = Parse("SELECT t.x FROM t WHERE t.y < 3");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->items[0].expr->table, "t");
  EXPECT_EQ(stmt->items[0].expr->column, "x");
}

TEST(ParserTest, UnaryMinusAndNot) {
  auto stmt = Parse("SELECT * FROM t WHERE NOT x < -5");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->where->kind, ExprKind::kUnary);
  EXPECT_EQ(stmt->where->un_op, UnaryOp::kNot);
}

TEST(ParserTest, ErrorsCarryOffsets) {
  auto stmt = Parse("SELECT FROM t");
  ASSERT_FALSE(stmt.ok());
  EXPECT_TRUE(stmt.status().IsParseError());
  EXPECT_NE(stmt.status().message().find("offset"), std::string::npos);
}

TEST(ParserTest, RejectsTrailingGarbage) {
  EXPECT_FALSE(Parse("SELECT * FROM t extra").ok());
}

TEST(ParserTest, RejectsMissingFrom) {
  EXPECT_FALSE(Parse("SELECT *").ok());
}

TEST(ParserTest, RejectsEmptyInput) {
  EXPECT_FALSE(Parse("").ok());
}

TEST(ParserTest, ExprToStringRoundTripsStructure) {
  auto stmt = Parse("SELECT * FROM t WHERE a BETWEEN 1 AND 2 OR b = 'x'");
  ASSERT_TRUE(stmt.ok());
  const std::string rendered = stmt->where->ToString();
  EXPECT_NE(rendered.find("BETWEEN"), std::string::npos);
  EXPECT_NE(rendered.find("'x'"), std::string::npos);
}

TEST(ParserTest, CloneExprDeepCopies) {
  auto stmt = Parse("SELECT * FROM t WHERE a + 1 < 5");
  ASSERT_TRUE(stmt.ok());
  ExprPtr clone = CloneExpr(*stmt->where);
  EXPECT_EQ(clone->ToString(), stmt->where->ToString());
  EXPECT_NE(clone.get(), stmt->where.get());
  EXPECT_NE(clone->children[0].get(), stmt->where->children[0].get());
}


TEST(ParserTest, InListDesugarsToOrOfEqualities) {
  auto stmt = Parse("SELECT * FROM t WHERE x IN (1, 2, 3)");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  // ((x = 1 OR x = 2) OR x = 3)
  EXPECT_EQ(stmt->where->bin_op, BinaryOp::kOr);
  EXPECT_EQ(stmt->where->children[1]->bin_op, BinaryOp::kEq);
  EXPECT_EQ(stmt->where->children[1]->children[1]->int_val, 3);
}

TEST(ParserTest, InListSingleElement) {
  auto stmt = Parse("SELECT * FROM t WHERE x IN (7)");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->where->bin_op, BinaryOp::kEq);
}

TEST(ParserTest, InListSyntaxErrors) {
  EXPECT_FALSE(Parse("SELECT * FROM t WHERE x IN ()").ok());
  EXPECT_FALSE(Parse("SELECT * FROM t WHERE x IN (1, 2").ok());
  EXPECT_FALSE(Parse("SELECT * FROM t WHERE x IN 1").ok());
}

}  // namespace
}  // namespace mope::sql
