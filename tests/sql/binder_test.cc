#include "sql/binder.h"

#include <gtest/gtest.h>

#include "sql/parser.h"

namespace mope::sql {
namespace {

using engine::Column;
using engine::Row;
using engine::Schema;
using engine::Table;
using engine::Value;
using engine::ValueType;

Table MakeTable() {
  return Table("t", Schema({Column{"a", ValueType::kInt},
                            Column{"b", ValueType::kDouble},
                            Column{"s", ValueType::kString}}));
}

ExprPtr ParseExprVia(const std::string& text) {
  auto stmt = Parse("SELECT * FROM t WHERE " + text);
  EXPECT_TRUE(stmt.ok()) << stmt.status();
  return std::move(stmt->where);
}

TEST(RowLayoutTest, ResolveByNameAndQualifier) {
  Table t = MakeTable();
  const RowLayout layout = RowLayout::ForTable(t);
  EXPECT_EQ(layout.Resolve("", "a").value(), 0u);
  EXPECT_EQ(layout.Resolve("t", "b").value(), 1u);
  EXPECT_TRUE(layout.Resolve("", "zz").status().IsNotFound());
  EXPECT_TRUE(layout.Resolve("u", "a").status().IsNotFound());
}

TEST(RowLayoutTest, ConcatAndAmbiguity) {
  Table l("l", Schema({Column{"k", ValueType::kInt}}));
  Table r("r", Schema({Column{"k", ValueType::kInt}}));
  const RowLayout joined =
      RowLayout::Concat(RowLayout::ForTable(l), RowLayout::ForTable(r));
  EXPECT_TRUE(joined.Resolve("", "k").status().IsInvalidArgument());
  EXPECT_EQ(joined.Resolve("l", "k").value(), 0u);
  EXPECT_EQ(joined.Resolve("r", "k").value(), 1u);
}

TEST(BinderTest, BindsColumnIndexes) {
  Table t = MakeTable();
  const RowLayout layout = RowLayout::ForTable(t);
  ExprPtr e = ParseExprVia("a + b > 1");
  ASSERT_TRUE(BindExpr(e.get(), layout).ok());
  EXPECT_EQ(e->children[0]->children[0]->bound_index, 0u);
  EXPECT_EQ(e->children[0]->children[1]->bound_index, 1u);
}

TEST(BinderTest, UnknownColumnFails) {
  Table t = MakeTable();
  ExprPtr e = ParseExprVia("zz = 1");
  EXPECT_TRUE(BindExpr(e.get(), RowLayout::ForTable(t)).IsNotFound());
}

class EvalTest : public ::testing::Test {
 protected:
  Value Eval(const std::string& text) {
    Table t = MakeTable();
    ExprPtr e = ParseExprVia(text);
    EXPECT_TRUE(BindExpr(e.get(), RowLayout::ForTable(t)).ok());
    auto v = EvalExpr(*e, row_);
    EXPECT_TRUE(v.ok()) << v.status();
    return v.ok() ? v.value() : Value{int64_t{-999}};
  }

  bool Pred(const std::string& text) {
    Table t = MakeTable();
    ExprPtr e = ParseExprVia(text);
    EXPECT_TRUE(BindExpr(e.get(), RowLayout::ForTable(t)).ok());
    auto v = EvalPredicate(*e, row_);
    EXPECT_TRUE(v.ok()) << v.status();
    return v.ok() && v.value();
  }

  Row row_{int64_t{6}, 2.5, std::string("abc")};  // a=6, b=2.5, s="abc"
};

TEST_F(EvalTest, IntArithmeticStaysInt) {
  EXPECT_EQ(std::get<int64_t>(Eval("a + 2 < 100")), 1);
  EXPECT_EQ(std::get<int64_t>(Eval("a * 3 = 18")), 1);
}

TEST_F(EvalTest, MixedArithmeticPromotes) {
  const Value v = Eval("a + b = 8.5");
  EXPECT_EQ(std::get<int64_t>(v), 1);
}

TEST_F(EvalTest, DivisionAlwaysDouble) {
  Table t = MakeTable();
  ExprPtr e = ParseExprVia("a / 4 = 1.5");
  ASSERT_TRUE(BindExpr(e.get(), RowLayout::ForTable(t)).ok());
  auto v = EvalExpr(*e, row_);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(std::get<int64_t>(v.value()), 1);
}

TEST_F(EvalTest, DivisionByZeroFails) {
  Table t = MakeTable();
  ExprPtr e = ParseExprVia("a / 0 > 1");
  ASSERT_TRUE(BindExpr(e.get(), RowLayout::ForTable(t)).ok());
  EXPECT_FALSE(EvalExpr(*e, row_).ok());
}

TEST_F(EvalTest, Comparisons) {
  EXPECT_TRUE(Pred("a = 6"));
  EXPECT_TRUE(Pred("a <> 7"));
  EXPECT_TRUE(Pred("a < 7"));
  EXPECT_TRUE(Pred("a <= 6"));
  EXPECT_TRUE(Pred("a > 5"));
  EXPECT_TRUE(Pred("a >= 6"));
  EXPECT_FALSE(Pred("a > 6"));
}

TEST_F(EvalTest, StringComparisons) {
  EXPECT_TRUE(Pred("s = 'abc'"));
  EXPECT_TRUE(Pred("s < 'abd'"));
  EXPECT_FALSE(Pred("s <> 'abc'"));
}

TEST_F(EvalTest, MixedStringNumberComparisonFails) {
  Table t = MakeTable();
  ExprPtr e = ParseExprVia("s = 1");
  ASSERT_TRUE(BindExpr(e.get(), RowLayout::ForTable(t)).ok());
  EXPECT_FALSE(EvalExpr(*e, row_).ok());
}

TEST_F(EvalTest, Between) {
  EXPECT_TRUE(Pred("a BETWEEN 6 AND 6"));
  EXPECT_TRUE(Pred("a BETWEEN 0 AND 10"));
  EXPECT_FALSE(Pred("a BETWEEN 7 AND 10"));
  EXPECT_TRUE(Pred("b BETWEEN 2.0 AND 3.0"));
}

TEST_F(EvalTest, LogicalOperators) {
  EXPECT_TRUE(Pred("a = 6 AND b > 2"));
  EXPECT_FALSE(Pred("a = 6 AND b > 3"));
  EXPECT_TRUE(Pred("a = 0 OR b > 2"));
  EXPECT_TRUE(Pred("NOT a = 7"));
}

TEST_F(EvalTest, ShortCircuitPreventsRhsErrors) {
  // RHS would divide by zero; AND must short-circuit on false LHS.
  EXPECT_FALSE(Pred("a = 7 AND a / 0 > 1"));
  EXPECT_TRUE(Pred("a = 6 OR a / 0 > 1"));
}

TEST_F(EvalTest, UnaryNegation) {
  EXPECT_TRUE(Pred("-a = -6"));
  EXPECT_TRUE(Pred("-b < 0"));
}

TEST_F(EvalTest, EvalNumericOnStringFails) {
  Table t = MakeTable();
  auto stmt = Parse("SELECT s FROM t");
  ASSERT_TRUE(stmt.ok());
  ExprPtr e = std::move(stmt->items[0].expr);
  ASSERT_TRUE(BindExpr(e.get(), RowLayout::ForTable(t)).ok());
  EXPECT_FALSE(EvalNumeric(*e, row_).ok());
}

}  // namespace
}  // namespace mope::sql
