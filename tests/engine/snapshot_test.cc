#include "engine/snapshot.h"

#include <gtest/gtest.h>

#include <cstdio>

namespace mope::engine {
namespace {

Catalog MakeCatalog() {
  Catalog catalog;
  auto items = catalog.CreateTable(
      "items", Schema({Column{"k", ValueType::kInt},
                       Column{"price", ValueType::kDouble},
                       Column{"label", ValueType::kString}}));
  EXPECT_TRUE(items.ok());
  for (int64_t i = 0; i < 200; ++i) {
    EXPECT_TRUE((*items)
                    ->Insert({i % 37, static_cast<double>(i) * 0.5,
                              "row " + std::to_string(i)})
                    .ok());
  }
  EXPECT_TRUE((*items)->CreateIndex("k").ok());
  auto empty = catalog.CreateTable(
      "empty", Schema({Column{"x", ValueType::kInt}}));
  EXPECT_TRUE(empty.ok());
  return catalog;
}

TEST(SnapshotTest, RoundTripPreservesEverything) {
  const Catalog original = MakeCatalog();
  auto bytes = SerializeCatalog(original);
  ASSERT_TRUE(bytes.ok()) << bytes.status();
  auto restored = DeserializeCatalog(bytes.value());
  ASSERT_TRUE(restored.ok()) << restored.status();

  EXPECT_EQ(restored->TableNames(), original.TableNames());
  auto orig_items = original.GetTable("items");
  auto rest_items = restored->GetTable("items");
  ASSERT_TRUE(orig_items.ok() && rest_items.ok());
  ASSERT_EQ((*rest_items)->row_count(), (*orig_items)->row_count());
  for (RowId r = 0; r < (*orig_items)->row_count(); ++r) {
    EXPECT_EQ((*rest_items)->row(r), (*orig_items)->row(r)) << r;
  }
  // Index rebuilt and usable.
  EXPECT_TRUE((*rest_items)->HasIndex("k"));
  auto index = (*rest_items)->GetIndex("k");
  ASSERT_TRUE(index.ok());
  EXPECT_EQ((*index)->CountRange(5, 5), (*(*orig_items)->GetIndex("k"))->CountRange(5, 5));
  EXPECT_TRUE((*index)->CheckInvariants().ok());
  // Empty table survives.
  EXPECT_EQ((*restored->GetTable("empty"))->row_count(), 0u);
}

TEST(SnapshotTest, RejectsBadMagic) {
  EXPECT_TRUE(DeserializeCatalog("NOTASNAP....").status().IsCorruption());
  EXPECT_TRUE(DeserializeCatalog("").status().IsCorruption());
}

TEST(SnapshotTest, RejectsTruncation) {
  auto bytes = SerializeCatalog(MakeCatalog());
  ASSERT_TRUE(bytes.ok());
  for (size_t cut : {bytes->size() - 1, bytes->size() / 2, size_t{9}}) {
    EXPECT_TRUE(DeserializeCatalog(bytes->substr(0, cut))
                    .status()
                    .IsCorruption())
        << cut;
  }
}

TEST(SnapshotTest, RejectsTrailingGarbage) {
  auto bytes = SerializeCatalog(MakeCatalog());
  ASSERT_TRUE(bytes.ok());
  EXPECT_TRUE(
      DeserializeCatalog(*bytes + "extra").status().IsCorruption());
}

TEST(SnapshotTest, SaveIsAtomicUnderWriteFailure) {
  storage::InMemEnv base;
  storage::FaultyEnv env(&base);
  const Catalog original = MakeCatalog();
  ASSERT_TRUE(SaveCatalog(original, "/snap", &env).ok());

  // Every subsequent write fails (torn, even): the failed save must leave
  // the previous snapshot byte-for-byte intact — never a prefix.
  Catalog bigger = MakeCatalog();
  ASSERT_TRUE((*bigger.GetTable("items"))->Insert({1, 2.0, "extra"}).ok());
  storage::FaultyEnv::Faults faults;
  faults.fail_after_writes = 0;
  faults.torn = true;
  env.set_faults(faults);
  EXPECT_FALSE(SaveCatalog(bigger, "/snap", &env).ok());

  faults = storage::FaultyEnv::Faults{};
  env.set_faults(faults);
  auto restored = LoadCatalog("/snap", &env);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ((*restored->GetTable("items"))->row_count(), 200u);
}

TEST(SnapshotTest, SaveSurvivesCrashWhole) {
  storage::InMemEnv env;
  ASSERT_TRUE(SaveCatalog(MakeCatalog(), "/snap", &env).ok());
  // kill -9 right after the save returns: the rename already happened and
  // was made durable by SaveCatalog itself, not a later sync.
  env.SimulateCrash();
  auto restored = LoadCatalog("/snap", &env);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ((*restored->GetTable("items"))->row_count(), 200u);
}

TEST(SnapshotTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/mope_snapshot_test.bin";
  ASSERT_TRUE(SaveCatalog(MakeCatalog(), path).ok());
  auto restored = LoadCatalog(path);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ((*restored->GetTable("items"))->row_count(), 200u);
  std::remove(path.c_str());
  EXPECT_TRUE(LoadCatalog(path).status().IsNotFound());
}

}  // namespace
}  // namespace mope::engine
