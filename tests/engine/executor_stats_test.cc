/// EXPLAIN ANALYZE's measurement layer: the OpStats block every operator
/// fills when profiling is on, the off-path guarantee (no stats traffic at
/// all), per-sweep B+-tree node attribution for multi-range index scans,
/// and the fold into per-operator-type registry histograms.

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "engine/executor.h"
#include "engine/table.h"
#include "obs/clock.h"
#include "obs/registry.h"

namespace mope::engine {
namespace {

std::unique_ptr<Table> NumbersTable(int64_t n) {
  auto t = std::make_unique<Table>(
      "numbers", Schema({Column{"v", ValueType::kInt},
                         Column{"d", ValueType::kDouble}}));
  for (int64_t i = 0; i < n; ++i) {
    EXPECT_TRUE(t->Insert({i, static_cast<double>(i) / 2.0}).ok());
  }
  EXPECT_TRUE(t->CreateIndex("v").ok());
  return t;
}

TEST(OpStatsTest, UnprofiledExecutionLeavesStatsZero) {
  auto t = NumbersTable(20);
  SeqScanOp scan(t.get());
  ASSERT_TRUE(Collect(&scan).ok());
  // Profiling off: the hook is a single branch, so nothing accumulates —
  // not even the free counters (rows_out / next_calls).
  EXPECT_EQ(scan.stats().rows_out, 0u);
  EXPECT_EQ(scan.stats().next_calls, 0u);
  EXPECT_EQ(scan.stats().open_ns, 0u);
  EXPECT_EQ(scan.stats().next_ns, 0u);
}

TEST(OpStatsTest, ProfiledScanCountsRowsCallsAndTime) {
  auto t = NumbersTable(10);
  SeqScanOp scan(t.get());
  obs::ManualClock clock(/*start_ns=*/0, /*auto_advance_ns=*/5);
  ProfileContext ctx;
  ctx.clock = &clock;
  scan.EnableProfiling(&ctx);
  auto rows = Collect(&scan);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 10u);
  EXPECT_EQ(scan.stats().rows_out, 10u);
  // One Next() per row plus the final exhausted call.
  EXPECT_EQ(scan.stats().next_calls, 11u);
  // The auto-advancing clock ticks 5ns per read, so each timed interval
  // (two reads) measures exactly 5ns.
  EXPECT_EQ(scan.stats().open_ns, 5u);
  EXPECT_EQ(scan.stats().next_ns, 11u * 5u);
}

TEST(OpStatsTest, TimingsAreInclusiveOfChildren) {
  auto t = NumbersTable(10);
  auto scan = std::make_unique<SeqScanOp>(t.get());
  FilterOp filter(std::move(scan), [](const Row& row) -> Result<bool> {
    return std::get<int64_t>(row[0]) % 2 == 0;
  });
  obs::ManualClock clock(0, 5);
  ProfileContext ctx;
  ctx.clock = &clock;
  filter.EnableProfiling(&ctx);
  auto rows = Collect(&filter);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 5u);

  const OpStats& parent = filter.stats();
  const OpStats& child = filter.children()[0]->stats();
  EXPECT_EQ(parent.rows_out, 5u);
  EXPECT_EQ(child.rows_out, 10u);
  // PostgreSQL-style inclusive accounting: the filter's time covers the
  // scan's time (every child clock read happened inside a parent interval).
  EXPECT_GE(parent.open_ns + parent.next_ns, child.open_ns + child.next_ns);
}

TEST(OpStatsTest, EnableProfilingRecursesAndReExecutionResets) {
  auto t = NumbersTable(8);
  auto scan = std::make_unique<SeqScanOp>(t.get());
  FilterOp filter(std::move(scan), [](const Row&) -> Result<bool> {
    return true;
  });
  obs::ManualClock clock(0, 1);
  ProfileContext ctx;
  ctx.clock = &clock;
  filter.EnableProfiling(&ctx);
  ASSERT_TRUE(Collect(&filter).ok());
  EXPECT_EQ(filter.children()[0]->stats().rows_out, 8u);  // recursed

  // A second profiled run reports that run, not the sum of both.
  ASSERT_TRUE(Collect(&filter).ok());
  EXPECT_EQ(filter.stats().rows_out, 8u);
  EXPECT_EQ(filter.stats().next_calls, 9u);
}

TEST(OpStatsTest, IndexScanAttributesEntriesAndNodes) {
  auto t = NumbersTable(200);
  IndexRangeScanOp scan(t.get(), *t->GetIndex("v"), {{10, 29}});
  obs::ManualClock clock(0, 1);
  ProfileContext ctx;
  ctx.clock = &clock;
  scan.EnableProfiling(&ctx);
  ASSERT_TRUE(Collect(&scan).ok());
  EXPECT_EQ(scan.stats().rows_out, 20u);
  EXPECT_EQ(scan.stats().entries_visited, 20u);
  EXPECT_GT(scan.stats().nodes_visited, 0u);
  EXPECT_EQ(scan.stats().entries_visited, scan.entries_visited());
  EXPECT_EQ(scan.stats().nodes_visited, scan.nodes_visited());
}

TEST(OpStatsTest, EverySweepOfAMultiRangeScanIsAttributed) {
  auto t = NumbersTable(500);
  // Three disjoint segments: three sweeps, each with its own node count.
  IndexRangeScanOp scan(t.get(), *t->GetIndex("v"),
                        {{0, 9}, {200, 249}, {400, 499}});
  ASSERT_TRUE(Collect(&scan).ok());
  ASSERT_EQ(scan.segments_scanned(), 3u);
  const std::vector<uint64_t>& per_sweep = scan.nodes_per_sweep();
  ASSERT_EQ(per_sweep.size(), 3u);
  uint64_t sum = 0;
  for (uint64_t n : per_sweep) {
    EXPECT_GT(n, 0u) << "a sweep contributed no nodes";
    sum += n;
  }
  // The total is the sum over sweeps — not just the first range's nodes.
  EXPECT_EQ(sum, scan.nodes_visited());
  // The 100-key sweep must touch more leaves than the 10-key sweep.
  EXPECT_GT(per_sweep[2], per_sweep[0]);
}

TEST(OpStatsTest, StorageCounterDeltasAttachWhenProvided) {
  auto t = NumbersTable(10);
  SeqScanOp scan(t.get());
  obs::ManualClock clock(0, 1);
  obs::MetricsRegistry registry;
  obs::Counter* misses = registry.GetCounter("storage.pool.misses");
  misses->Increment(7);  // pre-existing activity must not be attributed
  ProfileContext ctx;
  ctx.clock = &clock;
  ctx.pool_misses = misses;
  scan.EnableProfiling(&ctx);
  ASSERT_TRUE(Collect(&scan).ok());
  // The in-memory table causes no misses: the delta is zero, not seven.
  EXPECT_EQ(scan.stats().pool_misses, 0u);
}

TEST(FoldOpStatsTest, ProfiledTreeFoldsIntoPerTypeHistograms) {
  auto t = NumbersTable(10);
  auto scan = std::make_unique<SeqScanOp>(t.get());
  FilterOp filter(std::move(scan), [](const Row&) -> Result<bool> {
    return true;
  });
  obs::ManualClock clock(0, 1);
  ProfileContext ctx;
  ctx.clock = &clock;
  filter.EnableProfiling(&ctx);
  ASSERT_TRUE(Collect(&filter).ok());

  obs::MetricsRegistry registry;
  FoldOpStatsIntoRegistry(&filter, &registry);
  EXPECT_EQ(registry.GetHistogram("executor.op.Filter.ns")->Count(), 1u);
  EXPECT_EQ(registry.GetHistogram("executor.op.Filter.rows")->Count(), 1u);
  EXPECT_EQ(registry.GetHistogram("executor.op.SeqScan.ns")->Count(), 1u);
}

TEST(FoldOpStatsTest, UnprofiledTreeFoldsNothing) {
  auto t = NumbersTable(10);
  SeqScanOp scan(t.get());
  ASSERT_TRUE(Collect(&scan).ok());
  obs::MetricsRegistry registry;
  FoldOpStatsIntoRegistry(&scan, &registry);
  // All-zero stats are skipped so unprofiled runs can't skew distributions.
  EXPECT_EQ(registry.GetHistogram("executor.op.SeqScan.ns")->Count(), 0u);
}

}  // namespace
}  // namespace mope::engine
