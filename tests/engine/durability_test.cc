#include "engine/durability.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "engine/server.h"
#include "engine/snapshot.h"
#include "engine/table.h"
#include "obs/registry.h"
#include "storage/env.h"

namespace mope::engine {
namespace {

DurableCatalog::Options TestOptions(storage::Env* env,
                                    obs::MetricsRegistry* metrics) {
  DurableCatalog::Options options;
  options.env = env;
  options.metrics = metrics;
  options.pool_frames = 16;
  options.wal_sync_every = 1;  // every mutation commits before returning
  return options;
}

Schema ItemsSchema() {
  return Schema({Column{"c", ValueType::kInt},
                 Column{"label", ValueType::kString}});
}

Status FillItems(Table* table, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    MOPE_RETURN_NOT_OK(
        table->Insert({i * 11 % 257, "item " + std::to_string(i)}).status());
  }
  return Status::OK();
}

void ExpectItemsEqual(const Catalog& catalog, int64_t n) {
  auto table = catalog.GetTable("items");
  ASSERT_TRUE(table.ok()) << table.status();
  ASSERT_EQ((*table)->row_count(), static_cast<uint64_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    const Row& row = (*table)->row(static_cast<RowId>(i));
    EXPECT_EQ(row[0], Value(i * 11 % 257)) << i;
    EXPECT_EQ(row[1], Value("item " + std::to_string(i))) << i;
  }
}

TEST(DurableCatalogTest, CrashRecoveryRestoresRowsAndIndexes) {
  storage::InMemEnv env;
  obs::MetricsRegistry metrics;
  {
    Catalog catalog;
    auto durable = DurableCatalog::Open("/db", &catalog,
                                        TestOptions(&env, &metrics));
    ASSERT_TRUE(durable.ok()) << durable.status();
    EXPECT_FALSE((*durable)->recovered_from_crash());
    auto table = catalog.CreateTable("items", ItemsSchema());
    ASSERT_TRUE(table.ok());
    ASSERT_TRUE(FillItems(*table, 300).ok());
    ASSERT_TRUE((*table)->CreateIndex("c").ok());
    // No checkpoint, no clean shutdown: kill -9.
  }
  env.SimulateCrash();

  Catalog recovered;
  auto durable = DurableCatalog::Open("/db", &recovered,
                                      TestOptions(&env, &metrics));
  ASSERT_TRUE(durable.ok()) << durable.status();
  EXPECT_TRUE((*durable)->recovered_from_crash());
  ExpectItemsEqual(recovered, 300);

  auto table = recovered.GetTable("items");
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE((*table)->HasIndex("c"));
  auto index = (*table)->GetIndex("c");
  ASSERT_TRUE(index.ok());
  EXPECT_TRUE((*index)->CheckInvariants().ok());
  // The index answers queries over the recovered rows.
  EXPECT_EQ((*index)->CountRange(0, 256), 300u);
}

TEST(DurableCatalogTest, MutationsAfterRecoveryKeepWorking) {
  storage::InMemEnv env;
  obs::MetricsRegistry metrics;
  {
    Catalog catalog;
    auto durable = DurableCatalog::Open("/db", &catalog,
                                        TestOptions(&env, &metrics));
    ASSERT_TRUE(durable.ok());
    auto table = catalog.CreateTable("items", ItemsSchema());
    ASSERT_TRUE(table.ok());
    ASSERT_TRUE(FillItems(*table, 50).ok());
  }
  env.SimulateCrash();
  {
    Catalog catalog;
    auto durable = DurableCatalog::Open("/db", &catalog,
                                        TestOptions(&env, &metrics));
    ASSERT_TRUE(durable.ok());
    auto table = catalog.GetTable("items");
    ASSERT_TRUE(table.ok());
    // Keep writing through the re-installed hooks, then crash again.
    for (int64_t i = 50; i < 80; ++i) {
      ASSERT_TRUE(
          (*table)->Insert({i * 11 % 257, "item " + std::to_string(i)}).ok());
    }
  }
  env.SimulateCrash();
  Catalog final_catalog;
  auto durable = DurableCatalog::Open("/db", &final_catalog,
                                      TestOptions(&env, &metrics));
  ASSERT_TRUE(durable.ok()) << durable.status();
  ExpectItemsEqual(final_catalog, 80);
}

TEST(DurableCatalogTest, CheckpointMakesReopenClean) {
  storage::InMemEnv env;
  obs::MetricsRegistry metrics;
  {
    Catalog catalog;
    auto durable = DurableCatalog::Open("/db", &catalog,
                                        TestOptions(&env, &metrics));
    ASSERT_TRUE(durable.ok());
    auto table = catalog.CreateTable("items", ItemsSchema());
    ASSERT_TRUE(table.ok());
    ASSERT_TRUE(FillItems(*table, 200).ok());
    ASSERT_TRUE((*table)->CreateIndex("c").ok());
    ASSERT_TRUE((*durable)->Checkpoint().ok());
  }
  env.SimulateCrash();

  Catalog recovered;
  auto durable = DurableCatalog::Open("/db", &recovered,
                                      TestOptions(&env, &metrics));
  ASSERT_TRUE(durable.ok()) << durable.status();
  // Clean reopen: nothing replayed, paged indexes reopened from their
  // checkpointed roots rather than rebuilt.
  EXPECT_FALSE((*durable)->recovered_from_crash());
  ExpectItemsEqual(recovered, 200);
  auto table = recovered.GetTable("items");
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE((*table)->HasIndex("c"));
  EXPECT_EQ((*(*table)->GetIndex("c"))->CountRange(0, 256), 200u);
}

TEST(DurableCatalogTest, UpdateValueSurvivesCrash) {
  storage::InMemEnv env;
  obs::MetricsRegistry metrics;
  {
    Catalog catalog;
    auto durable = DurableCatalog::Open("/db", &catalog,
                                        TestOptions(&env, &metrics));
    ASSERT_TRUE(durable.ok());
    auto table = catalog.CreateTable("items", ItemsSchema());
    ASSERT_TRUE(table.ok());
    ASSERT_TRUE(FillItems(*table, 20).ok());
    ASSERT_TRUE((*table)->CreateIndex("c").ok());
    // The key-rotation pattern: rewrite a ciphertext in place.
    ASSERT_TRUE((*table)->UpdateValue(7, 0, Value(int64_t{9999})).ok());
  }
  env.SimulateCrash();

  Catalog recovered;
  auto durable = DurableCatalog::Open("/db", &recovered,
                                      TestOptions(&env, &metrics));
  ASSERT_TRUE(durable.ok()) << durable.status();
  auto table = recovered.GetTable("items");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->row(7)[0], Value(int64_t{9999}));
  auto index = (*table)->GetIndex("c");
  ASSERT_TRUE(index.ok());
  EXPECT_EQ((*index)->CountRange(9999, 9999), 1u);
}

TEST(DurableCatalogTest, DropTableSurvivesCrash) {
  storage::InMemEnv env;
  obs::MetricsRegistry metrics;
  {
    Catalog catalog;
    auto durable = DurableCatalog::Open("/db", &catalog,
                                        TestOptions(&env, &metrics));
    ASSERT_TRUE(durable.ok());
    auto keep = catalog.CreateTable("keep", ItemsSchema());
    auto drop = catalog.CreateTable("doomed", ItemsSchema());
    ASSERT_TRUE(keep.ok() && drop.ok());
    ASSERT_TRUE(FillItems(*keep, 10).ok());
    ASSERT_TRUE(FillItems(*drop, 10).ok());
    ASSERT_TRUE(catalog.DropTable("doomed").ok());
  }
  env.SimulateCrash();
  Catalog recovered;
  auto durable = DurableCatalog::Open("/db", &recovered,
                                      TestOptions(&env, &metrics));
  ASSERT_TRUE(durable.ok()) << durable.status();
  EXPECT_TRUE(recovered.GetTable("keep").ok());
  EXPECT_TRUE(recovered.GetTable("doomed").status().IsNotFound());
}

TEST(DurableCatalogTest, OpenRequiresEmptyCatalog) {
  storage::InMemEnv env;
  obs::MetricsRegistry metrics;
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateTable("preexisting", ItemsSchema()).ok());
  auto durable =
      DurableCatalog::Open("/db", &catalog, TestOptions(&env, &metrics));
  EXPECT_FALSE(durable.ok());
}

TEST(DurableCatalogTest, StorageMetricsLandInProvidedRegistry) {
  storage::InMemEnv env;
  obs::MetricsRegistry metrics;
  Catalog catalog;
  auto durable =
      DurableCatalog::Open("/db", &catalog, TestOptions(&env, &metrics));
  ASSERT_TRUE(durable.ok());
  auto table = catalog.CreateTable("items", ItemsSchema());
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(FillItems(*table, 100).ok());
  EXPECT_GT(metrics.GetCounter("storage.wal.records")->Value(), 0u);
  EXPECT_GT(metrics.GetCounter("storage.wal.bytes")->Value(), 0u);
}

TEST(DbServerStorageTest, OpenStorageRecoversServedData) {
  storage::InMemEnv env;
  {
    DbServer server;
    EXPECT_FALSE(server.has_storage());
    DurableCatalog::Options options;
    options.env = &env;
    options.wal_sync_every = 1;
    ASSERT_TRUE(server.OpenStorage("/db", options).ok());
    EXPECT_TRUE(server.has_storage());
    auto table = server.catalog()->CreateTable("items", ItemsSchema());
    ASSERT_TRUE(table.ok());
    ASSERT_TRUE(FillItems(*table, 40).ok());
    ASSERT_TRUE((*table)->CreateIndex("c").ok());
    ASSERT_TRUE(server.SyncStorage().ok());
    // Double-attach is rejected.
    EXPECT_FALSE(server.OpenStorage("/db", options).ok());
  }
  env.SimulateCrash();

  DbServer server;
  DurableCatalog::Options options;
  options.env = &env;
  ASSERT_TRUE(server.OpenStorage("/db", options).ok());
  ASSERT_TRUE(server.durable_catalog() != nullptr);
  EXPECT_TRUE(server.durable_catalog()->recovered_from_crash());
  ExpectItemsEqual(*server.catalog(), 40);
  // The recovered server answers range queries over the rebuilt index.
  auto rows = server.ExecuteRangeBatch(
      "items", "c", {ModularInterval(0, 257, 1024)});
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_EQ(rows->size(), 40u);
  ASSERT_TRUE(server.CheckpointStorage().ok());
}

TEST(DbServerStorageTest, StorageCallsWithoutAttachFail) {
  DbServer server;
  EXPECT_TRUE(server.CheckpointStorage().IsInvalidArgument());
  EXPECT_TRUE(server.SyncStorage().IsInvalidArgument());
  EXPECT_EQ(server.durable_catalog(), nullptr);
}

TEST(DurableCatalogTest, ImportCatalogFlowsThroughHooks) {
  // The --data-dir bootstrap path: a snapshot-loaded catalog replayed into
  // a storage-backed one must be durable.
  Catalog source;
  auto src_table = source.CreateTable("items", ItemsSchema());
  ASSERT_TRUE(src_table.ok());
  ASSERT_TRUE(FillItems(*src_table, 60).ok());
  ASSERT_TRUE((*src_table)->CreateIndex("c").ok());

  storage::InMemEnv env;
  obs::MetricsRegistry metrics;
  {
    Catalog catalog;
    auto durable = DurableCatalog::Open("/db", &catalog,
                                        TestOptions(&env, &metrics));
    ASSERT_TRUE(durable.ok());
    ASSERT_TRUE(ImportCatalog(source, &catalog).ok());
  }
  env.SimulateCrash();

  Catalog recovered;
  auto durable = DurableCatalog::Open("/db", &recovered,
                                      TestOptions(&env, &metrics));
  ASSERT_TRUE(durable.ok()) << durable.status();
  ExpectItemsEqual(recovered, 60);
  EXPECT_TRUE((*recovered.GetTable("items"))->HasIndex("c"));
}

}  // namespace
}  // namespace mope::engine
