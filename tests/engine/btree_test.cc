#include "engine/btree.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "common/random.h"

namespace mope::engine {
namespace {

std::vector<std::pair<uint64_t, uint64_t>> ScanAll(const BPlusTree& t) {
  std::vector<std::pair<uint64_t, uint64_t>> out;
  t.ScanRange(0, ~uint64_t{0}, [&out](uint64_t k, uint64_t v) {
    out.emplace_back(k, v);
  });
  return out;
}

TEST(BPlusTreeTest, EmptyTree) {
  BPlusTree t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.height(), 1);
  EXPECT_EQ(t.CountRange(0, 100), 0u);
  EXPECT_TRUE(t.CheckInvariants().ok());
}

TEST(BPlusTreeTest, InsertAndScanSorted) {
  BPlusTree t;
  t.Insert(5, 50);
  t.Insert(1, 10);
  t.Insert(9, 90);
  t.Insert(3, 30);
  const auto all = ScanAll(t);
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[0], (std::pair<uint64_t, uint64_t>{1, 10}));
  EXPECT_EQ(all[3], (std::pair<uint64_t, uint64_t>{9, 90}));
  EXPECT_TRUE(t.CheckInvariants().ok());
}

TEST(BPlusTreeTest, RangeScanBoundsAreInclusive) {
  BPlusTree t;
  for (uint64_t k = 0; k < 20; ++k) t.Insert(k, k);
  EXPECT_EQ(t.CountRange(5, 10), 6u);
  EXPECT_EQ(t.CountRange(5, 5), 1u);
  EXPECT_EQ(t.CountRange(19, 19), 1u);
  EXPECT_EQ(t.CountRange(20, 100), 0u);
  EXPECT_EQ(t.CountRange(7, 3), 0u);  // inverted
}

TEST(BPlusTreeTest, DuplicateKeysAllKept) {
  BPlusTree t;
  for (uint64_t rid = 0; rid < 300; ++rid) t.Insert(7, rid);
  EXPECT_EQ(t.size(), 300u);
  EXPECT_EQ(t.CountRange(7, 7), 300u);
  EXPECT_EQ(t.CountRange(6, 6), 0u);
  EXPECT_TRUE(t.CheckInvariants().ok()) << t.CheckInvariants();
}

TEST(BPlusTreeTest, SplitsIncreaseHeight) {
  BPlusTree t;
  for (uint64_t k = 0; k < 10000; ++k) t.Insert(k, k);
  EXPECT_GT(t.height(), 1);
  EXPECT_EQ(t.size(), 10000u);
  EXPECT_TRUE(t.CheckInvariants().ok()) << t.CheckInvariants();
  EXPECT_EQ(t.CountRange(2500, 7499), 5000u);
}

TEST(BPlusTreeTest, ReverseInsertionOrder) {
  BPlusTree t;
  for (uint64_t k = 5000; k-- > 0;) t.Insert(k, k);
  EXPECT_TRUE(t.CheckInvariants().ok()) << t.CheckInvariants();
  const auto all = ScanAll(t);
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_LE(all[i - 1].first, all[i].first);
  }
}

TEST(BPlusTreeTest, EraseExistingEntry) {
  BPlusTree t;
  t.Insert(5, 1);
  t.Insert(5, 2);
  EXPECT_TRUE(t.Erase(5, 1));
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.CountRange(5, 5), 1u);
  EXPECT_FALSE(t.Erase(5, 1));  // already gone
  EXPECT_TRUE(t.Erase(5, 2));
  EXPECT_TRUE(t.empty());
}

TEST(BPlusTreeTest, EraseMissingReturnsFalse) {
  BPlusTree t;
  t.Insert(3, 3);
  EXPECT_FALSE(t.Erase(4, 4));
  EXPECT_FALSE(t.Erase(3, 4));
  EXPECT_EQ(t.size(), 1u);
}

TEST(BPlusTreeTest, MassEraseShrinksHeight) {
  BPlusTree t;
  for (uint64_t k = 0; k < 20000; ++k) t.Insert(k, k);
  const int full_height = t.height();
  for (uint64_t k = 0; k < 19990; ++k) {
    ASSERT_TRUE(t.Erase(k, k));
  }
  EXPECT_EQ(t.size(), 10u);
  EXPECT_LT(t.height(), full_height);
  EXPECT_TRUE(t.CheckInvariants().ok()) << t.CheckInvariants();
  EXPECT_EQ(t.CountRange(0, ~uint64_t{0}), 10u);
}

TEST(BPlusTreeTest, RandomizedOpsMatchReferenceModel) {
  // (key, row_id) pairs are unique in an index (a row is indexed once), so
  // the model skips duplicate inserts.
  BPlusTree t;
  std::set<std::pair<uint64_t, uint64_t>> model;
  Rng rng(0xDB);
  for (int op = 0; op < 30000; ++op) {
    const uint64_t key = rng.UniformUint64(500);
    const uint64_t rid = rng.UniformUint64(40);
    if (rng.Bernoulli(0.6) || model.empty()) {
      if (model.contains({key, rid})) continue;
      t.Insert(key, rid);
      model.emplace(key, rid);
    } else {
      const bool expected = model.find({key, rid}) != model.end();
      EXPECT_EQ(t.Erase(key, rid), expected);
      if (expected) model.erase(model.find({key, rid}));
    }
    if (op % 5000 == 4999) {
      ASSERT_TRUE(t.CheckInvariants().ok()) << t.CheckInvariants();
      ASSERT_EQ(t.size(), model.size());
    }
  }
  // Final: every range query agrees with the model.
  for (int trial = 0; trial < 200; ++trial) {
    uint64_t lo = rng.UniformUint64(500);
    uint64_t hi = rng.UniformUint64(500);
    if (lo > hi) std::swap(lo, hi);
    size_t expected = 0;
    for (const auto& [k, v] : model) {
      if (k >= lo && k <= hi) ++expected;
    }
    EXPECT_EQ(t.CountRange(lo, hi), expected) << lo << ".." << hi;
  }
}

TEST(BPlusTreeTest, ScanVisitsInOrderWithDuplicates) {
  BPlusTree t;
  Rng rng(0xEE);
  for (int i = 0; i < 5000; ++i) {
    t.Insert(rng.UniformUint64(100), rng.UniformUint64(1000));
  }
  uint64_t prev_key = 0;
  bool first = true;
  t.ScanRange(0, ~uint64_t{0}, [&](uint64_t k, uint64_t) {
    if (!first) EXPECT_GE(k, prev_key);
    prev_key = k;
    first = false;
  });
}

TEST(BPlusTreeTest, MoveConstructionTransfersOwnership) {
  BPlusTree a;
  for (uint64_t k = 0; k < 1000; ++k) a.Insert(k, k);
  BPlusTree b(std::move(a));
  EXPECT_EQ(b.size(), 1000u);
  EXPECT_TRUE(b.CheckInvariants().ok());
  EXPECT_EQ(a.size(), 0u);  // NOLINT(bugprone-use-after-move): documented reset
  EXPECT_TRUE(a.CheckInvariants().ok());
}

TEST(BPlusTreeTest, ScanRangeReturnsVisitCount) {
  BPlusTree t;
  for (uint64_t k = 0; k < 100; ++k) t.Insert(k, k);
  const size_t visited = t.ScanRange(10, 19, [](uint64_t, uint64_t) {});
  EXPECT_EQ(visited, 10u);
}

TEST(BPlusTreeTest, MaxKeyBoundary) {
  BPlusTree t;
  t.Insert(~uint64_t{0}, 1);
  t.Insert(0, 2);
  EXPECT_EQ(t.CountRange(0, ~uint64_t{0}), 2u);
  EXPECT_EQ(t.CountRange(~uint64_t{0}, ~uint64_t{0}), 1u);
}

}  // namespace
}  // namespace mope::engine
