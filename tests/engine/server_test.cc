#include "engine/server.h"

#include <gtest/gtest.h>

namespace mope::engine {
namespace {

/// A server with one table "data"(key int, tag string), keys 0..99, indexed.
DbServer MakeServer() {
  DbServer server;
  auto table = server.catalog()->CreateTable(
      "data", Schema({Column{"key", ValueType::kInt},
                      Column{"tag", ValueType::kString}}));
  EXPECT_TRUE(table.ok());
  for (int64_t k = 0; k < 100; ++k) {
    EXPECT_TRUE((*table)->Insert({k, std::string("row")}).ok());
  }
  EXPECT_TRUE((*table)->CreateIndex("key").ok());
  return server;
}

TEST(DbServerTest, SimpleRangeBatch) {
  DbServer server = MakeServer();
  auto rows = server.ExecuteRangeBatch("data", "key",
                                       {ModularInterval(10, 5, 100)});
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 5u);
  EXPECT_EQ(server.stats().batches_received, 1u);
  EXPECT_EQ(server.stats().ranges_received, 1u);
  EXPECT_EQ(server.stats().rows_returned, 5u);
}

TEST(DbServerTest, WrapAroundRange) {
  DbServer server = MakeServer();
  // {95..99, 0..4}: the MOPE wrap-around dummy-query shape.
  auto rows = server.ExecuteRangeBatch("data", "key",
                                       {ModularInterval(95, 10, 100)});
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 10u);
}

TEST(DbServerTest, MultiRangeSharedSweepDeduplicates) {
  DbServer server = MakeServer();
  // Two overlapping ranges answered in one coalesced sweep.
  auto rows = server.ExecuteRangeBatch(
      "data", "key",
      {ModularInterval(10, 20, 100), ModularInterval(20, 20, 100)});
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 30u);  // 10..39 once
  EXPECT_EQ(server.stats().segments_scanned, 1u);
  EXPECT_EQ(server.stats().ranges_received, 2u);
}

TEST(DbServerTest, BatchOfDisjointRanges) {
  DbServer server = MakeServer();
  std::vector<ModularInterval> ranges;
  for (uint64_t s = 0; s < 100; s += 20) {
    ranges.push_back(ModularInterval(s, 5, 100));
  }
  auto rows = server.ExecuteRangeBatch("data", "key", ranges);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 25u);
  EXPECT_EQ(server.stats().segments_scanned, 5u);
}

TEST(DbServerTest, WithIdsReturnsStableRowIds) {
  DbServer server = MakeServer();
  auto rows = server.ExecuteRangeBatchWithIds("data", "key",
                                              {ModularInterval(7, 3, 100)});
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 3u);
  for (const auto& [rid, row] : *rows) {
    EXPECT_EQ(static_cast<int64_t>(rid), std::get<int64_t>(row[0]));
  }
}

TEST(DbServerTest, UnknownTableOrColumn) {
  DbServer server = MakeServer();
  EXPECT_TRUE(server.ExecuteRangeBatch("nope", "key", {}).status().IsNotFound());
  EXPECT_TRUE(
      server.ExecuteRangeBatch("data", "tag", {}).status().IsNotFound());
}

TEST(DbServerTest, CountRangeBatchMatchesExecute) {
  DbServer server = MakeServer();
  auto count = server.CountRangeBatch(
      "data", "key", {ModularInterval(90, 15, 100)});
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count.value(), 15u);
}

TEST(DbServerTest, StatsAccumulateAndReset) {
  DbServer server = MakeServer();
  ASSERT_TRUE(
      server.ExecuteRangeBatch("data", "key", {ModularInterval(0, 10, 100)})
          .ok());
  ASSERT_TRUE(
      server.ExecuteRangeBatch("data", "key", {ModularInterval(5, 10, 100)})
          .ok());
  EXPECT_EQ(server.stats().batches_received, 2u);
  EXPECT_EQ(server.stats().rows_returned, 20u);
  server.ResetStats();
  EXPECT_EQ(server.stats().batches_received, 0u);
}

TEST(DbServerTest, EmptyBatchIsValid) {
  DbServer server = MakeServer();
  auto rows = server.ExecuteRangeBatch("data", "key", {});
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
}

// A range whose (client-supplied) interval domain exceeds the audit space
// can carry a start point past it. With --audit on that used to CHECK-abort
// the daemon — the auditor must skip and count such starts instead.
TEST(DbServerTest, AuditSurvivesStartsBeyondAuditSpace) {
  DbServer server = MakeServer();
  obs::LeakageAuditConfig config;
  config.space = 100;
  config.buckets = 8;
  config.window = 16;
  ASSERT_TRUE(server.EnableLeakageAudit(config).ok());

  // Interval domain 1000 >> audit space 100, start 500 >= space.
  auto rows = server.ExecuteRangeBatch("data", "key",
                                       {ModularInterval(500, 5, 1000),
                                        ModularInterval(10, 5, 100)});
  ASSERT_TRUE(rows.ok());

  uint64_t out_of_space = 0, observations = 0;
  for (const auto& [name, value] : server.metrics()->Snapshot()) {
    if (name == obs::LeakageAuditor::kGaugeOutOfSpace) out_of_space = value;
    if (name == obs::LeakageAuditor::kGaugeObservations) observations = value;
  }
  EXPECT_EQ(out_of_space, 1u);
  EXPECT_EQ(observations, 1u);  // the in-space range still feeds the audit
}

}  // namespace
}  // namespace mope::engine
