/// ServerStats concurrency: the wire layer credits transfer bytes from many
/// session threads while a monitor (the live stats endpoint) keeps reading
/// snapshots. This test is the tsan witness for the registry-backed stats —
/// it runs under the tsan preset in CI, where a plain-field ServerStats
/// would be flagged immediately — and the exact final totals prove no
/// increment is ever lost.

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "engine/server.h"

namespace mope::engine {
namespace {

TEST(ServerStatsRaceTest, ConcurrentTransferCreditsAreExact) {
  DbServer server;
  constexpr int kThreads = 8;
  constexpr int kIters = 10000;
  constexpr uint64_t kReceivedPer = 3;
  constexpr uint64_t kSentPer = 7;

  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&server] {
      for (int i = 0; i < kIters; ++i) {
        server.AddTransferBytes(kReceivedPer, kSentPer);
      }
    });
  }
  // A monitor thread reading stats() mid-flight: each counter is atomic, so
  // every observed value is valid (never torn, never above the final total).
  std::thread monitor([&server] {
    constexpr uint64_t kFinal = uint64_t{kThreads} * kIters * kSentPer;
    for (int i = 0; i < 500; ++i) {
      const ServerStats stats = server.stats();
      ASSERT_LE(stats.bytes_sent, kFinal);
      ASSERT_LE(stats.bytes_received,
                uint64_t{kThreads} * kIters * kReceivedPer);
    }
  });
  for (auto& writer : writers) writer.join();
  monitor.join();

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.bytes_received, uint64_t{kThreads} * kIters * kReceivedPer);
  EXPECT_EQ(stats.bytes_sent, uint64_t{kThreads} * kIters * kSentPer);
}

TEST(ServerStatsRaceTest, ResetRacesWithWritersWithoutTearing) {
  // Reset during live traffic may drop in-flight increments (that is its
  // semantics) but must never produce a torn or trapped value. After the
  // writers finish, one final reset must observably zero everything.
  DbServer server;
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&server] {
      for (int i = 0; i < 5000; ++i) server.AddTransferBytes(1, 1);
    });
  }
  std::thread resetter([&server] {
    for (int i = 0; i < 50; ++i) server.ResetStats();
  });
  for (auto& writer : writers) writer.join();
  resetter.join();
  server.ResetStats();
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.bytes_received, 0u);
  EXPECT_EQ(stats.bytes_sent, 0u);
}

}  // namespace
}  // namespace mope::engine
