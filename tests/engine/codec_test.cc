#include "engine/codec.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

namespace mope::engine {
namespace {

TEST(CodecTest, U32RoundTrip) {
  std::string buf;
  PutU32(&buf, 0);
  PutU32(&buf, 1);
  PutU32(&buf, 0xDEADBEEF);
  PutU32(&buf, std::numeric_limits<uint32_t>::max());
  ASSERT_EQ(buf.size(), 16u);
  ByteReader reader(buf);
  EXPECT_EQ(reader.U32().value(), 0u);
  EXPECT_EQ(reader.U32().value(), 1u);
  EXPECT_EQ(reader.U32().value(), 0xDEADBEEFu);
  EXPECT_EQ(reader.U32().value(), std::numeric_limits<uint32_t>::max());
  EXPECT_TRUE(reader.AtEnd());
}

TEST(CodecTest, U64RoundTrip) {
  std::string buf;
  PutU64(&buf, 0);
  PutU64(&buf, 0x0123456789ABCDEFull);
  PutU64(&buf, std::numeric_limits<uint64_t>::max());
  ByteReader reader(buf);
  EXPECT_EQ(reader.U64().value(), 0u);
  EXPECT_EQ(reader.U64().value(), 0x0123456789ABCDEFull);
  EXPECT_EQ(reader.U64().value(), std::numeric_limits<uint64_t>::max());
  EXPECT_TRUE(reader.AtEnd());
}

TEST(CodecTest, EncodingIsLittleEndian) {
  std::string buf;
  PutU32(&buf, 0x04030201);
  ASSERT_EQ(buf.size(), 4u);
  EXPECT_EQ(static_cast<uint8_t>(buf[0]), 0x01);
  EXPECT_EQ(static_cast<uint8_t>(buf[3]), 0x04);
}

TEST(CodecTest, StringRoundTripIncludingNulBytes) {
  const std::string tricky("with\0nul\xFFtail", 13);
  std::string buf;
  PutString(&buf, "");
  PutString(&buf, "plain");
  PutString(&buf, tricky);
  ByteReader reader(buf);
  EXPECT_EQ(reader.String().value(), "");
  EXPECT_EQ(reader.String().value(), "plain");
  EXPECT_EQ(reader.String().value(), tricky);
  EXPECT_TRUE(reader.AtEnd());
}

TEST(CodecTest, ValueRoundTripAllTypes) {
  std::string buf;
  PutValue(&buf, Value{int64_t{-42}});
  PutValue(&buf, Value{int64_t{std::numeric_limits<int64_t>::min()}});
  PutValue(&buf, Value{3.14159});
  PutValue(&buf, Value{-0.0});
  PutValue(&buf, Value{std::string("ciphertext")});
  ByteReader reader(buf);
  EXPECT_EQ(std::get<int64_t>(reader.ReadValue().value()), -42);
  EXPECT_EQ(std::get<int64_t>(reader.ReadValue().value()),
            std::numeric_limits<int64_t>::min());
  EXPECT_DOUBLE_EQ(std::get<double>(reader.ReadValue().value()), 3.14159);
  const double neg_zero = std::get<double>(reader.ReadValue().value());
  EXPECT_TRUE(std::signbit(neg_zero));
  EXPECT_EQ(std::get<std::string>(reader.ReadValue().value()), "ciphertext");
  EXPECT_TRUE(reader.AtEnd());
}

TEST(CodecTest, TruncatedReadsAreCorruptionNotAborts) {
  std::string buf;
  PutU64(&buf, 77);
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    ByteReader reader(std::string_view(buf).substr(0, cut));
    EXPECT_TRUE(reader.U64().status().IsCorruption()) << "cut=" << cut;
  }
}

TEST(CodecTest, StringLengthBeyondBufferIsCorruption) {
  std::string buf;
  PutU64(&buf, 1000);  // claims 1000 bytes follow
  buf += "short";
  ByteReader reader(buf);
  EXPECT_TRUE(reader.String().status().IsCorruption());
}

TEST(CodecTest, BadValueTagIsCorruption) {
  std::string buf;
  buf.push_back(static_cast<char>(0x7F));  // no such ValueType
  ByteReader reader(buf);
  EXPECT_TRUE(reader.ReadValue().status().IsCorruption());
}

TEST(CodecTest, TruncatedValuePayloadIsCorruption) {
  std::string full;
  PutValue(&full, Value{int64_t{123456789}});
  ByteReader reader(std::string_view(full).substr(0, full.size() - 1));
  EXPECT_TRUE(reader.ReadValue().status().IsCorruption());
}

TEST(CodecTest, ContextNamesTheMedium) {
  ByteReader reader(std::string_view(), "wire frame");
  const Status status = reader.U32().status();
  ASSERT_TRUE(status.IsCorruption());
  EXPECT_NE(status.ToString().find("wire frame"), std::string::npos);
}

TEST(CodecTest, RemainingTracksConsumption) {
  std::string buf;
  PutU32(&buf, 5);
  PutU32(&buf, 6);
  ByteReader reader(buf);
  EXPECT_EQ(reader.remaining(), 8u);
  EXPECT_TRUE(reader.U32().ok());
  EXPECT_EQ(reader.remaining(), 4u);
  EXPECT_FALSE(reader.AtEnd());
  EXPECT_TRUE(reader.U32().ok());
  EXPECT_TRUE(reader.AtEnd());
}

}  // namespace
}  // namespace mope::engine
