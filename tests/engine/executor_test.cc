#include "engine/executor.h"

#include <gtest/gtest.h>

#include "engine/table.h"

namespace mope::engine {
namespace {

std::unique_ptr<Table> NumbersTable(int64_t n) {
  auto t = std::make_unique<Table>(
      "numbers", Schema({Column{"v", ValueType::kInt},
                         Column{"d", ValueType::kDouble}}));
  for (int64_t i = 0; i < n; ++i) {
    EXPECT_TRUE(t->Insert({i, static_cast<double>(i) / 2.0}).ok());
  }
  EXPECT_TRUE(t->CreateIndex("v").ok());
  return t;
}

TEST(CoalesceSegmentsTest, MergesOverlapsAndAdjacency) {
  // (5,10)+(8,12) overlap -> (5,12); (13,13) is adjacent -> (5,13);
  // (14,20) adjacent again -> one segment (5,20).
  auto merged = CoalesceSegments({{5, 10}, {8, 12}, {14, 20}, {13, 13}});
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0], (Segment{5, 20}));
  // A true gap stays separate.
  auto gapped = CoalesceSegments({{5, 10}, {12, 20}});
  ASSERT_EQ(gapped.size(), 2u);
  EXPECT_EQ(gapped[0], (Segment{5, 10}));
  EXPECT_EQ(gapped[1], (Segment{12, 20}));
}

TEST(CoalesceSegmentsTest, DisjointStaysDisjoint) {
  auto merged = CoalesceSegments({{20, 30}, {0, 10}});
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0], (Segment{0, 10}));
  EXPECT_EQ(merged[1], (Segment{20, 30}));
}

TEST(CoalesceSegmentsTest, EmptyAndSingle) {
  EXPECT_TRUE(CoalesceSegments({}).empty());
  EXPECT_EQ(CoalesceSegments({{3, 7}}).size(), 1u);
}

TEST(CoalesceSegmentsTest, ContainedSegments) {
  auto merged = CoalesceSegments({{0, 100}, {10, 20}, {30, 40}});
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0], (Segment{0, 100}));
}

TEST(SeqScanTest, VisitsAllRows) {
  auto t = NumbersTable(25);
  SeqScanOp scan(t.get());
  auto rows = Collect(&scan);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 25u);
}

TEST(IndexRangeScanTest, SingleSegment) {
  auto t = NumbersTable(100);
  IndexRangeScanOp scan(t.get(), *t->GetIndex("v"), {{10, 19}});
  auto rows = Collect(&scan);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 10u);
  EXPECT_EQ(scan.entries_visited(), 10u);
}

TEST(IndexRangeScanTest, OverlappingSegmentsVisitOnce) {
  auto t = NumbersTable(100);
  IndexRangeScanOp scan(t.get(), *t->GetIndex("v"), {{10, 30}, {20, 40}});
  auto rows = Collect(&scan);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 31u);  // 10..40 once
  EXPECT_EQ(scan.segments_scanned(), 1u);
}

TEST(IndexRangeScanTest, ReopenRescans) {
  auto t = NumbersTable(50);
  IndexRangeScanOp scan(t.get(), *t->GetIndex("v"), {{0, 4}});
  ASSERT_TRUE(Collect(&scan).ok());
  auto again = Collect(&scan);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->size(), 5u);
}

TEST(FilterTest, KeepsMatchingRows) {
  auto t = NumbersTable(30);
  auto plan = std::make_unique<FilterOp>(
      std::make_unique<SeqScanOp>(t.get()), [](const Row& r) -> Result<bool> {
        return std::get<int64_t>(r[0]) % 3 == 0;
      });
  auto rows = Collect(plan.get());
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 10u);
}

TEST(FilterTest, PropagatesPredicateErrors) {
  auto t = NumbersTable(5);
  FilterOp plan(std::make_unique<SeqScanOp>(t.get()),
                [](const Row&) -> Result<bool> {
                  return Status::InvalidArgument("boom");
                });
  EXPECT_FALSE(Collect(&plan).ok());
}

TEST(ProjectTest, SelectsColumnSubset) {
  auto t = NumbersTable(3);
  ProjectOp plan(std::make_unique<SeqScanOp>(t.get()), {1});
  auto rows = Collect(&plan);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 3u);
  EXPECT_EQ((*rows)[2].size(), 1u);
  EXPECT_DOUBLE_EQ(std::get<double>((*rows)[2][0]), 1.0);
}

TEST(HashJoinTest, InnerJoinMatchesNestedLoop) {
  auto left = std::make_unique<Table>(
      "l", Schema({Column{"k", ValueType::kInt},
                   Column{"lv", ValueType::kInt}}));
  auto right = std::make_unique<Table>(
      "r", Schema({Column{"k", ValueType::kInt},
                   Column{"rv", ValueType::kInt}}));
  for (int64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(left->Insert({i % 5, i}).ok());
  }
  for (int64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(right->Insert({i % 5, 100 + i}).ok());
  }
  HashJoinOp join(std::make_unique<SeqScanOp>(left.get()),
                  std::make_unique<SeqScanOp>(right.get()), 0, 0);
  auto rows = Collect(&join);
  ASSERT_TRUE(rows.ok());
  // Each of 20 left rows matches 2 right rows (10 right rows over 5 keys).
  EXPECT_EQ(rows->size(), 40u);
  for (const Row& r : *rows) {
    ASSERT_EQ(r.size(), 4u);
    EXPECT_EQ(std::get<int64_t>(r[0]), std::get<int64_t>(r[2]));
  }
}

TEST(HashJoinTest, NoMatchesYieldsEmpty) {
  auto left = std::make_unique<Table>(
      "l", Schema({Column{"k", ValueType::kInt}}));
  auto right = std::make_unique<Table>(
      "r", Schema({Column{"k", ValueType::kInt}}));
  ASSERT_TRUE(left->Insert({int64_t{1}}).ok());
  ASSERT_TRUE(right->Insert({int64_t{2}}).ok());
  HashJoinOp join(std::make_unique<SeqScanOp>(left.get()),
                  std::make_unique<SeqScanOp>(right.get()), 0, 0);
  auto rows = Collect(&join);
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
}

TEST(AggregateTest, ScalarAggregates) {
  auto t = NumbersTable(10);  // v = 0..9, d = v/2
  std::vector<AggSpec> aggs;
  aggs.push_back({AggKind::kCount, nullptr});
  aggs.push_back({AggKind::kSum, [](const Row& r) -> Result<double> {
                    return static_cast<double>(std::get<int64_t>(r[0]));
                  }});
  aggs.push_back({AggKind::kMin, [](const Row& r) -> Result<double> {
                    return std::get<double>(r[1]);
                  }});
  aggs.push_back({AggKind::kMax, [](const Row& r) -> Result<double> {
                    return std::get<double>(r[1]);
                  }});
  aggs.push_back({AggKind::kAvg, [](const Row& r) -> Result<double> {
                    return static_cast<double>(std::get<int64_t>(r[0]));
                  }});
  AggregateOp plan(std::make_unique<SeqScanOp>(t.get()), std::move(aggs));
  auto rows = Collect(&plan);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  const Row& r = (*rows)[0];
  EXPECT_EQ(std::get<int64_t>(r[0]), 10);
  EXPECT_DOUBLE_EQ(std::get<double>(r[1]), 45.0);
  EXPECT_DOUBLE_EQ(std::get<double>(r[2]), 0.0);
  EXPECT_DOUBLE_EQ(std::get<double>(r[3]), 4.5);
  EXPECT_DOUBLE_EQ(std::get<double>(r[4]), 4.5);
}

TEST(AggregateTest, ScalarOverEmptyInputYieldsCountZero) {
  auto t = NumbersTable(0);
  std::vector<AggSpec> aggs;
  aggs.push_back({AggKind::kCount, nullptr});
  AggregateOp plan(std::make_unique<SeqScanOp>(t.get()), std::move(aggs));
  auto rows = Collect(&plan);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ(std::get<int64_t>((*rows)[0][0]), 0);
}

TEST(AggregateTest, GroupByEmitsSortedGroups) {
  auto t = std::make_unique<Table>(
      "g", Schema({Column{"grp", ValueType::kInt},
                   Column{"x", ValueType::kInt}}));
  for (int64_t i = 0; i < 30; ++i) {
    ASSERT_TRUE(t->Insert({i % 3, i}).ok());
  }
  std::vector<AggSpec> aggs;
  aggs.push_back({AggKind::kCount, nullptr});
  AggregateOp plan(std::make_unique<SeqScanOp>(t.get()), 0, std::move(aggs));
  auto rows = Collect(&plan);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 3u);
  for (int64_t g = 0; g < 3; ++g) {
    EXPECT_EQ(std::get<int64_t>((*rows)[g][0]), g);
    EXPECT_EQ(std::get<int64_t>((*rows)[g][1]), 10);
  }
}

TEST(AggregateTest, SumWithoutExtractorFails) {
  auto t = NumbersTable(3);
  std::vector<AggSpec> aggs;
  aggs.push_back({AggKind::kSum, nullptr});
  AggregateOp plan(std::make_unique<SeqScanOp>(t.get()), std::move(aggs));
  EXPECT_FALSE(Collect(&plan).ok());
}


TEST(SortTest, SortsByIntAscendingAndDescending) {
  auto t = std::make_unique<Table>(
      "s", Schema({Column{"v", ValueType::kInt}}));
  for (int64_t v : {5, 1, 9, 3, 7}) ASSERT_TRUE(t->Insert({v}).ok());
  SortOp asc(std::make_unique<SeqScanOp>(t.get()), {{0, false}});
  auto rows = Collect(&asc);
  ASSERT_TRUE(rows.ok());
  for (size_t i = 1; i < rows->size(); ++i) {
    EXPECT_LE(std::get<int64_t>((*rows)[i - 1][0]),
              std::get<int64_t>((*rows)[i][0]));
  }
  SortOp desc(std::make_unique<SeqScanOp>(t.get()), {{0, true}});
  rows = Collect(&desc);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(std::get<int64_t>((*rows)[0][0]), 9);
  EXPECT_EQ(std::get<int64_t>((*rows)[4][0]), 1);
}

TEST(SortTest, SecondaryKeyBreaksTies) {
  auto t = std::make_unique<Table>(
      "s", Schema({Column{"a", ValueType::kInt},
                   Column{"b", ValueType::kInt}}));
  ASSERT_TRUE(t->Insert({int64_t{1}, int64_t{2}}).ok());
  ASSERT_TRUE(t->Insert({int64_t{1}, int64_t{1}}).ok());
  ASSERT_TRUE(t->Insert({int64_t{0}, int64_t{9}}).ok());
  SortOp op(std::make_unique<SeqScanOp>(t.get()), {{0, false}, {1, false}});
  auto rows = Collect(&op);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(std::get<int64_t>((*rows)[0][1]), 9);
  EXPECT_EQ(std::get<int64_t>((*rows)[1][1]), 1);
  EXPECT_EQ(std::get<int64_t>((*rows)[2][1]), 2);
}

TEST(SortTest, MixedNumericPromotion) {
  auto t = std::make_unique<Table>(
      "s", Schema({Column{"d", ValueType::kDouble}}));
  for (double v : {2.5, -1.0, 0.25}) ASSERT_TRUE(t->Insert({v}).ok());
  SortOp op(std::make_unique<SeqScanOp>(t.get()), {{0, false}});
  auto rows = Collect(&op);
  ASSERT_TRUE(rows.ok());
  EXPECT_DOUBLE_EQ(std::get<double>((*rows)[0][0]), -1.0);
}

TEST(LimitTest, CapsOutput) {
  auto t = NumbersTable(50);
  LimitOp op(std::make_unique<SeqScanOp>(t.get()), 7);
  auto rows = Collect(&op);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 7u);
}

TEST(LimitTest, LimitZeroAndLimitBeyondInput) {
  auto t = NumbersTable(3);
  LimitOp zero(std::make_unique<SeqScanOp>(t.get()), 0);
  EXPECT_TRUE(Collect(&zero)->empty());
  LimitOp big(std::make_unique<SeqScanOp>(t.get()), 100);
  EXPECT_EQ(Collect(&big)->size(), 3u);
}

}  // namespace
}  // namespace mope::engine
