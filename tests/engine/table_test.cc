#include "engine/table.h"

#include <gtest/gtest.h>

namespace mope::engine {
namespace {

Schema TestSchema() {
  return Schema({Column{"id", ValueType::kInt},
                 Column{"price", ValueType::kDouble},
                 Column{"name", ValueType::kString}});
}

TEST(SchemaTest, IndexOfResolvesColumns) {
  const Schema s = TestSchema();
  EXPECT_EQ(s.IndexOf("id").value(), 0u);
  EXPECT_EQ(s.IndexOf("name").value(), 2u);
  EXPECT_TRUE(s.IndexOf("missing").status().IsNotFound());
}

TEST(SchemaTest, ValidateChecksArityAndTypes) {
  const Schema s = TestSchema();
  EXPECT_TRUE(s.Validate({int64_t{1}, 2.5, std::string("x")}).ok());
  EXPECT_FALSE(s.Validate({int64_t{1}, 2.5}).ok());
  EXPECT_FALSE(s.Validate({2.5, 2.5, std::string("x")}).ok());
  EXPECT_FALSE(s.Validate({int64_t{1}, 2.5, int64_t{3}}).ok());
}

TEST(ValueTest, TypeOfAndToString) {
  EXPECT_EQ(TypeOf(Value{int64_t{3}}), ValueType::kInt);
  EXPECT_EQ(TypeOf(Value{1.5}), ValueType::kDouble);
  EXPECT_EQ(TypeOf(Value{std::string("a")}), ValueType::kString);
  EXPECT_EQ(ValueToString(Value{int64_t{42}}), "42");
  EXPECT_EQ(ValueToString(Value{std::string("hi")}), "hi");
}

TEST(TableTest, InsertAndRead) {
  Table t("t", TestSchema());
  const auto id = t.Insert({int64_t{7}, 1.25, std::string("a")});
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(id.value(), 0u);
  EXPECT_EQ(t.row_count(), 1u);
  EXPECT_EQ(std::get<int64_t>(t.row(0)[0]), 7);
}

TEST(TableTest, InsertValidatesSchema) {
  Table t("t", TestSchema());
  EXPECT_FALSE(t.Insert({int64_t{7}}).ok());
  EXPECT_EQ(t.row_count(), 0u);
}

TEST(TableTest, CreateIndexOnIntColumn) {
  Table t("t", TestSchema());
  for (int64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(t.Insert({i % 10, 0.0, std::string("r")}).ok());
  }
  ASSERT_TRUE(t.CreateIndex("id").ok());
  const auto index = t.GetIndex("id");
  ASSERT_TRUE(index.ok());
  EXPECT_EQ((*index)->CountRange(3, 3), 10u);
  EXPECT_EQ((*index)->CountRange(0, 9), 100u);
  EXPECT_TRUE(t.HasIndex("id"));
  EXPECT_FALSE(t.HasIndex("price"));
}

TEST(TableTest, IndexMaintainedOnLaterInserts) {
  Table t("t", TestSchema());
  ASSERT_TRUE(t.CreateIndex("id").ok());
  for (int64_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(t.Insert({i, 0.0, std::string("r")}).ok());
  }
  EXPECT_EQ((*t.GetIndex("id"))->CountRange(10, 19), 10u);
}

TEST(TableTest, IndexRejectsNonIntColumns) {
  Table t("t", TestSchema());
  EXPECT_TRUE(t.CreateIndex("price").IsNotSupported());
  EXPECT_TRUE(t.CreateIndex("nope").IsNotFound());
}

TEST(TableTest, DuplicateIndexRejected) {
  Table t("t", TestSchema());
  ASSERT_TRUE(t.CreateIndex("id").ok());
  EXPECT_TRUE(t.CreateIndex("id").IsAlreadyExists());
}

TEST(TableTest, NegativeIndexedValueRejected) {
  Table t("t", TestSchema());
  ASSERT_TRUE(t.CreateIndex("id").ok());
  EXPECT_FALSE(t.Insert({int64_t{-1}, 0.0, std::string("r")}).ok());
}

TEST(CatalogTest, CreateAndLookup) {
  Catalog c;
  ASSERT_TRUE(c.CreateTable("a", TestSchema()).ok());
  ASSERT_TRUE(c.CreateTable("b", TestSchema()).ok());
  EXPECT_TRUE(c.GetTable("a").ok());
  EXPECT_TRUE(c.GetTable("missing").status().IsNotFound());
  EXPECT_TRUE(c.CreateTable("a", TestSchema()).status().IsAlreadyExists());
  EXPECT_EQ(c.TableNames(), (std::vector<std::string>{"a", "b"}));
}


TEST(TableTest, UpdateValueRewritesCellAndIndex) {
  Table t("t", TestSchema());
  ASSERT_TRUE(t.CreateIndex("id").ok());
  for (int64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(t.Insert({i, 0.0, std::string("r")}).ok());
  }
  ASSERT_TRUE(t.UpdateValue(5, 0, Value{int64_t{100}}).ok());
  EXPECT_EQ(std::get<int64_t>(t.row(5)[0]), 100);
  const auto index = t.GetIndex("id");
  ASSERT_TRUE(index.ok());
  EXPECT_EQ((*index)->CountRange(5, 5), 0u);
  EXPECT_EQ((*index)->CountRange(100, 100), 1u);
  EXPECT_EQ((*index)->size(), 20u);
  EXPECT_TRUE((*index)->CheckInvariants().ok());
}

TEST(TableTest, UpdateValueValidates) {
  Table t("t", TestSchema());
  ASSERT_TRUE(t.Insert({int64_t{1}, 0.0, std::string("r")}).ok());
  EXPECT_TRUE(t.UpdateValue(1, 0, Value{int64_t{2}}).IsOutOfRange());
  EXPECT_TRUE(t.UpdateValue(0, 3, Value{int64_t{2}}).IsOutOfRange());
  EXPECT_TRUE(t.UpdateValue(0, 0, Value{1.5}).IsInvalidArgument());
}

TEST(TableTest, UpdateValueOnUnindexedColumn) {
  Table t("t", TestSchema());
  ASSERT_TRUE(t.Insert({int64_t{1}, 0.0, std::string("r")}).ok());
  ASSERT_TRUE(t.UpdateValue(0, 1, Value{2.75}).ok());
  EXPECT_DOUBLE_EQ(std::get<double>(t.row(0)[1]), 2.75);
}

TEST(TableTest, UpdateIndexedValueRejectsNegative) {
  Table t("t", TestSchema());
  ASSERT_TRUE(t.CreateIndex("id").ok());
  ASSERT_TRUE(t.Insert({int64_t{1}, 0.0, std::string("r")}).ok());
  EXPECT_TRUE(t.UpdateValue(0, 0, Value{int64_t{-3}}).IsInvalidArgument());
}

TEST(TableTest, FailedInsertLeavesNoDanglingIndexEntries) {
  // Regression: with two indexes, a negative value in the *second* indexed
  // column used to fail after the first index was already updated, leaving a
  // dangling entry for a RowId that the next successful insert then reused.
  Table t("t", Schema({Column{"a", ValueType::kInt},
                       Column{"b", ValueType::kInt}}));
  ASSERT_TRUE(t.CreateIndex("a").ok());
  ASSERT_TRUE(t.CreateIndex("b").ok());
  ASSERT_TRUE(t.Insert({int64_t{1}, int64_t{-5}}).status().IsInvalidArgument());
  EXPECT_EQ(t.row_count(), 0u);

  const auto id = t.Insert({int64_t{2}, int64_t{3}});
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(id.value(), 0u);

  const auto index_a = t.GetIndex("a");
  ASSERT_TRUE(index_a.ok());
  std::vector<std::pair<uint64_t, uint64_t>> entries;
  index_a.value()->ScanRange(0, ~uint64_t{0},
                             [&entries](uint64_t key, uint64_t rid) {
                               entries.emplace_back(key, rid);
                             });
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].first, 2u);   // the successful row's key, not 1
  EXPECT_EQ(entries[0].second, 0u);  // RowId 0 maps to the real row
}

TEST(CatalogTest, DropTableRemovesTable) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateTable("t", TestSchema()).ok());
  ASSERT_TRUE(catalog.DropTable("t").ok());
  EXPECT_TRUE(catalog.GetTable("t").status().IsNotFound());
  EXPECT_TRUE(catalog.DropTable("t").IsNotFound());
  // The name is reusable after the drop.
  EXPECT_TRUE(catalog.CreateTable("t", TestSchema()).ok());
}

}  // namespace
}  // namespace mope::engine
