#include "obs/trace.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "obs/clock.h"

namespace mope::obs {
namespace {

TEST(TraceTest, SpansNestByCallStructure) {
  ManualClock clock(0, 10);
  Trace trace("q", &clock);
  const uint32_t outer = trace.StartSpan("outer");
  const uint32_t inner = trace.StartSpan("inner");
  trace.EndSpan(inner);
  trace.EndSpan(outer);
  const uint32_t sibling = trace.StartSpan("sibling");
  trace.EndSpan(sibling);

  const std::vector<Span> spans = trace.spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[0].parent, 0u);  // root
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_EQ(spans[1].parent, outer);
  EXPECT_EQ(spans[2].name, "sibling");
  EXPECT_EQ(spans[2].parent, 0u);  // outer closed before it started
  EXPECT_TRUE(trace.TimingsMonotone());
}

TEST(TraceTest, ManualClockTimingsAreExact) {
  // auto_advance=10: every clock read is 10ns after the previous one, so
  // durations are fully determined by the number of reads in between.
  ManualClock clock(100, 10);
  Trace trace("q", &clock);
  const uint32_t a = trace.StartSpan("a");  // start 110
  const uint32_t b = trace.StartSpan("b");  // start 120
  trace.EndSpan(b);                         // end 130
  trace.EndSpan(a);                         // end 140
  const std::vector<Span> spans = trace.spans();
  EXPECT_EQ(spans[0].start_ns, 110u);
  EXPECT_EQ(spans[0].end_ns, 140u);
  EXPECT_EQ(spans[1].start_ns, 120u);
  EXPECT_EQ(spans[1].end_ns, 130u);
}

TEST(TraceTest, CountSpansMatchesExactNames) {
  ManualClock clock(0, 1);
  Trace trace("q", &clock);
  for (int i = 0; i < 3; ++i) {
    const uint32_t id = trace.StartSpan("net.roundtrip");
    trace.EndSpan(id);
  }
  const uint32_t other = trace.StartSpan("net.roundtrip.extra");
  trace.EndSpan(other);
  EXPECT_EQ(trace.CountSpans("net.roundtrip"), 3u);
  EXPECT_EQ(trace.CountSpans("net.roundtrip.extra"), 1u);
  EXPECT_EQ(trace.CountSpans("absent"), 0u);
}

TEST(TraceTest, CountersAccumulate) {
  ManualClock clock(0, 1);
  Trace trace("q", &clock);
  trace.IncrementCounter("ope.hgd_draws", 5);
  trace.IncrementCounter("ope.hgd_draws");
  trace.IncrementCounter("net.retries", 2);
  const auto counters = trace.counters();
  EXPECT_EQ(counters.at("ope.hgd_draws"), 6u);
  EXPECT_EQ(counters.at("net.retries"), 2u);
}

TEST(TraceTest, TraceIdsAreUniqueAndIncreasing) {
  ManualClock clock(0, 1);
  Trace first("a", &clock);
  Trace second("b", &clock);
  EXPECT_GT(first.trace_id(), 0u);
  EXPECT_GT(second.trace_id(), first.trace_id());
}

TEST(TraceTest, RenderTreeShowsNestingAndCounters) {
  ManualClock clock(0, 1000);  // 1us per clock read — durations land on .000
  Trace trace("sql.execute", &clock);
  const uint32_t outer = trace.StartSpan("parse");
  const uint32_t inner = trace.StartSpan("lex");
  trace.EndSpan(inner);
  trace.EndSpan(outer);
  trace.IncrementCounter("tokens", 7);

  const std::string tree = trace.RenderTree();
  EXPECT_NE(tree.find("\"sql.execute\"\n"), std::string::npos);
  EXPECT_NE(tree.find("  parse  3.000us\n"), std::string::npos);
  EXPECT_NE(tree.find("    lex  1.000us\n"), std::string::npos);  // indented
  EXPECT_NE(tree.find("  #tokens = 7\n"), std::string::npos);
}

TEST(TraceActivationTest, CurrentTraceFollowsScopes) {
  EXPECT_EQ(CurrentTrace(), nullptr);
  EXPECT_EQ(CurrentTraceId(), 0u);
  ManualClock clock(0, 1);
  Trace outer("outer", &clock);
  {
    ScopedTraceActivation activate_outer(&outer);
    EXPECT_EQ(CurrentTrace(), &outer);
    EXPECT_EQ(CurrentTraceId(), outer.trace_id());
    {
      // Traces nest: the inner activation wins, then the outer is restored.
      Trace inner("inner", &clock);
      ScopedTraceActivation activate_inner(&inner);
      EXPECT_EQ(CurrentTrace(), &inner);
      EXPECT_EQ(CurrentTraceId(), inner.trace_id());
    }
    EXPECT_EQ(CurrentTrace(), &outer);
  }
  EXPECT_EQ(CurrentTrace(), nullptr);
  EXPECT_EQ(CurrentTraceId(), 0u);
}

TEST(TraceActivationTest, ScopedSpanAndBumpAreNoOpsWhenOff) {
  ASSERT_EQ(CurrentTrace(), nullptr);
  {
    ScopedSpan span("orphan");  // must not crash or record anywhere
    BumpTraceCounter("orphan.counter", 3);
  }
  // And with a trace active, the same code records against it.
  ManualClock clock(0, 1);
  Trace trace("q", &clock);
  {
    ScopedTraceActivation activate(&trace);
    ScopedSpan span("work");
    BumpTraceCounter("work.items", 2);
  }
  EXPECT_EQ(trace.CountSpans("work"), 1u);
  EXPECT_EQ(trace.counters().at("work.items"), 2u);
}

TEST(TraceTest, OutOfOrderEndDoesNotWedgeTheStack) {
  ManualClock clock(0, 1);
  Trace trace("q", &clock);
  const uint32_t outer = trace.StartSpan("outer");
  const uint32_t inner = trace.StartSpan("inner");
  trace.EndSpan(outer);  // closes outer (and pops inner from the stack)
  trace.EndSpan(inner);
  const uint32_t next = trace.StartSpan("next");
  trace.EndSpan(next);
  EXPECT_EQ(trace.spans()[2].parent, 0u);  // stack recovered: next is a root
}

}  // namespace
}  // namespace mope::obs
