#include "obs/leakage.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "attack/gap_attack.h"
#include "common/math_util.h"
#include "common/random.h"
#include "dist/distribution.h"
#include "obs/registry.h"
#include "query/algorithms.h"

namespace mope::obs {
namespace {

// The auditor must reach the *same* conclusions as the offline Section 5
// harness (attack::GapAttack) on the same stream — these tests replay the
// paper's two regimes (naive MOPE, QueryU-mixed) through both and compare.

std::unique_ptr<LeakageAuditor> MakeAuditor(const LeakageAuditConfig& config,
                                            MetricsRegistry* registry) {
  auto auditor = LeakageAuditor::Create(config, registry);
  EXPECT_TRUE(auditor.ok()) << auditor.status().ToString();
  return std::move(*auditor);
}

TEST(LeakageAuditorTest, CreateValidatesConfig) {
  MetricsRegistry registry;
  LeakageAuditConfig c;
  c.space = 0;
  EXPECT_FALSE(LeakageAuditor::Create(c, &registry).ok());
  c.space = 64;
  c.buckets = 1;
  EXPECT_FALSE(LeakageAuditor::Create(c, &registry).ok());
  c.buckets = 65;
  EXPECT_FALSE(LeakageAuditor::Create(c, &registry).ok());
  c.buckets = 16;
  c.window = 8;  // must cover >= one sample per bucket
  EXPECT_FALSE(LeakageAuditor::Create(c, &registry).ok());
  c.window = 64;
  c.alpha = 0.0;
  EXPECT_FALSE(LeakageAuditor::Create(c, &registry).ok());
  c.alpha = 0.01;
  c.expected = {1.0, 2.0};  // size != buckets
  EXPECT_FALSE(LeakageAuditor::Create(c, &registry).ok());
  c.expected.assign(16, 0.0);  // all-zero mass
  EXPECT_FALSE(LeakageAuditor::Create(c, &registry).ok());
  c.expected.assign(16, 1.0);
  c.expected[3] = -1.0;  // negative mass
  EXPECT_FALSE(LeakageAuditor::Create(c, &registry).ok());
  c.expected.clear();
  c.max_points = 1;
  EXPECT_FALSE(LeakageAuditor::Create(c, &registry).ok());
  c.max_points = 1 << 20;
  EXPECT_TRUE(LeakageAuditor::Create(c, &registry).ok());
  // A null registry is a supported (publish-nowhere) mode.
  EXPECT_TRUE(LeakageAuditor::Create(c, nullptr).ok());
}

// Naive MOPE (no fakes): valid length-k queries never straddle the domain
// wrap, so the shifted-space stream leaves a width-(k-1) arc just below the
// offset uncovered. The auditor must pin the offset exactly as the offline
// GapAttack does, and must raise the alert.
TEST(LeakageAuditorTest, RawStreamRecoversOffsetAndAlerts) {
  constexpr uint64_t kDomain = 101;
  constexpr uint64_t kK = 20;
  constexpr uint64_t kOffset = 37;

  MetricsRegistry registry;
  LeakageAuditConfig config;
  config.space = kDomain;  // offline rank-space replay: space == M
  config.domain = kDomain;
  config.buckets = 16;
  config.window = 512;
  config.min_observations = 512;
  auto auditor = MakeAuditor(config, &registry);

  attack::GapAttack offline(kDomain);
  Rng rng(0x5ec5);
  for (int i = 0; i < 3000; ++i) {
    const uint64_t start = rng.UniformUint64(kDomain - kK + 1);
    const uint64_t shifted = (start + kOffset) % kDomain;
    auditor->ObserveStart(shifted);
    offline.ObserveStart(shifted);
  }

  const LeakageVerdict v = auditor->Verdict();
  auto offline_offset = offline.EstimateOffset();
  ASSERT_TRUE(offline_offset.ok());
  EXPECT_EQ(v.offset_estimate, kOffset);
  EXPECT_EQ(v.offset_estimate, *offline_offset);
  EXPECT_EQ(v.largest_gap, offline.LongestGap());
  EXPECT_EQ(v.largest_gap, kK - 1);
  // All other arcs closed after 3000 draws over 82 starts, so the margin is
  // the whole forbidden band.
  EXPECT_EQ(v.second_gap, 0u);
  EXPECT_EQ(v.gap_margin, kK - 1);
  // 19 of 101 starts unseen after 3000 ~Bin(3000, 1/101) trials is wildly
  // unlikely under a healthy mix.
  EXPECT_GT(v.confidence, 0.999);
  EXPECT_TRUE(v.alert);
}

// QueryU's whole point: the perceived stream (reals + fakes) is uniform, so
// the auditor must stay quiet — coverage completes (no gap confidence) and
// the windowed chi-square stays below its critical value. Checked across
// seeds so one lucky permutation can't carry the test.
TEST(LeakageAuditorTest, UniformMixStaysBelowThreshold) {
  constexpr uint64_t kDomain = 64;
  constexpr uint64_t kK = 8;
  constexpr uint64_t kOffset = 23;

  for (const uint64_t seed : {11u, 222u, 3333u}) {
    std::vector<double> weights(kDomain);
    for (uint64_t i = 0; i < kDomain; ++i) {
      weights[i] = 1.0 / static_cast<double>(1 + i);  // skewed user queries
    }
    auto q = dist::Distribution::FromWeights(std::move(weights));
    ASSERT_TRUE(q.ok());
    auto alg = query::UniformQueryAlgorithm::Create({kDomain, kK}, *q);
    ASSERT_TRUE(alg.ok());

    MetricsRegistry registry;
    LeakageAuditConfig config;
    config.space = kDomain;
    config.domain = kDomain;
    config.buckets = 16;
    config.window = 2048;
    config.min_observations = 512;
    auto auditor = MakeAuditor(config, &registry);

    Rng rng(seed);
    for (int i = 0; i < 1200; ++i) {
      uint64_t start = q->Sample(&rng);
      if (start > kDomain - kK) start = kDomain - kK;
      auto batch = (*alg)->Process(query::RangeQuery{start, start + kK - 1},
                                   &rng);
      ASSERT_TRUE(batch.ok());
      for (const auto& fq : *batch) {
        auditor->ObserveStart((fq.start + kOffset) % kDomain);
      }
    }

    const LeakageVerdict v = auditor->Verdict();
    EXPECT_GE(v.observations, 1200u);
    // Fakes cover wrap-around starts too: full coverage, no gap to orient by.
    EXPECT_EQ(v.distinct, kDomain) << "seed " << seed;
    EXPECT_EQ(v.largest_gap, 0u) << "seed " << seed;
    EXPECT_DOUBLE_EQ(v.confidence, 0.0) << "seed " << seed;
    EXPECT_GT(v.chi2_critical, 0.0) << "seed " << seed;
    EXPECT_LT(v.chi2, v.chi2_critical) << "seed " << seed;
    EXPECT_FALSE(v.alert) << "seed " << seed;
  }
}

// QueryP deployments audit against their own rho-periodic target via
// config.expected. The same periodic stream must pass against the periodic
// target (and against the self-calibrating default) but trip the alarm
// against a uniform target — the statistic distinguishes the two mixes.
TEST(LeakageAuditorTest, PeriodicStreamJudgedAgainstExplicitTarget) {
  constexpr uint64_t kSpace = 64;
  constexpr uint64_t kPeriod = 8;
  constexpr uint64_t kBuckets = 32;
  // Start points are multiples of 8; bucket = start * 32 / 64 = start / 2,
  // so the periodic stream occupies exactly the buckets divisible by 4.
  std::vector<double> periodic_target(kBuckets, 0.0);
  for (uint64_t b = 0; b < kBuckets; b += 4) periodic_target[b] = 1.0;

  MetricsRegistry registry;
  LeakageAuditConfig config;
  config.space = kSpace;
  config.buckets = kBuckets;
  config.window = 512;
  config.min_observations = 256;
  config.expected = periodic_target;
  auto against_periodic = MakeAuditor(config, &registry);
  config.expected.assign(kBuckets, 1.0);  // wrong target: uniform
  auto against_uniform = MakeAuditor(config, nullptr);
  config.expected.clear();  // self-calibrating default
  auto self_calibrated = MakeAuditor(config, nullptr);

  Rng rng(0xF00D);
  for (int i = 0; i < 1024; ++i) {
    const uint64_t start = kPeriod * rng.UniformUint64(kSpace / kPeriod);
    against_periodic->ObserveStart(start);
    against_uniform->ObserveStart(start);
    self_calibrated->ObserveStart(start);
  }

  const LeakageVerdict ok_verdict = against_periodic->Verdict();
  EXPECT_LT(ok_verdict.chi2, ok_verdict.chi2_critical);
  EXPECT_FALSE(ok_verdict.alert);

  const LeakageVerdict self_verdict = self_calibrated->Verdict();
  EXPECT_LT(self_verdict.chi2, self_verdict.chi2_critical);
  EXPECT_FALSE(self_verdict.alert);

  // Against a uniform target, 3/4 of the expected mass sits in buckets the
  // periodic stream never touches: chi2 blows past critical.
  const LeakageVerdict bad_verdict = against_uniform->Verdict();
  EXPECT_GT(bad_verdict.chi2, bad_verdict.chi2_critical);
  EXPECT_TRUE(bad_verdict.alert);
}

// The window must *forget*: a sampler that breaks and then is fixed should
// drive chi2 up and back down as the bad samples age out.
TEST(LeakageAuditorTest, SlidingWindowEvictsOldBehaviour) {
  constexpr uint64_t kSpace = 64;
  constexpr uint64_t kWindow = 256;

  LeakageAuditConfig config;
  config.space = kSpace;
  config.buckets = 8;
  config.window = kWindow;
  config.min_observations = 1;
  auto auditor = MakeAuditor(config, nullptr);

  Rng rng(0xCAFE);
  // Healthy phase: uniform starts establish support and fill the window.
  for (uint64_t i = 0; i < kWindow; ++i) {
    auditor->ObserveStart(rng.UniformUint64(kSpace));
  }
  const LeakageVerdict healthy = auditor->Verdict();
  EXPECT_EQ(healthy.window_fill, kWindow);
  EXPECT_LT(healthy.chi2, healthy.chi2_critical);

  // Broken sampler: a full window of the same start point.
  for (uint64_t i = 0; i < kWindow; ++i) auditor->ObserveStart(5);
  const LeakageVerdict broken = auditor->Verdict();
  EXPECT_EQ(broken.window_fill, kWindow);  // capped, old samples evicted
  EXPECT_GT(broken.chi2, broken.chi2_critical);
  EXPECT_TRUE(broken.alert);

  // Fixed again: once the point-mass window has fully aged out, the verdict
  // must recover — month-old good history must not mask it and vice versa.
  for (uint64_t i = 0; i < kWindow; ++i) {
    auditor->ObserveStart(rng.UniformUint64(kSpace));
  }
  const LeakageVerdict recovered = auditor->Verdict();
  EXPECT_EQ(recovered.window_fill, kWindow);
  EXPECT_LT(recovered.chi2, recovered.chi2_critical);
  EXPECT_FALSE(recovered.alert);
}

TEST(LeakageAuditorTest, SaturationCapsTrackedPointsAndRaisesGauge) {
  MetricsRegistry registry;
  LeakageAuditConfig config;
  config.space = 64;
  config.buckets = 8;
  config.window = 16;
  config.max_points = 4;
  auto auditor = MakeAuditor(config, &registry);

  for (uint64_t x = 0; x < 10; ++x) auditor->ObserveStart(x);
  const LeakageVerdict v = auditor->Verdict();
  EXPECT_EQ(v.observations, 10u);
  EXPECT_EQ(v.distinct, 4u);  // capped
  bool found = false;
  for (const auto& [name, value] : registry.Snapshot()) {
    if (name == LeakageAuditor::kGaugeSaturated) {
      EXPECT_EQ(value, 1u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

// The observed start arrives straight off the wire: values outside the
// audited space (hostile frame, or client/server audit-domain mismatch)
// must be skipped and counted, never CHECK-abort the server.
TEST(LeakageAuditorTest, OutOfSpaceStartsAreSkippedAndCounted) {
  MetricsRegistry registry;
  LeakageAuditConfig config;
  config.space = 64;
  config.buckets = 8;
  config.window = 16;
  auto auditor = MakeAuditor(config, &registry);

  auditor->ObserveStart(5);
  auditor->ObserveStart(64);                   // == space
  auditor->ObserveStart(uint64_t{1} << 40);    // absurd wire value
  auditor->ObserveStart(7);

  const LeakageVerdict v = auditor->Verdict();
  EXPECT_EQ(v.observations, 2u);  // only the in-space starts
  EXPECT_EQ(v.distinct, 2u);
  EXPECT_EQ(v.out_of_space, 2u);
  uint64_t gauge = 0;
  for (const auto& [name, value] : registry.Snapshot()) {
    if (name == LeakageAuditor::kGaugeOutOfSpace) gauge = value;
  }
  EXPECT_EQ(gauge, 2u);
}

// After the max_points cap saturates, new distinct starts still enter the
// sliding window — their buckets must keep accruing support weight, or the
// self-calibrating chi-square degenerates to the infinite sentinel and
// latches a false alert on a perfectly healthy stream.
TEST(LeakageAuditorTest, SaturatedStreamKeepsChiSquareFiniteAndQuiet) {
  MetricsRegistry registry;
  LeakageAuditConfig config;
  config.space = 256;
  config.buckets = 8;
  config.window = 128;
  config.max_points = 4;  // saturate almost immediately
  config.min_observations = 256;
  auto auditor = MakeAuditor(config, &registry);

  Rng rng(0xfeed);
  for (int i = 0; i < 1024; ++i) {
    auditor->ObserveStart(rng.UniformUint64(config.space));
  }
  const LeakageVerdict v = auditor->Verdict();
  EXPECT_EQ(v.distinct, 4u);
  ASSERT_TRUE(std::isfinite(v.chi2));
  EXPECT_LT(v.chi2, v.chi2_critical);
  EXPECT_FALSE(v.alert);
}

TEST(LeakageAuditorTest, PublishesGaugesOnCadenceWithoutExplicitCalls) {
  MetricsRegistry registry;
  LeakageAuditConfig config;
  config.space = 64;
  config.buckets = 8;
  config.window = 64;
  auto auditor = MakeAuditor(config, &registry);

  Rng rng(7);
  for (int i = 0; i < 64; ++i) {  // exactly kPublishEvery
    auditor->ObserveStart(rng.UniformUint64(64));
  }
  uint64_t observations = 0;
  for (const auto& [name, value] : registry.Snapshot()) {
    if (name == LeakageAuditor::kGaugeObservations) observations = value;
  }
  EXPECT_EQ(observations, 64u);
}

TEST(LeakageAuditorTest, DescribeStatsRendersVerdictFromSnapshot) {
  EXPECT_NE(LeakageAuditor::DescribeStats({}).find("not enabled"),
            std::string::npos);

  MetricsRegistry registry;
  LeakageAuditConfig config;
  config.space = 101;
  config.domain = 101;
  config.buckets = 16;
  config.window = 512;
  config.min_observations = 256;
  auto auditor = MakeAuditor(config, &registry);
  Rng rng(0x5ec5);
  for (int i = 0; i < 2000; ++i) {
    auditor->ObserveStart((rng.UniformUint64(82) + 37) % 101);
  }
  auditor->Publish();

  const std::string report = LeakageAuditor::DescribeStats(registry.Snapshot());
  EXPECT_NE(report.find("live leakage audit"), std::string::npos);
  EXPECT_NE(report.find("offset estimate     37"), std::string::npos);
  EXPECT_NE(report.find("ALERT"), std::string::npos);
}

}  // namespace
}  // namespace mope::obs
