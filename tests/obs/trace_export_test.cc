#include "obs/trace_export.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "obs/clock.h"
#include "obs/trace.h"

namespace mope::obs {
namespace {

std::string ReadGolden(const std::string& name) {
  const std::string path = std::string(MOPE_TEST_DATA_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing golden file " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// The exporter's output is a wire format consumed by an external tool
// (chrome://tracing / Perfetto), so its exact bytes are contract: a golden
// file catches accidental format drift that structural asserts would miss.
// The trace is driven by a ManualClock, so the bytes are fully determined.
TEST(TraceExportTest, ChromeTraceMatchesGoldenFile) {
  ManualClock clock(0, 1000);  // every clock read is 1us after the previous
  // Forced trace id: the golden bytes must not depend on how many traces
  // other tests created before this one.
  Trace trace("q:0 sales.day [3,17]", &clock, /*forced_id=*/9000);
  const uint32_t outer = trace.StartSpan("proxy.query");
  const uint32_t inner = trace.StartSpan("net.roundtrip");
  trace.IncrementCounter("server.rows_scanned", 42);
  trace.IncrementCounter("proxy.fake_queries", 7);
  trace.EndSpan(inner);
  trace.EndSpan(outer);
  trace.StartSpan("abandoned");  // left open: must export with dur 0

  EXPECT_EQ(ExportChromeTrace(trace),
            ReadGolden("trace_export_golden.json"));
}

TEST(TraceExportTest, EscapesControlAndQuoteCharacters) {
  ManualClock clock(0, 1000);
  Trace trace("tab\there \"quoted\"\n", &clock);
  const uint32_t span = trace.StartSpan("back\\slash");
  trace.EndSpan(span);
  const std::string json = ExportChromeTrace(trace);
  EXPECT_NE(json.find("tab\\there \\\"quoted\\\"\\n"), std::string::npos);
  EXPECT_NE(json.find("back\\\\slash"), std::string::npos);
  EXPECT_EQ(json.find('\n'), std::string::npos);  // single-line JSON
}

TEST(TraceExportTest, EmptyTraceIsStillValidJson) {
  ManualClock clock(0, 1000);
  Trace trace("empty", &clock);
  const std::string json = ExportChromeTrace(trace);
  EXPECT_EQ(json.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("],\"otherData\":{\"trace_id\":\""),
            std::string::npos);
  EXPECT_EQ(json.back(), '}');
}

}  // namespace
}  // namespace mope::obs
