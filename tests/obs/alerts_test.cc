#include "obs/alerts.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/clock.h"
#include "obs/registry.h"

namespace mope::obs {
namespace {

/// Builds a name-sorted TypedSnapshot-like vector (Observe's contract).
std::vector<TypedSample> Samples(
    std::vector<TypedSample> samples) {
  std::sort(samples.begin(), samples.end(),
            [](const TypedSample& a, const TypedSample& b) {
              return a.name < b.name;
            });
  return samples;
}

uint64_t GaugeBits(int64_t v) { return static_cast<uint64_t>(v); }

TEST(ParseAlertRuleTest, RoundTripsTheGrammar) {
  const char* specs[] = {
      "p99_slow: server.dispatch_ns.p99 > 1e+08 for 3",
      "miss_rate: rate(storage.pool.misses) > 10000",
      "margin_drop: delta(leakage.gap.margin) < 0",
      "chi2: leakage.uniformity.chi2_milli >= "
      "leakage.uniformity.chi2_critical_milli",
      "floor: engine.queries <= 5",
  };
  for (const char* spec : specs) {
    auto rule = ParseAlertRule(spec);
    ASSERT_TRUE(rule.ok()) << spec << ": " << rule.status().ToString();
    EXPECT_EQ(FormatAlertRule(*rule), spec);
  }
}

TEST(ParseAlertRuleTest, ParsesEachPiece) {
  auto rule = ParseAlertRule("r1: rate(c.total) >= 2.5 for 4");
  ASSERT_TRUE(rule.ok());
  EXPECT_EQ(rule->name, "r1");
  EXPECT_EQ(rule->term, AlertTermKind::kRate);
  EXPECT_EQ(rule->metric, "c.total");
  EXPECT_EQ(rule->op, AlertComparator::kGe);
  EXPECT_FALSE(rule->rhs_is_metric);
  EXPECT_DOUBLE_EQ(rule->threshold, 2.5);
  EXPECT_EQ(rule->for_samples, 4u);

  auto metric_rhs = ParseAlertRule("r2: a < b");
  ASSERT_TRUE(metric_rhs.ok());
  EXPECT_TRUE(metric_rhs->rhs_is_metric);
  EXPECT_EQ(metric_rhs->rhs_metric, "b");
}

TEST(ParseAlertRuleTest, RejectsMalformedSpecs) {
  const char* bad[] = {
      "no colon here",                 // missing ':'
      "bad name!: m > 1",              // illegal rule name
      "r: > 1",                        // missing term
      "r: m ~ 1",                      // bad comparator
      "r: m > !!",                     // RHS neither number nor metric
      "r: m > 1 for 0",                // zero 'for'
      "r: m > 1 for x",                // non-numeric 'for'
      "r: m > 1 every 3",              // not 'for'
      "r: rate() > 1",                 // empty metric in rate()
      "r: m 1 2 3 4 5",                // wrong token count
  };
  for (const char* spec : bad) {
    EXPECT_TRUE(ParseAlertRule(spec).status().IsInvalidArgument()) << spec;
  }
}

TEST(AlertEngineTest, FiringAndResolvedEdgesUnderManualClock) {
  MetricsRegistry registry;
  ManualClock clock(100);
  AlertEngine engine(&registry, &clock);
  ASSERT_TRUE(engine.AddRuleSpec("hot: temp > 10").ok());

  engine.Observe(100, Samples({{"temp", MetricKind::kGauge, GaugeBits(5)}}));
  EXPECT_EQ(engine.firing_count(), 0u);
  EXPECT_EQ(registry.GetGauge("alerts.rule.hot")->Value(), 0);

  engine.Observe(200, Samples({{"temp", MetricKind::kGauge, GaugeBits(15)}}));
  EXPECT_EQ(engine.firing_count(), 1u);
  EXPECT_EQ(registry.GetGauge("alerts.rule.hot")->Value(), 1);
  EXPECT_EQ(registry.GetGauge("alerts.active")->Value(), 1);
  EXPECT_EQ(registry.GetCounter("alerts.transitions")->Value(), 1u);

  // Still breached: edge-triggered, so no new transition.
  engine.Observe(300, Samples({{"temp", MetricKind::kGauge, GaugeBits(20)}}));
  EXPECT_EQ(registry.GetCounter("alerts.transitions")->Value(), 1u);
  auto states = engine.States();
  ASSERT_EQ(states.size(), 1u);
  EXPECT_TRUE(states[0].firing);
  EXPECT_EQ(states[0].since_ts_ns, 200u);
  EXPECT_DOUBLE_EQ(states[0].last_value, 20.0);
  EXPECT_DOUBLE_EQ(states[0].last_threshold, 10.0);

  // One clean sample resolves.
  engine.Observe(400, Samples({{"temp", MetricKind::kGauge, GaugeBits(3)}}));
  EXPECT_EQ(engine.firing_count(), 0u);
  EXPECT_EQ(registry.GetGauge("alerts.rule.hot")->Value(), 0);
  EXPECT_EQ(registry.GetCounter("alerts.transitions")->Value(), 2u);
}

TEST(AlertEngineTest, ForRequiresConsecutiveBreaches) {
  MetricsRegistry registry;
  AlertEngine engine(&registry);
  ASSERT_TRUE(engine.AddRuleSpec("slow: p99 > 100 for 3").ok());

  const auto breach = Samples({{"p99", MetricKind::kDerived, 200}});
  const auto clean = Samples({{"p99", MetricKind::kDerived, 50}});

  engine.Observe(1, breach);
  engine.Observe(2, breach);
  EXPECT_EQ(engine.firing_count(), 0u);  // streak 2 < 3
  engine.Observe(3, clean);              // streak resets
  engine.Observe(4, breach);
  engine.Observe(5, breach);
  EXPECT_EQ(engine.firing_count(), 0u);
  engine.Observe(6, breach);
  EXPECT_EQ(engine.firing_count(), 1u);  // third consecutive breach
}

TEST(AlertEngineTest, DeltaNeedsTwoSamplesAndSeesSignedChange) {
  MetricsRegistry registry;
  AlertEngine engine(&registry);
  ASSERT_TRUE(engine.AddRuleSpec("rising: delta(margin) > 0").ok());

  engine.Observe(1, Samples({{"margin", MetricKind::kGauge, GaugeBits(-10)}}));
  EXPECT_FALSE(engine.States()[0].evaluated);  // first sample only primes

  engine.Observe(2, Samples({{"margin", MetricKind::kGauge, GaugeBits(-4)}}));
  EXPECT_TRUE(engine.States()[0].evaluated);
  EXPECT_DOUBLE_EQ(engine.States()[0].last_value, 6.0);  // -4 - (-10)
  EXPECT_EQ(engine.firing_count(), 1u);

  engine.Observe(3, Samples({{"margin", MetricKind::kGauge, GaugeBits(-9)}}));
  EXPECT_EQ(engine.firing_count(), 0u);  // delta -5 resolves
}

TEST(AlertEngineTest, RateIsPerSecondAndCounterResetAware) {
  MetricsRegistry registry;
  AlertEngine engine(&registry);
  ASSERT_TRUE(engine.AddRuleSpec("busy: rate(reqs) > 10").ok());

  // ts 0 is the "use the wall clock" sentinel, so the series starts at 1.
  engine.Observe(1, Samples({{"reqs", MetricKind::kCounter, 100}}));
  engine.Observe(1'000'000'001,
                 Samples({{"reqs", MetricKind::kCounter, 125}}));
  EXPECT_DOUBLE_EQ(engine.States()[0].last_value, 25.0);
  EXPECT_EQ(engine.firing_count(), 1u);

  // Counter reset: the post-reset value is the interval's contribution.
  engine.Observe(2'000'000'001, Samples({{"reqs", MetricKind::kCounter, 5}}));
  EXPECT_DOUBLE_EQ(engine.States()[0].last_value, 5.0);
  EXPECT_EQ(engine.firing_count(), 0u);
}

TEST(AlertEngineTest, MetricRhsComparesTwoLiveSeries) {
  MetricsRegistry registry;
  AlertEngine engine(&registry);
  ASSERT_TRUE(engine.AddRuleSpec("chi2: stat > critical").ok());

  engine.Observe(1, Samples({{"critical", MetricKind::kGauge, GaugeBits(50)},
                             {"stat", MetricKind::kGauge, GaugeBits(40)}}));
  EXPECT_EQ(engine.firing_count(), 0u);
  engine.Observe(2, Samples({{"critical", MetricKind::kGauge, GaugeBits(50)},
                             {"stat", MetricKind::kGauge, GaugeBits(60)}}));
  EXPECT_EQ(engine.firing_count(), 1u);
  EXPECT_DOUBLE_EQ(engine.States()[0].last_threshold, 50.0);

  // RHS metric vanishing parks the rule without resolving it.
  engine.Observe(3, Samples({{"stat", MetricKind::kGauge, GaugeBits(60)}}));
  EXPECT_FALSE(engine.States()[0].evaluated);
  EXPECT_EQ(engine.firing_count(), 1u);
}

TEST(AlertEngineTest, MissingMetricParksTheRule) {
  MetricsRegistry registry;
  AlertEngine engine(&registry);
  ASSERT_TRUE(engine.AddRuleSpec("r: ghost > 1").ok());
  engine.Observe(1, Samples({{"other", MetricKind::kGauge, 0}}));
  EXPECT_FALSE(engine.States()[0].evaluated);
  EXPECT_EQ(engine.firing_count(), 0u);
}

TEST(AlertEngineTest, DuplicateRuleNamesAreRejected) {
  MetricsRegistry registry;
  AlertEngine engine(&registry);
  ASSERT_TRUE(engine.AddRuleSpec("r: m > 1").ok());
  EXPECT_TRUE(engine.AddRuleSpec("r: m > 2").IsAlreadyExists());
  EXPECT_EQ(engine.rule_count(), 1u);
}

TEST(AlertEngineTest, DefaultRuleSetInstalls) {
  MetricsRegistry registry;
  AlertEngine engine(&registry);
  engine.AddDefaultRules();
  EXPECT_EQ(engine.rule_count(), 5u);
  // Every default rule gets its 0/1 gauge up front.
  EXPECT_EQ(registry.GetGauge("alerts.rule.gap_margin_converging")->Value(),
            0);
  EXPECT_EQ(registry.GetGauge("alerts.rule.wal_fsync_stall")->Value(), 0);
}

TEST(AlertEngineTest, RenderJsonCarriesRuleStateAndFiringCount) {
  MetricsRegistry registry;
  AlertEngine engine(&registry);
  ASSERT_TRUE(engine.AddRuleSpec("hot: temp > 10").ok());
  engine.Observe(5, Samples({{"temp", MetricKind::kGauge, GaugeBits(99)}}));

  const std::string json = engine.RenderJson();
  EXPECT_NE(json.find("\"firing\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"hot\""), std::string::npos);
  EXPECT_NE(json.find("\"rule\":\"hot: temp > 10\""), std::string::npos);
  EXPECT_NE(json.find("\"since_ts_ns\":5"), std::string::npos);
  EXPECT_NE(json.find("\"value\":99"), std::string::npos);
  EXPECT_NE(json.find("\"threshold\":10"), std::string::npos);
}

}  // namespace
}  // namespace mope::obs
