#include "obs/clock.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace mope::obs {
namespace {

TEST(ManualClockTest, TimeMovesOnlyWhenAdvanced) {
  ManualClock clock(1000);
  EXPECT_EQ(clock.NowNanos(), 1000u);
  EXPECT_EQ(clock.NowNanos(), 1000u);
  clock.AdvanceNanos(5);
  EXPECT_EQ(clock.NowNanos(), 1005u);
  clock.AdvanceMillis(2);
  EXPECT_EQ(clock.NowNanos(), 1005u + 2'000'000u);
}

TEST(ManualClockTest, AutoAdvanceIsStrictlyMonotone) {
  ManualClock clock(/*start_ns=*/0, /*auto_advance_ns=*/7);
  uint64_t prev = 0;
  for (int i = 0; i < 100; ++i) {
    const uint64_t now = clock.NowNanos();
    EXPECT_GT(now, prev);
    prev = now;
  }
  EXPECT_EQ(prev, 700u);  // 100 reads x 7ns
}

TEST(ManualClockTest, NowMillisScalesNanos) {
  ManualClock clock(3'000'000);
  EXPECT_DOUBLE_EQ(clock.NowMillis(), 3.0);
}

TEST(ManualClockTest, AutoAdvanceIsThreadSafeAndUnique) {
  // Concurrent readers each observe a distinct timestamp: the fetch_add
  // hands out disjoint ticks, which is what keeps multi-threaded span
  // timings well-ordered under test.
  ManualClock clock(0, 1);
  constexpr int kThreads = 4;
  constexpr int kReads = 1000;
  std::vector<std::thread> threads;
  std::vector<std::vector<uint64_t>> seen(kThreads);
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&clock, &seen, t] {
      for (int i = 0; i < kReads; ++i) seen[t].push_back(clock.NowNanos());
    });
  }
  for (auto& thread : threads) thread.join();
  std::vector<bool> hit(kThreads * kReads + 1, false);
  for (const auto& per_thread : seen) {
    for (const uint64_t ts : per_thread) {
      ASSERT_GE(ts, 1u);
      ASSERT_LE(ts, static_cast<uint64_t>(kThreads * kReads));
      EXPECT_FALSE(hit[ts]) << "timestamp handed out twice: " << ts;
      hit[ts] = true;
    }
  }
}

TEST(SystemClockTest, IsMonotoneNonDecreasing) {
  Clock* clock = SystemClock();
  ASSERT_NE(clock, nullptr);
  EXPECT_EQ(clock, SystemClock());  // one process-wide instance
  uint64_t prev = clock->NowNanos();
  for (int i = 0; i < 1000; ++i) {
    const uint64_t now = clock->NowNanos();
    EXPECT_GE(now, prev);
    prev = now;
  }
}

}  // namespace
}  // namespace mope::obs
