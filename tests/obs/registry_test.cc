#include "obs/registry.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace mope::obs {
namespace {

TEST(CounterTest, IncrementAndReset) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.Value(), 42u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(GaugeTest, SetAddAndNegatives) {
  Gauge g;
  g.Set(10);
  g.Add(-25);
  EXPECT_EQ(g.Value(), -15);
  g.Reset();
  EXPECT_EQ(g.Value(), 0);
}

TEST(ExpHistogramTest, BucketIndexPowersOfTwo) {
  // Bucket i holds (2^(i-1), 2^i]; 0 and 1 share bucket 0; exact powers of
  // two sit in their own bucket.
  EXPECT_EQ(ExpHistogram::BucketIndex(0), 0);
  EXPECT_EQ(ExpHistogram::BucketIndex(1), 0);
  EXPECT_EQ(ExpHistogram::BucketIndex(2), 1);
  EXPECT_EQ(ExpHistogram::BucketIndex(3), 2);
  EXPECT_EQ(ExpHistogram::BucketIndex(4), 2);
  EXPECT_EQ(ExpHistogram::BucketIndex(5), 3);
  EXPECT_EQ(ExpHistogram::BucketIndex(1024), 10);
  EXPECT_EQ(ExpHistogram::BucketIndex(1025), 11);
  // Beyond 2^kMaxPow2 everything lands in the overflow bucket.
  EXPECT_EQ(ExpHistogram::BucketIndex(~uint64_t{0}),
            ExpHistogram::kMaxPow2 + 1);
}

TEST(ExpHistogramTest, ObserveCountsSumsAndBuckets) {
  ExpHistogram h;
  h.Observe(1);
  h.Observe(3);
  h.Observe(3);
  h.Observe(100);
  EXPECT_EQ(h.Count(), 4u);
  EXPECT_EQ(h.Sum(), 107u);
  EXPECT_EQ(h.BucketCount(0), 1u);  // the 1
  EXPECT_EQ(h.BucketCount(2), 2u);  // the 3s: (2,4]
  EXPECT_EQ(h.BucketCount(7), 1u);  // 100: (64,128]
  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Sum(), 0u);
  EXPECT_EQ(h.BucketCount(2), 0u);
}

TEST(ExpHistogramTest, ApproxQuantile) {
  ExpHistogram h;
  EXPECT_EQ(h.ApproxQuantile(0.5), 0u);  // empty
  for (int i = 0; i < 90; ++i) h.Observe(3);    // bucket bound 4
  for (int i = 0; i < 10; ++i) h.Observe(900);  // bucket bound 1024
  EXPECT_EQ(h.ApproxQuantile(0.5), 4u);
  EXPECT_EQ(h.ApproxQuantile(0.89), 4u);
  EXPECT_EQ(h.ApproxQuantile(0.99), 1024u);
  EXPECT_EQ(h.ApproxQuantile(1.0), 1024u);
}

TEST(ExpHistogramTest, OverflowBucketHasInfiniteBound) {
  EXPECT_EQ(ExpHistogram::BucketBound(ExpHistogram::kMaxPow2 + 1),
            ~uint64_t{0});
  EXPECT_EQ(ExpHistogram::BucketBound(3), 8u);
}

TEST(MetricsRegistryTest, FindOrCreateReturnsStablePointers) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("x.count");
  Counter* b = registry.GetCounter("x.count");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, registry.GetCounter("y.count"));
  // Same name, different families — distinct metrics.
  EXPECT_NE(static_cast<void*>(registry.GetGauge("x.count")),
            static_cast<void*>(a));
}

TEST(MetricsRegistryTest, SnapshotFlattensAndSorts) {
  MetricsRegistry registry;
  registry.GetCounter("b.counter")->Increment(7);
  registry.GetCounter("a.counter")->Increment(1);
  registry.GetGauge("m.gauge")->Set(5);
  ExpHistogram* h = registry.GetHistogram("lat");
  h->Observe(3);
  h->Observe(3);

  const auto snapshot = registry.Snapshot();
  // Both samples sit in bucket (2,4]: the interpolated p50 is its midpoint,
  // the tail quantiles approach (and truncate toward) the upper bound.
  const std::vector<std::pair<std::string, uint64_t>> expected = {
      {"a.counter", 1},
      {"b.counter", 7},
      {"lat.count", 2},
      {"lat.le.4", 2},
      {"lat.p50", 3},
      {"lat.p95", 3},
      {"lat.p99", 3},
      {"lat.sum", 6},
      {"m.gauge", 5},
  };
  EXPECT_EQ(snapshot, expected);
}

TEST(MetricsRegistryTest, RenderTextGolden) {
  MetricsRegistry registry;
  registry.GetCounter("net.frames")->Increment(3);
  registry.GetGauge("sessions.open")->Set(2);
  registry.GetHistogram("lat.ns")->Observe(5);

  const std::string text = registry.RenderText();
  EXPECT_NE(text.find("# TYPE net_frames counter\nnet_frames 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE sessions_open gauge\nsessions_open 2\n"),
            std::string::npos);
  // 5 lands in bucket (4,8]; the cumulative series includes it from le=8 on.
  EXPECT_NE(text.find("lat_ns_bucket{le=\"8\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("lat_ns_bucket{le=\"+Inf\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("lat_ns_sum 5\n"), std::string::npos);
  EXPECT_NE(text.find("lat_ns_count 1\n"), std::string::npos);
  // Quantiles ride along as companion gauges after _sum/_count, keeping the
  // core series in Prometheus's native histogram convention.
  const size_t count_pos = text.find("lat_ns_count 1\n");
  EXPECT_NE(text.find("# TYPE lat_ns_p50 gauge\nlat_ns_p50 6\n"),
            std::string::npos);
  EXPECT_NE(text.find("lat_ns_p95 7\n"), std::string::npos);
  EXPECT_NE(text.find("lat_ns_p99 7\n"), std::string::npos);
  EXPECT_GT(text.find("lat_ns_p50"), count_pos);
}

TEST(MetricsRegistryTest, RenderTextEmitsZeroSeriesForEmptyHistogram) {
  // A never-observed histogram still renders a complete series — explicit
  // zero bucket/sum/count lines plus zero quantile gauges — so a scraper's
  // rate()/dashboard queries over a fresh series never gap.
  MetricsRegistry registry;
  registry.GetHistogram("idle");
  const std::string text = registry.RenderText();
  EXPECT_NE(text.find("idle_bucket{le=\"+Inf\"} 0\n"), std::string::npos);
  EXPECT_NE(text.find("idle_sum 0\n"), std::string::npos);
  EXPECT_NE(text.find("idle_count 0\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE idle_p50 gauge\nidle_p50 0\n"),
            std::string::npos);
  EXPECT_NE(text.find("idle_p95 0\n"), std::string::npos);
  EXPECT_NE(text.find("idle_p99 0\n"), std::string::npos);
}

TEST(MetricsRegistryTest, TypedSnapshotCarriesKinds) {
  MetricsRegistry registry;
  registry.GetCounter("c")->Increment(3);
  registry.GetGauge("g")->Set(-2);
  registry.GetHistogram("h")->Observe(5);

  const std::vector<TypedSample> typed = registry.TypedSnapshot();
  // Sorted by name; histogram buckets are skipped but count/sum/quantiles
  // ride along with temporal kinds attached.
  std::vector<std::string> names;
  names.reserve(typed.size());
  for (const auto& s : typed) names.push_back(s.name);
  const std::vector<std::string> expected = {
      "c", "g", "h.count", "h.p50", "h.p95", "h.p99", "h.sum"};
  EXPECT_EQ(names, expected);
  EXPECT_EQ(typed[0].kind, MetricKind::kCounter);
  EXPECT_EQ(typed[0].value, 3u);
  EXPECT_EQ(typed[1].kind, MetricKind::kGauge);
  EXPECT_EQ(static_cast<int64_t>(typed[1].value), -2);
  EXPECT_EQ(typed[2].kind, MetricKind::kCounter);  // h.count is monotone
  EXPECT_EQ(typed[3].kind, MetricKind::kDerived);  // quantiles are levels
  EXPECT_EQ(typed[6].kind, MetricKind::kCounter);  // h.sum is monotone
}

TEST(MetricsRegistryTest, RenderJsonGolden) {
  MetricsRegistry registry;
  registry.GetCounter("c")->Increment(1);
  registry.GetGauge("g")->Set(-2);
  registry.GetHistogram("h")->Observe(2);
  EXPECT_EQ(registry.RenderJson(),
            "{\"counters\":{\"c\":1},\"gauges\":{\"g\":-2},"
            "\"histograms\":{\"h\":{\"count\":1,\"sum\":2,"
            "\"p50\":1,\"p95\":1,\"p99\":1,"
            "\"buckets\":{\"2\":1}}}}");
}

TEST(ExpHistogramTest, QuantileInterpolatedWithinBuckets) {
  ExpHistogram h;
  EXPECT_EQ(h.QuantileInterpolated(0.5), 0u);  // empty
  // 100 samples uniform-ish across (64,128]: quantiles interpolate linearly
  // through the bucket instead of snapping to the 128 upper bound.
  for (int i = 0; i < 100; ++i) h.Observe(100);
  EXPECT_EQ(h.QuantileInterpolated(0.0), 64u);
  EXPECT_EQ(h.QuantileInterpolated(0.5), 96u);    // 64 + 0.5 * 64
  EXPECT_EQ(h.QuantileInterpolated(1.0), 128u);
  // Two-bucket split: 90 in (2,4], 10 in (512,1024]; p50 stays in the low
  // bucket, p99 lands 90% through the high one.
  ExpHistogram split;
  for (int i = 0; i < 90; ++i) split.Observe(3);
  for (int i = 0; i < 10; ++i) split.Observe(900);
  EXPECT_LE(split.QuantileInterpolated(0.5), 4u);
  EXPECT_GT(split.QuantileInterpolated(0.99), 512u);
  EXPECT_LE(split.QuantileInterpolated(0.99), 1024u);
  // Interpolated beats the bucket-bound ApproxQuantile's 1024 snap.
  EXPECT_LT(split.QuantileInterpolated(0.99), split.ApproxQuantile(0.99));
}

TEST(MetricsRegistryTest, ResetAllZeroesButKeepsPointers) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("c");
  ExpHistogram* h = registry.GetHistogram("h");
  c->Increment(9);
  h->Observe(9);
  registry.ResetAll();
  EXPECT_EQ(c->Value(), 0u);
  EXPECT_EQ(h->Count(), 0u);
  EXPECT_EQ(registry.GetCounter("c"), c);
}

TEST(MetricsRegistryTest, GlobalRegistryIsSingleton) {
  EXPECT_EQ(Registry(), Registry());
}

// tsan coverage: concurrent writers on every metric family plus a reader
// taking snapshots must be race-free — this is the pattern a live stats
// endpoint exercises against a running server.
TEST(MetricsRegistryTest, ConcurrentUpdatesAndSnapshots) {
  MetricsRegistry registry;
  constexpr int kThreads = 4;
  constexpr int kIters = 5000;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&registry] {
      Counter* c = registry.GetCounter("shared.counter");
      Gauge* g = registry.GetGauge("shared.gauge");
      ExpHistogram* h = registry.GetHistogram("shared.hist");
      for (int i = 0; i < kIters; ++i) {
        c->Increment();
        g->Add(1);
        h->Observe(static_cast<uint64_t>(i));
      }
    });
  }
  std::thread reader([&registry] {
    for (int i = 0; i < 200; ++i) {
      const auto snapshot = registry.Snapshot();
      (void)registry.RenderText();
    }
  });
  for (auto& w : writers) w.join();
  reader.join();
  EXPECT_EQ(registry.GetCounter("shared.counter")->Value(),
            static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_EQ(registry.GetGauge("shared.gauge")->Value(), kThreads * kIters);
  EXPECT_EQ(registry.GetHistogram("shared.hist")->Count(),
            static_cast<uint64_t>(kThreads) * kIters);
}

}  // namespace
}  // namespace mope::obs
