#include "obs/log.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/clock.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace mope::obs {
namespace {

/// Captures every emitted line, in order. Local Logger instances are used
/// throughout so tests never mutate the process-wide Logger::Default().
struct CapturedLines {
  std::vector<std::string> lines;

  static void Sink(void* user_data, const std::string& line) {
    static_cast<CapturedLines*>(user_data)->lines.push_back(line);
  }

  void Attach(Logger* logger) { logger->SetSink(&Sink, this); }
};

TEST(LogTest, TextFormatIsDeterministicWithManualClock) {
  Logger logger;
  CapturedLines captured;
  captured.Attach(&logger);
  ManualClock clock(12000);
  logger.SetClock(&clock);

  LogEvent(&logger, LogLevel::kInfo, "storage", "recovered")
      .Arg("tables", static_cast<uint64_t>(3))
      .Arg("crash_recovery", true);

  ASSERT_EQ(captured.lines.size(), 1u);
  EXPECT_EQ(captured.lines[0],
            "ts_ns=12000 level=info subsystem=storage event=recovered "
            "tables=3 crash_recovery=true");
}

TEST(LogTest, JsonFormatQuotesStringsAndLeavesNumbersBare) {
  Logger logger;
  CapturedLines captured;
  captured.Attach(&logger);
  ManualClock clock(5);
  logger.SetClock(&clock);
  logger.SetFormat(LogFormat::kJson);

  LogEvent(&logger, LogLevel::kWarn, "net", "rejected")
      .Arg("peer", "10.0.0.1")
      .Arg("pending", static_cast<uint64_t>(7));

  ASSERT_EQ(captured.lines.size(), 1u);
  EXPECT_EQ(captured.lines[0],
            "{\"ts_ns\":5,\"level\":\"warn\",\"subsystem\":\"net\","
            "\"event\":\"rejected\",\"peer\":\"10.0.0.1\",\"pending\":7}");
}

TEST(LogTest, TextValuesWithSpacesAreQuotedAndEscaped) {
  Logger logger;
  CapturedLines captured;
  captured.Attach(&logger);
  ManualClock clock(1);
  logger.SetClock(&clock);

  LogEvent(&logger, LogLevel::kError, "main", "failed")
      .Arg("status", "NotFound: no such \"table\"");

  ASSERT_EQ(captured.lines.size(), 1u);
  EXPECT_EQ(captured.lines[0],
            "ts_ns=1 level=error subsystem=main event=failed "
            "status=\"NotFound: no such \\\"table\\\"\"");
}

TEST(LogTest, SeverityFloorFiltersAndCostsNothing) {
  Logger logger;
  CapturedLines captured;
  captured.Attach(&logger);

  // Default floor is kInfo: debug events are inert at construction.
  LogEvent(&logger, LogLevel::kDebug, "net", "noise").Arg("k", "v");
  EXPECT_TRUE(captured.lines.empty());
  EXPECT_EQ(logger.emitted_total(), 0u);

  logger.SetMinLevel(LogLevel::kDebug);
  LogEvent(&logger, LogLevel::kDebug, "net", "now_visible");
  EXPECT_EQ(captured.lines.size(), 1u);

  logger.SetMinLevel(LogLevel::kError);
  LogEvent(&logger, LogLevel::kWarn, "net", "filtered_again");
  EXPECT_EQ(captured.lines.size(), 1u);
  EXPECT_EQ(logger.emitted_total(), 1u);
}

TEST(LogTest, SubsystemOverrideWinsOverGlobalFloor) {
  Logger logger;
  CapturedLines captured;
  captured.Attach(&logger);

  logger.SetSubsystemLevel("storage", LogLevel::kDebug);
  EXPECT_TRUE(logger.ShouldLog(LogLevel::kDebug, "storage"));
  EXPECT_FALSE(logger.ShouldLog(LogLevel::kDebug, "net"));

  LogEvent(&logger, LogLevel::kDebug, "storage", "verbose");
  LogEvent(&logger, LogLevel::kDebug, "net", "still_quiet");
  ASSERT_EQ(captured.lines.size(), 1u);
  EXPECT_NE(captured.lines[0].find("subsystem=storage"), std::string::npos);

  logger.ClearSubsystemLevels();
  EXPECT_FALSE(logger.ShouldLog(LogLevel::kDebug, "storage"));
}

TEST(LogTest, RateLimiterDropsBurstsAndRefillsFromClock) {
  Logger logger;
  CapturedLines captured;
  captured.Attach(&logger);
  ManualClock clock(1000000000);
  logger.SetClock(&clock);
  MetricsRegistry registry;
  logger.SetDropCounterRegistry(&registry);
  logger.SetRateLimit(/*rate_per_sec=*/1.0, /*burst=*/2.0);

  for (int i = 0; i < 5; ++i) {
    LogEvent(&logger, LogLevel::kInfo, "net", "spam").Arg("i", i);
  }
  // Burst of 2 admitted, 3 dropped.
  EXPECT_EQ(captured.lines.size(), 2u);
  EXPECT_EQ(logger.dropped_total(), 3u);
  EXPECT_EQ(registry.GetCounter("obs.log.dropped")->Value(), 3);

  // One second refills exactly one token.
  clock.AdvanceNanos(1000000000);
  LogEvent(&logger, LogLevel::kInfo, "net", "after_refill");
  LogEvent(&logger, LogLevel::kInfo, "net", "over_budget");
  EXPECT_EQ(captured.lines.size(), 3u);
  EXPECT_EQ(logger.dropped_total(), 4u);
}

TEST(LogTest, ActiveTraceIdIsAttached) {
  Logger logger;
  CapturedLines captured;
  captured.Attach(&logger);
  ManualClock clock(50);
  logger.SetClock(&clock);

  {
    Trace trace("request", &clock, /*forced_id=*/777);
    const ScopedTraceActivation activation(&trace);
    LogEvent(&logger, LogLevel::kInfo, "server", "slow_query")
        .Arg("elapsed_ns", static_cast<uint64_t>(9));
  }
  LogEvent(&logger, LogLevel::kInfo, "server", "no_trace");

  ASSERT_EQ(captured.lines.size(), 2u);
  EXPECT_NE(captured.lines[0].find(" trace=777"), std::string::npos);
  EXPECT_EQ(captured.lines[1].find("trace="), std::string::npos);
}

TEST(LogTest, ForcedTraceIdAdoptsWireId) {
  // The Trace ctor's forced_id is what lets the server adopt a client's
  // wire trace id; 0 must still draw a fresh process-unique id.
  ManualClock clock(0);
  Trace forced("server.dispatch", &clock, 4242);
  EXPECT_EQ(forced.trace_id(), 4242u);
  Trace drawn_a("a", &clock);
  Trace drawn_b("b", &clock, 0);
  EXPECT_NE(drawn_a.trace_id(), 0u);
  EXPECT_NE(drawn_b.trace_id(), 0u);
  EXPECT_NE(drawn_a.trace_id(), drawn_b.trace_id());
}

TEST(LogTest, ParseLogLevelRoundTrips) {
  LogLevel level;
  ASSERT_TRUE(ParseLogLevel("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  ASSERT_TRUE(ParseLogLevel("error", &level));
  EXPECT_EQ(level, LogLevel::kError);
  EXPECT_FALSE(ParseLogLevel("verbose", &level));
  EXPECT_STREQ(LogLevelName(LogLevel::kWarn), "warn");
}

TEST(LogTest, NullSinkRestoresDefaultWithoutCrashing) {
  Logger logger;
  CapturedLines captured;
  captured.Attach(&logger);
  LogEvent(&logger, LogLevel::kInfo, "t", "captured");
  EXPECT_EQ(captured.lines.size(), 1u);
  // Restoring the default stderr sink must not emit into the old capture.
  logger.SetSink(nullptr, nullptr);
  EXPECT_EQ(captured.lines.size(), 1u);
}

}  // namespace
}  // namespace mope::obs
