#include "obs/timeseries.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/alerts.h"
#include "obs/clock.h"
#include "obs/registry.h"

namespace mope::obs {
namespace {

TEST(TimeSeriesSamplerTest, SampleOnceIsDeterministicUnderManualClock) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("engine.queries");
  Gauge* g = registry.GetGauge("leakage.gap.margin");
  ManualClock clock(1'000);

  TimeSeriesOptions options;
  options.window_capacity = 8;
  TimeSeriesSampler sampler(&registry, options, &clock);

  c->Increment(5);
  g->Set(-3);
  sampler.SampleOnce();
  clock.AdvanceNanos(1'000'000'000);
  c->Increment(7);
  g->Set(4);
  sampler.SampleOnce();

  auto views = sampler.Query("engine.queries", 8);
  ASSERT_TRUE(views.ok()) << views.status().ToString();
  ASSERT_EQ(views->size(), 1u);
  const SeriesView& view = (*views)[0];
  EXPECT_EQ(view.kind, MetricKind::kCounter);
  ASSERT_EQ(view.points.size(), 2u);
  EXPECT_EQ(view.points[0].ts_ns, 1'000u);
  EXPECT_EQ(view.points[0].value, 5u);
  EXPECT_EQ(view.points[1].ts_ns, 1'000'001'000u);
  EXPECT_EQ(view.points[1].value, 12u);
  EXPECT_EQ(view.rollup.delta, 7u);
  EXPECT_NEAR(view.rollup.rate_per_sec, 7.0, 1e-9);

  auto gauge_views = sampler.Query("leakage.gap.margin", 8);
  ASSERT_TRUE(gauge_views.ok());
  const SeriesView& gauge_view = (*gauge_views)[0];
  EXPECT_EQ(gauge_view.kind, MetricKind::kGauge);
  // Signed rollups: min is -3, max 4, mean 0.5.
  EXPECT_EQ(static_cast<int64_t>(gauge_view.rollup.min), -3);
  EXPECT_EQ(static_cast<int64_t>(gauge_view.rollup.max), 4);
  EXPECT_NEAR(gauge_view.rollup.mean, 0.5, 1e-9);

  EXPECT_EQ(sampler.samples_taken(), 2u);
}

TEST(TimeSeriesSamplerTest, RingEvictsOldestOnceFull) {
  MetricsRegistry registry;
  TimeSeriesOptions options;
  options.window_capacity = 4;
  TimeSeriesSampler sampler(&registry, options);

  for (uint64_t i = 1; i <= 6; ++i) {
    sampler.Ingest(i * 100, "m", MetricKind::kCounter, i);
  }
  auto views = sampler.Query("m", 4);
  ASSERT_TRUE(views.ok());
  const std::vector<SeriesPoint>& pts = (*views)[0].points;
  ASSERT_EQ(pts.size(), 4u);
  // Oldest-first, values 3..6 survive the eviction of 1 and 2.
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(pts[i].value, i + 3) << "point " << i;
    EXPECT_EQ(pts[i].ts_ns, (i + 3) * 100) << "point " << i;
  }

  // A narrower window returns the tail of the retained points.
  auto tail = sampler.Query("m", 2);
  ASSERT_TRUE(tail.ok());
  ASSERT_EQ((*tail)[0].points.size(), 2u);
  EXPECT_EQ((*tail)[0].points[0].value, 5u);
  EXPECT_EQ((*tail)[0].points[1].value, 6u);
}

TEST(TimeSeriesSamplerTest, WindowValidationAndUnknownPrefix) {
  MetricsRegistry registry;
  TimeSeriesOptions options;
  options.window_capacity = 8;
  TimeSeriesSampler sampler(&registry, options);
  sampler.Ingest(1, "known", MetricKind::kGauge, 0);

  EXPECT_TRUE(sampler.Query("known", 0).status().IsInvalidArgument());
  EXPECT_TRUE(sampler.Query("known", 9).status().IsInvalidArgument());
  EXPECT_TRUE(sampler.Query("unknown", 4).status().IsNotFound());
  EXPECT_TRUE(sampler.RenderJson("unknown", 4).status().IsNotFound());
}

TEST(TimeSeriesSamplerTest, CounterDeltaIsResetAware) {
  MetricsRegistry registry;
  TimeSeriesSampler sampler(&registry, TimeSeriesOptions{});
  sampler.Ingest(0, "c", MetricKind::kCounter, 10);
  sampler.Ingest(1'000'000'000, "c", MetricKind::kCounter, 25);
  sampler.Ingest(2'000'000'000, "c", MetricKind::kCounter, 5);  // reset

  auto views = sampler.Query("c", 8);
  ASSERT_TRUE(views.ok());
  // 10 -> 25 contributes 15; the reset to 5 contributes 5.
  EXPECT_EQ((*views)[0].rollup.delta, 20u);
  EXPECT_NEAR((*views)[0].rollup.rate_per_sec, 10.0, 1e-9);
}

TEST(TimeSeriesSamplerTest, SeriesCapDropsNewMetricsNotMemory) {
  MetricsRegistry registry;
  TimeSeriesOptions options;
  options.max_series = 2;
  TimeSeriesSampler sampler(&registry, options);

  sampler.Ingest(1, "a", MetricKind::kGauge, 1);
  sampler.Ingest(1, "b", MetricKind::kGauge, 2);
  sampler.Ingest(1, "z.overflow", MetricKind::kGauge, 3);
  sampler.Ingest(2, "a", MetricKind::kGauge, 4);  // existing: still accepted

  EXPECT_EQ(sampler.series_count(), 2u);
  EXPECT_EQ(registry.GetCounter("obs.timeseries.dropped_series")->Value(), 1u);
  EXPECT_TRUE(sampler.Query("z.overflow", 4).status().IsNotFound());
  auto a = sampler.Query("a", 4);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ((*a)[0].points.size(), 2u);
}

TEST(TimeSeriesSamplerTest, RenderJsonShape) {
  MetricsRegistry registry;
  TimeSeriesSampler sampler(&registry, TimeSeriesOptions{});
  sampler.Ingest(10, "net.bytes", MetricKind::kCounter, 100);
  sampler.Ingest(20, "net.bytes", MetricKind::kCounter, 150);
  sampler.Ingest(10, "leakage.gap.margin", MetricKind::kGauge,
                 static_cast<uint64_t>(int64_t{-7}));

  auto json = sampler.RenderJson("net.", 8);
  ASSERT_TRUE(json.ok());
  EXPECT_NE(json->find("\"window\":8"), std::string::npos) << *json;
  EXPECT_NE(json->find("\"name\":\"net.bytes\""), std::string::npos);
  EXPECT_NE(json->find("\"kind\":\"counter\""), std::string::npos);
  EXPECT_NE(json->find("[10,100],[20,150]"), std::string::npos) << *json;
  EXPECT_NE(json->find("\"delta\":50"), std::string::npos);

  // Gauge points render signed.
  auto gauge_json = sampler.RenderJson("leakage.", 8);
  ASSERT_TRUE(gauge_json.ok());
  EXPECT_NE(gauge_json->find("[10,-7]"), std::string::npos) << *gauge_json;
  // No counter-only rollup fields on a gauge series.
  EXPECT_EQ(gauge_json->find("rate_per_sec"), std::string::npos);
}

TEST(TimeSeriesSamplerTest, SampleOncePushesSnapshotIntoAlertEngine) {
  MetricsRegistry registry;
  Gauge* g = registry.GetGauge("leakage.gap.margin");
  ManualClock clock(1'000);
  TimeSeriesSampler sampler(&registry, TimeSeriesOptions{}, &clock);
  AlertEngine engine(&registry, &clock);
  ASSERT_TRUE(engine.AddRuleSpec("margin_low: leakage.gap.margin < 0").ok());
  sampler.SetAlertEngine(&engine);

  g->Set(5);
  sampler.SampleOnce();
  EXPECT_EQ(engine.firing_count(), 0u);
  g->Set(-1);
  clock.AdvanceNanos(1'000'000'000);
  sampler.SampleOnce();
  EXPECT_EQ(engine.firing_count(), 1u);
  EXPECT_EQ(registry.GetGauge("alerts.active")->Value(), 1);

  // Detaching stops the pushes.
  sampler.SetAlertEngine(nullptr);
  g->Set(5);
  clock.AdvanceNanos(1'000'000'000);
  sampler.SampleOnce();
  EXPECT_EQ(engine.firing_count(), 1u);
}

TEST(TimeSeriesSamplerTest, BackgroundThreadSamplesOnItsPeriod) {
  MetricsRegistry registry;
  registry.GetCounter("c")->Increment();
  TimeSeriesOptions options;
  options.sample_period_ns = 1'000'000;  // 1ms
  TimeSeriesSampler sampler(&registry, options);
  sampler.Start();
  // The run loop polls every 5ms; give it a few cycles.
  while (sampler.samples_taken() < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  sampler.Stop();
  EXPECT_GE(sampler.samples_taken(), 2u);
  EXPECT_TRUE(sampler.Query("c", 8).ok());
}

}  // namespace
}  // namespace mope::obs
