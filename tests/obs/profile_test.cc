/// ProfileCollector semantics: merge-by-name accumulation, Set overwrite,
/// and the thread-local activation scoping the wire and embedded layers key
/// off to decide whether a query is being profiled.

#include "obs/profile.h"

#include <gtest/gtest.h>

#include <thread>

namespace mope::obs {
namespace {

TEST(ProfileCollectorTest, AddAccumulatesByName) {
  ProfileCollector collector;
  collector.Add("srv.engine.rows_returned", 10);
  collector.Add("srv.engine.rows_returned", 5);
  collector.Add("net.frames", 1);
  EXPECT_EQ(collector.Value("srv.engine.rows_returned"), 15u);
  EXPECT_EQ(collector.Value("net.frames"), 1u);
  EXPECT_EQ(collector.Value("absent"), 0u);
}

TEST(ProfileCollectorTest, SetOverwrites) {
  ProfileCollector collector;
  collector.Set("profile.trace_id", 7);
  collector.Set("profile.trace_id", 9);
  // Ids are identities, not deltas: a multi-request query must end with one
  // trace id, not their sum.
  EXPECT_EQ(collector.Value("profile.trace_id"), 9u);
}

TEST(ProfileCollectorTest, EntriesAreNameOrdered) {
  ProfileCollector collector;
  collector.Add("zeta", 1);
  collector.Add("alpha", 2);
  auto entries = collector.entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries.begin()->first, "alpha");
}

TEST(ProfileActivationTest, OffByDefaultAndScoped) {
  EXPECT_EQ(CurrentProfileCollector(), nullptr);
  ProfileCollector collector;
  {
    const ScopedProfileActivation scope(&collector);
    EXPECT_EQ(CurrentProfileCollector(), &collector);
  }
  EXPECT_EQ(CurrentProfileCollector(), nullptr);
}

TEST(ProfileActivationTest, NestsAndRestoresPrevious) {
  ProfileCollector outer;
  ProfileCollector inner;
  const ScopedProfileActivation outer_scope(&outer);
  {
    const ScopedProfileActivation inner_scope(&inner);
    EXPECT_EQ(CurrentProfileCollector(), &inner);
  }
  EXPECT_EQ(CurrentProfileCollector(), &outer);
}

TEST(ProfileActivationTest, ActivationIsPerThread) {
  ProfileCollector collector;
  const ScopedProfileActivation scope(&collector);
  ProfileCollector* seen = &collector;
  // Another thread must not observe this thread's collector: a concurrent
  // unprofiled query can't leak entries into someone's EXPLAIN ANALYZE.
  std::thread([&seen] { seen = CurrentProfileCollector(); }).join();
  EXPECT_EQ(seen, nullptr);
}

TEST(ProfileActivationTest, BumpProfileIsANoOpWhenOff) {
  BumpProfile("anything", 3);  // must not crash, must not leak state
  ProfileCollector collector;
  {
    const ScopedProfileActivation scope(&collector);
    BumpProfile("net.frames", 2);
  }
  EXPECT_EQ(collector.Value("net.frames"), 2u);
  EXPECT_EQ(collector.Value("anything"), 0u);
}

}  // namespace
}  // namespace mope::obs
