#include "obs/flight_recorder.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "obs/clock.h"
#include "obs/log.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "storage/env.h"

namespace mope::obs {
namespace {

FlightRecorder::Options SmallOptions(const std::string& path) {
  FlightRecorder::Options options;
  options.ring_entries = 8;
  options.max_threads = 1;  // single ring: eviction order is deterministic
  options.path = path;
  return options;
}

TEST(FlightRecorderTest, RecordPersistFormatRoundTrip) {
  storage::InMemEnv env;
  MetricsRegistry registry;
  ManualClock clock(500);
  FlightRecorder recorder(&env, SmallOptions("bb"), &clock, &registry);

  recorder.Record(FlightRecorder::EventKind::kSpanBegin, "server.handle", 7);
  clock.AdvanceNanos(10);
  recorder.Record(FlightRecorder::EventKind::kSpanEnd, "server.handle", 7);
  recorder.Record(FlightRecorder::EventKind::kEvent, "server.dispatch.done",
                  42);
  ASSERT_TRUE(recorder.Persist().ok());

  auto raw = env.ReadFile("bb");
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(raw->rfind("mope-blackbox v1\n", 0), 0u) << *raw;
  EXPECT_NE(raw->find("kind=span_begin name=server.handle trace=7"),
            std::string::npos);
  EXPECT_NE(raw->find("metrics\n"), std::string::npos);

  auto dump = FlightRecorder::FormatDump(&env, "bb");
  ASSERT_TRUE(dump.ok()) << dump.status().ToString();
  EXPECT_NE(dump->find("blackbox.events=3"), std::string::npos) << *dump;
  EXPECT_NE(dump->find("blackbox.last_seq=3"), std::string::npos);
  EXPECT_NE(dump->find("blackbox.last_trace_id=42"), std::string::npos);
  // Events come back seq-sorted.
  EXPECT_LT(dump->find("seq=1"), dump->find("seq=2"));
  EXPECT_LT(dump->find("seq=2"), dump->find("seq=3"));
}

TEST(FlightRecorderTest, RingKeepsOnlyTheMostRecentEntries) {
  storage::InMemEnv env;
  FlightRecorder recorder(&env, SmallOptions("bb"));
  for (uint64_t i = 1; i <= 20; ++i) {
    recorder.Record(FlightRecorder::EventKind::kEvent, "e", i);
  }
  EXPECT_EQ(recorder.events_recorded(), 20u);
  ASSERT_TRUE(recorder.Persist().ok());

  auto dump = FlightRecorder::FormatDump(&env, "bb");
  ASSERT_TRUE(dump.ok());
  // 8-entry ring: only seq 13..20 survive.
  EXPECT_NE(dump->find("blackbox.events=8"), std::string::npos) << *dump;
  EXPECT_NE(dump->find("blackbox.last_seq=20"), std::string::npos);
  EXPECT_NE(dump->find("blackbox.last_trace_id=20"), std::string::npos);
  EXPECT_EQ(dump->find("event seq=12 "), std::string::npos);
  EXPECT_NE(dump->find("event seq=13 "), std::string::npos);
}

TEST(FlightRecorderTest, PersistIfDirtySkipsWhenNothingNew) {
  storage::InMemEnv env;
  FlightRecorder recorder(&env, SmallOptions("bb"));
  recorder.Record(FlightRecorder::EventKind::kEvent, "e", 1);
  ASSERT_TRUE(recorder.PersistIfDirty().ok());
  const uint64_t syncs_after_first = env.sync_count();

  // No new events: the cheap path must not rewrite the file.
  ASSERT_TRUE(recorder.PersistIfDirty().ok());
  EXPECT_EQ(env.sync_count(), syncs_after_first);

  recorder.Record(FlightRecorder::EventKind::kEvent, "e2", 2);
  ASSERT_TRUE(recorder.PersistIfDirty().ok());
  EXPECT_GT(env.sync_count(), syncs_after_first);
  auto raw = env.ReadFile("bb");
  ASSERT_TRUE(raw.ok());
  EXPECT_NE(raw->find("name=e2"), std::string::npos);
}

TEST(FlightRecorderTest, NamesTruncateAtCapacity) {
  storage::InMemEnv env;
  FlightRecorder recorder(&env, SmallOptions("bb"));
  const std::string long_name(2 * FlightRecorder::kNameCapacity, 'x');
  recorder.Record(FlightRecorder::EventKind::kEvent, long_name.c_str(), 1);
  ASSERT_TRUE(recorder.Persist().ok());
  auto raw = env.ReadFile("bb");
  ASSERT_TRUE(raw.ok());
  const std::string truncated(FlightRecorder::kNameCapacity - 1, 'x');
  EXPECT_NE(raw->find("name=" + truncated + " "), std::string::npos);
  EXPECT_EQ(raw->find(truncated + "x"), std::string::npos);
}

TEST(FlightRecorderTest, FatalDumpAppendsToSiblingAndMerges) {
  storage::InMemEnv env;
  ManualClock clock(100);
  FlightRecorder recorder(&env, SmallOptions("bb"), &clock);
  ASSERT_TRUE(recorder.PrepareFatalDump().ok());

  recorder.Record(FlightRecorder::EventKind::kEvent, "before.crash", 9);
  ASSERT_TRUE(recorder.Persist().ok());
  recorder.Record(FlightRecorder::EventKind::kLog, "crash_imminent", 10);
  recorder.FatalSignalDump(11);
  // The latch makes a second (nested or repeated) signal a no-op.
  recorder.FatalSignalDump(6);

  auto fatal = env.ReadFile("bb.fatal");
  ASSERT_TRUE(fatal.ok());
  EXPECT_EQ(fatal->rfind("fatal signo=11\n", 0), 0u) << *fatal;
  EXPECT_NE(fatal->find("name=crash_imminent trace=10"), std::string::npos);
  EXPECT_NE(fatal->find("end\n"), std::string::npos);
  EXPECT_EQ(fatal->find("signo=6"), std::string::npos);

  // FormatDump merges the continuous box with the fatal dump, seq-deduped.
  auto dump = FlightRecorder::FormatDump(&env, "bb");
  ASSERT_TRUE(dump.ok());
  EXPECT_NE(dump->find("fatal signo=11"), std::string::npos) << *dump;
  EXPECT_NE(dump->find("blackbox.events=2"), std::string::npos);
  EXPECT_NE(dump->find("blackbox.last_trace_id=10"), std::string::npos);
}

TEST(FlightRecorderTest, PersistSurvivesSimulatedCrash) {
  storage::InMemEnv env;
  FlightRecorder recorder(&env, SmallOptions("bb"));
  recorder.Record(FlightRecorder::EventKind::kEvent, "last.request", 77);
  ASSERT_TRUE(recorder.Persist().ok());

  env.SimulateCrash();  // kill -9: WriteFileAtomic output must survive whole

  auto dump = FlightRecorder::FormatDump(&env, "bb");
  ASSERT_TRUE(dump.ok()) << dump.status().ToString();
  EXPECT_NE(dump->find("blackbox.last_trace_id=77"), std::string::npos);
}

TEST(FlightRecorderTest, InstallFeedsTraceAndLogHooks) {
  storage::InMemEnv env;
  FlightRecorder recorder(&env, SmallOptions("bb"));
  FlightRecorder::Install(&recorder);
  ASSERT_EQ(FlightRecorder::Installed(), &recorder);

  {
    Trace trace("t");
    const ScopedTraceActivation activation(&trace);
    const uint32_t span = trace.StartSpan("hooked.span");
    trace.EndSpan(span);
  }
  EXPECT_GE(recorder.events_recorded(), 2u);  // span begin + end

  FlightRecorder::Install(nullptr);
  EXPECT_EQ(FlightRecorder::Installed(), nullptr);
  const uint64_t frozen = recorder.events_recorded();
  {
    Trace trace("t2");
    trace.EndSpan(trace.StartSpan("unhooked"));
  }
  EXPECT_EQ(recorder.events_recorded(), frozen);

  ASSERT_TRUE(recorder.Persist().ok());
  auto raw = env.ReadFile("bb");
  ASSERT_TRUE(raw.ok());
  EXPECT_NE(raw->find("kind=span_begin name=hooked.span"), std::string::npos);
  EXPECT_NE(raw->find("kind=span_end name=hooked.span"), std::string::npos);
}

TEST(FlightRecorderTest, DestructorUninstallsItself) {
  storage::InMemEnv env;
  {
    FlightRecorder recorder(&env, SmallOptions("bb"));
    FlightRecorder::Install(&recorder);
  }
  EXPECT_EQ(FlightRecorder::Installed(), nullptr);
}

TEST(FlightRecorderTest, PersistWithoutPathIsAnError) {
  storage::InMemEnv env;
  FlightRecorder::Options options;
  FlightRecorder recorder(&env, options);
  EXPECT_TRUE(recorder.Persist().IsInvalidArgument());
  EXPECT_TRUE(recorder.PrepareFatalDump().IsInvalidArgument());
  recorder.FatalSignalDump(11);  // no prepared handle: must be a no-op
}

}  // namespace
}  // namespace mope::obs
