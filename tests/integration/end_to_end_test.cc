/// End-to-end integration tests: the full paper pipeline — TPC-H-style data
/// loaded through the trusted proxy with MOPE encryption, range queries
/// executed with fake-query mixing against the unmodified server, results
/// filtered and decrypted — checked for exact agreement with plaintext SQL
/// over the same data.

#include <gtest/gtest.h>

#include <cmath>

#include "proxy/system.h"
#include "sql/planner.h"
#include "workload/datasets.h"
#include "workload/generator.h"
#include "workload/tpch.h"

namespace mope {
namespace {

using engine::Catalog;
using engine::Row;
using proxy::EncryptedColumnSpec;
using proxy::MopeSystem;
using proxy::QueryMode;
using query::RangeQuery;
using namespace workload;  // NOLINT

class TpchEndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TpchConfig config;
    config.scale_factor = 0.002;  // ~12k lineitem rows
    data_ = GenerateTpch(config);

    // Plaintext side: ordinary catalog for SQL baselines.
    auto li = plain_.CreateTable("lineitem", data_.lineitem_schema);
    ASSERT_TRUE(li.ok());
    for (const Row& row : data_.lineitem) {
      ASSERT_TRUE((*li)->Insert(row).ok());
    }
    ASSERT_TRUE((*li)->CreateIndex("l_shipdate").ok());
    auto part = plain_.CreateTable("part", data_.part_schema);
    ASSERT_TRUE(part.ok());
    for (const Row& row : data_.part) {
      ASSERT_TRUE((*part)->Insert(row).ok());
    }

    // Encrypted side: lineitem with MOPE-encrypted l_shipdate.
    EncryptedColumnSpec spec;
    spec.column = "l_shipdate";
    spec.domain = kTpchDateDomain;
    spec.k = 30;
    spec.mode = QueryMode::kAdaptiveUniform;
    spec.batch_size = 16;
    ASSERT_TRUE(system_.LoadTable("lineitem", data_.lineitem_schema,
                                  data_.lineitem, spec)
                    .ok());
  }

  /// Reference row count via plaintext SQL.
  int64_t PlainCount(const std::string& where) {
    auto result = sql::ExecuteSql(
        &plain_, "SELECT COUNT(*) FROM lineitem WHERE " + where);
    EXPECT_TRUE(result.ok()) << result.status();
    return std::get<int64_t>(result->rows[0][0]);
  }

  TpchData data_;
  Catalog plain_;
  MopeSystem system_{0xE2E};
};

TEST_F(TpchEndToEndTest, EncryptedRangeCountsMatchPlaintextSql) {
  Rng rng(11);
  for (int i = 0; i < 5; ++i) {
    const Q14Params q14 = SampleQ14(&rng);
    auto resp = system_.Query("lineitem", "l_shipdate", q14.shipdate);
    ASSERT_TRUE(resp.ok()) << resp.status();
    const int64_t expected =
        PlainCount("l_shipdate BETWEEN " + std::to_string(q14.shipdate.first) +
                   " AND " + std::to_string(q14.shipdate.last));
    EXPECT_EQ(static_cast<int64_t>(resp->rows.size()), expected);
  }
}

TEST_F(TpchEndToEndTest, Q6RevenueMatchesPlaintextSql) {
  Rng rng(13);
  const Q6Params q6 = SampleQ6(&rng);

  // Plaintext baseline through the SQL engine.
  auto baseline = sql::ExecuteSql(&plain_, Q6Sql(q6));
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  const double expected = std::get<double>(baseline->rows[0][0]);

  // Encrypted path: range via proxy, residual predicates client-side.
  auto resp = system_.Query("lineitem", "l_shipdate", q6.shipdate);
  ASSERT_TRUE(resp.ok());
  double revenue = 0.0;
  for (const Row& row : resp->rows) {
    const double discount = std::get<double>(row[tpch_cols::kLDiscount]);
    const double quantity = std::get<double>(row[tpch_cols::kLQuantity]);
    if (discount >= q6.discount_lo - 1e-9 &&
        discount <= q6.discount_hi + 1e-9 && quantity < q6.quantity_lt) {
      revenue += std::get<double>(row[tpch_cols::kLExtendedPrice]) * discount;
    }
  }
  EXPECT_NEAR(revenue, expected, 1e-6 * std::max(1.0, std::abs(expected)));
}

TEST_F(TpchEndToEndTest, Q14PromoShareMatchesPlaintextSql) {
  Rng rng(17);
  const Q14Params q14 = SampleQ14(&rng);

  auto promo = sql::ExecuteSql(&plain_, Q14PromoSql(q14));
  auto total = sql::ExecuteSql(&plain_, Q14TotalSql(q14));
  ASSERT_TRUE(promo.ok() && total.ok());
  const double expected_promo = std::get<double>(promo->rows[0][0]);
  const double expected_total = std::get<double>(total->rows[0][0]);

  // Encrypted path: fetch the month of lineitems via the proxy, join with
  // PART client-side (the paper's proxy filters and post-processes).
  std::vector<int64_t> ispromo(data_.part.size() + 1, 0);
  for (const Row& row : data_.part) {
    ispromo[static_cast<size_t>(
        std::get<int64_t>(row[tpch_cols::kPartKey]))] =
        std::get<int64_t>(row[tpch_cols::kPartIsPromo]);
  }
  auto resp = system_.Query("lineitem", "l_shipdate", q14.shipdate);
  ASSERT_TRUE(resp.ok());
  double promo_rev = 0.0, total_rev = 0.0;
  for (const Row& row : resp->rows) {
    const double rev =
        std::get<double>(row[tpch_cols::kLExtendedPrice]) *
        (1.0 - std::get<double>(row[tpch_cols::kLDiscount]));
    total_rev += rev;
    if (ispromo[static_cast<size_t>(
            std::get<int64_t>(row[tpch_cols::kLPartKey]))] != 0) {
      promo_rev += rev;
    }
  }
  EXPECT_NEAR(promo_rev, expected_promo, 1e-6 * std::max(1.0, expected_promo));
  EXPECT_NEAR(total_rev, expected_total, 1e-6 * std::max(1.0, expected_total));
}

TEST_F(TpchEndToEndTest, ServerStatsShowFakeTraffic) {
  engine::DbServer* server = system_.server();
  server->ResetStats();
  Rng rng(19);
  const Q14Params q14 = SampleQ14(&rng);
  auto resp = system_.Query("lineitem", "l_shipdate", q14.shipdate);
  ASSERT_TRUE(resp.ok());
  EXPECT_GE(server->stats().ranges_received,
            resp->real_queries_sent + resp->fake_queries_sent);
  EXPECT_GE(resp->rows_received, resp->rows.size());
}

TEST(DatasetEndToEndTest, SkewedWorkloadThroughPeriodicProxy) {
  // Adult-style workload end to end under QueryP.
  const auto adult = MakeDataset(DatasetKind::kAdult);
  const uint64_t domain = adult.size() + 6;  // 74 -> 80, divisible by 10
  Rng rng(23);

  // Database: 2000 records sampled from the dataset distribution.
  std::vector<Row> rows;
  for (int i = 0; i < 2000; ++i) {
    rows.push_back(Row{static_cast<int64_t>(adult.Sample(&rng)),
                       static_cast<int64_t>(i)});
  }

  // Query-start distribution over the padded domain.
  std::vector<double> w(domain, 1e-9);
  for (uint64_t i = 0; i < adult.size(); ++i) w[i] += adult.prob(i);
  auto starts = dist::Distribution::FromWeights(std::move(w));
  ASSERT_TRUE(starts.ok());

  MopeSystem system(29);
  EncryptedColumnSpec spec;
  spec.column = "age";
  spec.domain = domain;
  spec.k = 5;
  spec.mode = QueryMode::kPeriodic;
  spec.period = 10;
  spec.batch_size = 8;
  ASSERT_TRUE(system
                  .LoadTable("people",
                             engine::Schema({{"age", engine::ValueType::kInt},
                                             {"pid", engine::ValueType::kInt}}),
                             rows, spec, &*starts)
                  .ok());

  for (int trial = 0; trial < 10; ++trial) {
    const uint64_t first = rng.UniformUint64(60);
    const RangeQuery q{first, first + 9};
    auto resp = system.Query("people", "age", q);
    ASSERT_TRUE(resp.ok()) << resp.status();
    size_t expected = 0;
    for (const Row& row : rows) {
      const int64_t age = std::get<int64_t>(row[0]);
      if (age >= static_cast<int64_t>(q.first) &&
          age <= static_cast<int64_t>(q.last)) {
        ++expected;
      }
    }
    EXPECT_EQ(resp->rows.size(), expected);
  }
}

}  // namespace
}  // namespace mope
