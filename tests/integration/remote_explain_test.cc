/// EXPLAIN ANALYZE across the trust boundary, end to end: a same-seed
/// remote session over real loopback TCP must produce a resource profile
/// whose server-attributed fields are *identical* to the embedded session's
/// (same field set, same values — the cover traffic is deterministic), the
/// profile's trace id must be the one stamped on the wire frames, and a
/// profile-less v1 peer talking to the same live daemon must keep getting
/// byte-identical version-1 replies.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "engine/codec.h"
#include "net/remote_connection.h"
#include "net/server.h"
#include "net/socket.h"
#include "net/wire.h"
#include "proxy/sql_session.h"
#include "proxy/system.h"

namespace mope {
namespace {

using engine::Column;
using engine::Row;
using engine::Schema;
using engine::ValueType;

constexpr uint64_t kSeed = 0xBEEF5;
constexpr uint64_t kDomain = 365;

Schema MakeSchema() {
  return Schema({Column{"day", ValueType::kInt},
                 Column{"amount", ValueType::kDouble}});
}

std::vector<Row> MakeRows() {
  std::vector<Row> rows;
  for (int64_t day = 0; day < static_cast<int64_t>(kDomain); ++day) {
    rows.push_back({day, day * 1.5});
    if (day % 3 == 0) rows.push_back({day, day * 2.5});
  }
  return rows;
}

proxy::EncryptedColumnSpec MakeSpec() {
  proxy::EncryptedColumnSpec spec;
  spec.column = "day";
  spec.domain = kDomain;
  spec.k = 7;
  spec.mode = proxy::QueryMode::kAdaptiveUniform;
  spec.batch_size = 8;
  return spec;
}

constexpr char kSql[] =
    "EXPLAIN ANALYZE SELECT COUNT(*) FROM sales "
    "WHERE day BETWEEN 40 AND 80";

TEST(RemoteExplainTest, RemoteProfileMatchesEmbeddedFieldForField) {
  // Data owner: encrypt, load, serve over TCP.
  proxy::MopeSystem owner(kSeed);
  ASSERT_TRUE(
      owner.LoadTable("sales", MakeSchema(), MakeRows(), MakeSpec()).ok());
  auto daemon = net::TcpServer::Start(owner.server(), net::TcpServerOptions{});
  ASSERT_TRUE(daemon.ok()) << daemon.status().ToString();

  // Embedded baseline: EXPLAIN ANALYZE against the in-process server.
  proxy::EncryptedSqlSession embedded(&owner);
  auto embedded_result = embedded.Execute(kSql);
  ASSERT_TRUE(embedded_result.ok()) << embedded_result.status().ToString();
  ASSERT_NE(embedded.last_profile(), nullptr);
  const auto embedded_profile = embedded.last_profile()->entries();

  // Remote: same seed, fresh system, attached over loopback TCP.
  proxy::MopeSystem remote_system(kSeed);
  net::RemoteOptions options;
  options.port = (*daemon)->port();
  ASSERT_TRUE(remote_system
                  .AttachRemoteTable(
                      "sales", MakeSpec(),
                      std::make_unique<net::RemoteConnection>(options))
                  .ok());
  proxy::EncryptedSqlSession remote(&remote_system);
  auto remote_result = remote.Execute(kSql);
  ASSERT_TRUE(remote_result.ok()) << remote_result.status().ToString();
  ASSERT_NE(remote.last_profile(), nullptr);
  const auto remote_profile = remote.last_profile()->entries();

  // The server-attributed entries are field-identical AND value-identical:
  // the same-seed remote proxy re-derives the key and fake sequence, so the
  // daemon does exactly the work the embedded server did.
  for (const auto& [name, value] : embedded_profile) {
    if (name.rfind("srv.", 0) != 0) continue;
    auto it = remote_profile.find(name);
    ASSERT_NE(it, remote_profile.end()) << "remote profile missing " << name;
    EXPECT_EQ(it->second, value) << name;
  }
  for (const auto& [name, value] : remote_profile) {
    if (name.rfind("srv.", 0) == 0) {
      EXPECT_TRUE(embedded_profile.count(name))
          << "embedded profile missing " << name;
    }
  }
  // Both paths name their trace; only the remote one paid wire bytes.
  EXPECT_TRUE(embedded_profile.count("profile.trace_id"));
  EXPECT_TRUE(remote_profile.count("profile.trace_id"));
  EXPECT_GT(remote.last_profile()->Value("net.frames"), 0u);
  EXPECT_GT(remote.last_profile()->Value("net.frame_bytes_received"), 0u);
  EXPECT_EQ(embedded.last_profile()->Value("net.frames"), 0u);

  // The rendered output agrees modulo the wire-only resource lines (the
  // remote resource vector additionally reports net.* frame accounting).
  EXPECT_GE(remote_result->rows.size(), embedded_result->rows.size());
}

TEST(RemoteExplainTest, ProfileTraceIdIsTheFrameTraceId) {
  proxy::MopeSystem owner(kSeed);
  ASSERT_TRUE(
      owner.LoadTable("sales", MakeSchema(), MakeRows(), MakeSpec()).ok());
  auto daemon = net::TcpServer::Start(owner.server(), net::TcpServerOptions{});
  ASSERT_TRUE(daemon.ok());

  proxy::MopeSystem remote_system(kSeed);
  net::RemoteOptions options;
  options.port = (*daemon)->port();
  ASSERT_TRUE(remote_system
                  .AttachRemoteTable(
                      "sales", MakeSpec(),
                      std::make_unique<net::RemoteConnection>(options))
                  .ok());
  proxy::EncryptedSqlSession session(&remote_system);
  auto result = session.Execute(kSql);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // The daemon learns the trace id only from the frame header, and it echoes
  // it back inside the profile payload: agreement here proves the id
  // traveled request frame -> server attribution -> profile, uncorrupted.
  ASSERT_NE(session.last_trace(), nullptr);
  ASSERT_NE(session.last_profile(), nullptr);
  EXPECT_EQ(session.last_profile()->Value("profile.trace_id"),
            session.last_trace()->trace_id());
}

TEST(RemoteExplainTest, V1PeerAgainstLiveDaemonRoundTripsByteIdentically) {
  proxy::MopeSystem owner(kSeed);
  ASSERT_TRUE(
      owner.LoadTable("sales", MakeSchema(), MakeRows(), MakeSpec()).ok());
  auto daemon = net::TcpServer::Start(owner.server(), net::TcpServerOptions{});
  ASSERT_TRUE(daemon.ok());

  // A version-1-only peer: hand-built header, no extensions, raw TCP.
  auto conn = net::ConnectTcp("127.0.0.1", (*daemon)->port(),
                              net::SocketOptions{});
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();
  const std::string payload = net::EncodeSchemaRequest("sales");
  std::string request;
  engine::PutU32(&request, net::kWireMagic);
  request.push_back('\x01');  // version 1
  request.push_back(static_cast<char>(net::MessageType::kSchemaRequest));
  request.push_back('\0');  // flags
  request.push_back('\0');  // reserved
  engine::PutU32(&request, static_cast<uint32_t>(payload.size()));
  engine::PutU32(&request, net::Crc32(payload));
  request += payload;
  ASSERT_TRUE((*conn)->Write(request.data(), request.size()).ok());

  auto reply = net::ReadFrame(conn->get());
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->type, static_cast<uint8_t>(net::MessageType::kSchemaReply));
  EXPECT_FALSE(reply->has_profile);
  EXPECT_EQ(reply->trace_id, 0u);
  // Byte-identity: re-encoding the reply without extensions reproduces the
  // exact bytes a v1 daemon would have sent.
  auto schema = net::DecodeSchemaReply(reply->payload);
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->num_columns(), MakeSchema().num_columns());
}

}  // namespace
}  // namespace mope
