/// Two-process architecture, in one test binary: a data-owner MopeSystem
/// loads ciphertext into a server that is then exposed over real loopback
/// TCP, and an independent, same-seed MopeSystem attaches to it remotely.
/// Because key generation and proxy seeding draw from the system rng in a
/// fixed order, the second system re-derives the exact MOPE key and fake
/// sequence — so its answers must be *identical*, row for row, to the
/// embedded system's, without any key ever crossing the wire.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "engine/snapshot.h"
#include "net/remote_connection.h"
#include "net/server.h"
#include "proxy/connection_registry.h"
#include "proxy/system.h"

namespace mope {
namespace {

using engine::Column;
using engine::Row;
using engine::Schema;
using engine::ValueType;

constexpr uint64_t kSeed = 0xA11CE;
constexpr uint64_t kDomain = 365;

Schema MakeSchema() {
  return Schema({Column{"day", ValueType::kInt},
                 Column{"amount", ValueType::kDouble},
                 Column{"note", ValueType::kString}});
}

std::vector<Row> MakeRows() {
  std::vector<Row> rows;
  for (int64_t day = 0; day < static_cast<int64_t>(kDomain); ++day) {
    rows.push_back({day, day * 1.5, std::string("d") + std::to_string(day)});
  }
  return rows;
}

proxy::EncryptedColumnSpec MakeSpec() {
  proxy::EncryptedColumnSpec spec;
  spec.column = "day";
  spec.domain = kDomain;
  spec.k = 7;
  spec.mode = proxy::QueryMode::kAdaptiveUniform;
  spec.batch_size = 8;
  return spec;
}

TEST(RemoteEndToEndTest, RemoteProxyMatchesEmbeddedByteForByte) {
  // Data owner: encrypt and load, then serve the ciphertext over TCP.
  proxy::MopeSystem owner(kSeed);
  ASSERT_TRUE(owner.LoadTable("sales", MakeSchema(), MakeRows(), MakeSpec())
                  .ok());
  auto daemon = net::TcpServer::Start(owner.server(), net::TcpServerOptions{});
  ASSERT_TRUE(daemon.ok()) << daemon.status().ToString();

  // Remote proxy: same seed, fresh process-equivalent, attaches over TCP.
  proxy::MopeSystem remote(kSeed);
  net::RemoteOptions options;
  options.port = (*daemon)->port();
  auto conn = std::make_unique<net::RemoteConnection>(options);
  ASSERT_TRUE(remote
                  .AttachRemoteTable("sales", MakeSpec(), std::move(conn))
                  .ok());

  const std::vector<query::RangeQuery> queries = {
      {0, 6}, {100, 120}, {358, 364}, {50, 50}, {200, 250}};
  for (const query::RangeQuery& q : queries) {
    auto from_embedded = owner.Query("sales", "day", q);
    auto from_remote = remote.Query("sales", "day", q);
    ASSERT_TRUE(from_embedded.ok()) << from_embedded.status().ToString();
    ASSERT_TRUE(from_remote.ok()) << from_remote.status().ToString();
    // Same rows, same order, same bytes in every cell.
    ASSERT_EQ(from_remote->rows.size(), from_embedded->rows.size());
    for (size_t i = 0; i < from_remote->rows.size(); ++i) {
      EXPECT_EQ(from_remote->rows[i], from_embedded->rows[i])
          << "row " << i << " of [" << q.first << "," << q.last << "]";
    }
    // The cover traffic is identical too: same fakes, same batching.
    EXPECT_EQ(from_remote->real_queries_sent, from_embedded->real_queries_sent);
    EXPECT_EQ(from_remote->fake_queries_sent, from_embedded->fake_queries_sent);
    EXPECT_EQ(from_remote->server_requests, from_embedded->server_requests);
  }

  // Identical work must surface as identical client-side accounting: the
  // proxy.* counter sets of the embedded and the remote system match entry
  // for entry (names and values), because both registries saw the same
  // queries, fakes and batches.
  const auto proxy_only =
      [](const std::vector<std::pair<std::string, uint64_t>>& all) {
        std::vector<std::pair<std::string, uint64_t>> out;
        for (const auto& kv : all) {
          if (kv.first.rfind("proxy.", 0) == 0) out.push_back(kv);
        }
        return out;
      };
  const auto embedded_counters = proxy_only(owner.metrics()->Snapshot());
  const auto remote_counters = proxy_only(remote.metrics()->Snapshot());
  EXPECT_FALSE(embedded_counters.empty());
  EXPECT_EQ(embedded_counters, remote_counters);

  // The live stats endpoint: the remote proxy pulls the server's registry
  // over the wire and sees the frames it itself caused.
  auto remote_proxy = remote.GetProxy("sales", "day");
  ASSERT_TRUE(remote_proxy.ok());
  auto server_stats = (*remote_proxy)->FetchServerStats();
  ASSERT_TRUE(server_stats.ok()) << server_stats.status().ToString();
  uint64_t frames_served = 0;
  uint64_t batches_received = 0;
  for (const auto& [name, value] : *server_stats) {
    if (name == "net.server.frames_served") frames_served = value;
    if (name == "engine.batches_received") batches_received = value;
  }
  EXPECT_GT(frames_served, 0u);
  EXPECT_GT(batches_received, 0u);

  EXPECT_GT(owner.server()->stats().bytes_sent, 0u);
  (*daemon)->Stop();
}

TEST(RemoteEndToEndTest, SnapshotHandoffToKeylessDaemon) {
  // The mope_serverd --snapshot flow: the data owner persists the encrypted
  // catalog, a keyless daemon process restores and serves it, and a
  // same-seed proxy queries it correctly.
  std::string snapshot;
  {
    proxy::MopeSystem owner(kSeed);
    ASSERT_TRUE(owner.LoadTable("sales", MakeSchema(), MakeRows(), MakeSpec())
                    .ok());
    auto bytes = engine::SerializeCatalog(*owner.server()->catalog());
    ASSERT_TRUE(bytes.ok());
    snapshot = *std::move(bytes);
  }  // the owner — and the only copy of the key — is gone

  engine::DbServer keyless;
  auto restored = engine::DeserializeCatalog(snapshot);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  *keyless.catalog() = std::move(restored).value();
  auto daemon = net::TcpServer::Start(&keyless, net::TcpServerOptions{});
  ASSERT_TRUE(daemon.ok());

  proxy::MopeSystem remote(kSeed);
  net::RemoteOptions options;
  options.port = (*daemon)->port();
  ASSERT_TRUE(remote
                  .AttachRemoteTable(
                      "sales", MakeSpec(),
                      std::make_unique<net::RemoteConnection>(options))
                  .ok());

  auto response = remote.Query("sales", "day", {30, 36});
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_EQ(response->rows.size(), 7u);
  for (const Row& row : response->rows) {
    const int64_t day = std::get<int64_t>(row[0]);
    EXPECT_GE(day, 30);
    EXPECT_LE(day, 36);
    EXPECT_DOUBLE_EQ(std::get<double>(row[1]), day * 1.5);
    EXPECT_EQ(std::get<std::string>(row[2]), "d" + std::to_string(day));
  }
  (*daemon)->Stop();
}

TEST(RemoteEndToEndTest, ConnectionStringPathWorks) {
  proxy::MopeSystem owner(kSeed);
  ASSERT_TRUE(owner.LoadTable("sales", MakeSchema(), MakeRows(), MakeSpec())
                  .ok());
  auto daemon = net::TcpServer::Start(owner.server(), net::TcpServerOptions{});
  ASSERT_TRUE(daemon.ok());

  net::RegisterTcpScheme();
  auto conn = proxy::MakeConnection("tcp://127.0.0.1:" +
                                    std::to_string((*daemon)->port()));
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();

  proxy::MopeSystem remote(kSeed);
  ASSERT_TRUE(remote
                  .AttachRemoteTable("sales", MakeSpec(),
                                     std::move(conn).value())
                  .ok());
  auto response = remote.Query("sales", "day", {10, 16});
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->rows.size(), 7u);
  (*daemon)->Stop();
}

TEST(RemoteEndToEndTest, ConnectionStringErrors) {
  EXPECT_TRUE(proxy::MakeConnection("garbage").status().IsInvalidArgument());
  EXPECT_TRUE(
      proxy::MakeConnection("nope://x:1").status().IsNotFound());
  net::RegisterTcpScheme();
  EXPECT_TRUE(proxy::MakeConnection("tcp://hostonly")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(proxy::MakeConnection("tcp://h:99999")
                  .status()
                  .IsInvalidArgument());
}

TEST(RemoteEndToEndTest, MismatchedSeedDecryptsNothingUseful) {
  // The flip side of seed-derived keys: a proxy with the wrong seed holds
  // the wrong key, and its filtered answers are (almost surely) wrong —
  // demonstrating the ciphertext really is opaque without the seed.
  proxy::MopeSystem owner(kSeed);
  ASSERT_TRUE(owner.LoadTable("sales", MakeSchema(), MakeRows(), MakeSpec())
                  .ok());
  auto daemon = net::TcpServer::Start(owner.server(), net::TcpServerOptions{});
  ASSERT_TRUE(daemon.ok());

  proxy::MopeSystem imposter(kSeed + 1);
  net::RemoteOptions options;
  options.port = (*daemon)->port();
  ASSERT_TRUE(imposter
                  .AttachRemoteTable(
                      "sales", MakeSpec(),
                      std::make_unique<net::RemoteConnection>(options))
                  .ok());
  auto response = imposter.Query("sales", "day", {100, 120});
  // Whatever comes back (possibly an error from decrypt-range mismatches),
  // it must not be the true answer.
  if (response.ok()) {
    std::vector<int64_t> days;
    for (const Row& row : response->rows) {
      days.push_back(std::get<int64_t>(row[0]));
    }
    std::vector<int64_t> truth;
    for (int64_t d = 100; d <= 120; ++d) truth.push_back(d);
    EXPECT_NE(days, truth);
  }
  (*daemon)->Stop();
}

}  // namespace
}  // namespace mope
