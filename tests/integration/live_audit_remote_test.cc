/// The leakage auditor's gauges must ride the existing stats endpoint: a
/// server started with the audit enabled publishes leakage.* into its
/// registry, and a remote proxy fetches them over real loopback TCP with no
/// protocol changes — the same FetchServerStats round-trip `mope_shell
/// \leakage` uses.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "net/remote_connection.h"
#include "net/server.h"
#include "obs/leakage.h"
#include "proxy/system.h"

namespace mope {
namespace {

using engine::Column;
using engine::Row;
using engine::Schema;
using engine::ValueType;

constexpr uint64_t kSeed = 0xBEEF5;
constexpr uint64_t kDomain = 120;

proxy::EncryptedColumnSpec MakeSpec() {
  proxy::EncryptedColumnSpec spec;
  spec.column = "v";
  spec.domain = kDomain;
  spec.k = 12;
  spec.mode = proxy::QueryMode::kAdaptiveUniform;
  spec.batch_size = 16;
  return spec;
}

TEST(LiveAuditRemoteTest, LeakageGaugesCrossTheWire) {
  // Data owner: load ciphertext, switch the audit on, serve over TCP. The
  // audit needs only public parameters (the plaintext domain), mirroring an
  // untrusted operator enabling it without any key material.
  proxy::MopeSystem owner(kSeed);
  Schema schema({Column{"v", ValueType::kInt}});
  std::vector<Row> rows;
  for (int64_t v = 0; v < static_cast<int64_t>(kDomain); ++v) {
    rows.push_back(Row{v});
  }
  ASSERT_TRUE(owner.LoadTable("t", schema, rows, MakeSpec()).ok());
  ASSERT_TRUE(owner.EnableLeakageAudit(kDomain).ok());
  auto daemon = net::TcpServer::Start(owner.server(), net::TcpServerOptions{});
  ASSERT_TRUE(daemon.ok()) << daemon.status().ToString();

  // Remote client: attach with the same seed, run queries through the wire.
  proxy::MopeSystem remote(kSeed);
  net::RemoteOptions options;
  options.port = (*daemon)->port();
  ASSERT_TRUE(remote
                  .AttachRemoteTable(
                      "t", MakeSpec(),
                      std::make_unique<net::RemoteConnection>(options))
                  .ok());
  uint64_t queried = 0;
  for (int i = 0; i < 40; ++i) {
    const uint64_t start = (9 * static_cast<uint64_t>(i)) % (kDomain - 12);
    auto resp = remote.Query("t", "v", query::RangeQuery{start, start + 11});
    ASSERT_TRUE(resp.ok()) << resp.status();
    queried += resp->server_requests;
  }
  ASSERT_GT(queried, 0u);

  // Fetch the server's stats over the same connection the queries used.
  auto remote_proxy = remote.GetProxy("t", "v");
  ASSERT_TRUE(remote_proxy.ok());
  auto stats = (*remote_proxy)->FetchServerStats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();

  std::map<std::string, uint64_t> by_name(stats->begin(), stats->end());
  ASSERT_EQ(by_name.count(obs::LeakageAuditor::kGaugeObservations), 1u)
      << "leakage gauges missing from the wire snapshot";
  EXPECT_GT(by_name[obs::LeakageAuditor::kGaugeObservations], 0u);
  EXPECT_GT(by_name[obs::LeakageAuditor::kGaugeDistinct], 0u);
  EXPECT_EQ(by_name.count(obs::LeakageAuditor::kGaugeAlert), 1u);
  EXPECT_EQ(by_name.count(obs::LeakageAuditor::kGaugeOffsetEstimate), 1u);

  // The wire snapshot agrees with the server's in-process registry entry
  // for entry — serialization round-trips every leakage gauge.
  std::map<std::string, uint64_t> local;
  for (const auto& [name, value] : owner.server()->metrics()->Snapshot()) {
    if (name.rfind("leakage.", 0) == 0) local[name] = value;
  }
  for (const auto& [name, value] : local) {
    ASSERT_EQ(by_name.count(name), 1u) << name;
    EXPECT_EQ(by_name[name], value) << name;
  }

  // And the human-readable verdict renders from the fetched snapshot alone.
  const std::string report = obs::LeakageAuditor::DescribeStats(*stats);
  EXPECT_NE(report.find("live leakage audit"), std::string::npos);
}

}  // namespace
}  // namespace mope
