/// Integration: the data-owner onboarding path — parse a CSV, load it
/// encrypted through the system, and query it with full SQL (ORDER BY /
/// LIMIT / aggregates) via the encrypted session.

#include <gtest/gtest.h>

#include "proxy/sql_session.h"
#include "workload/csv.h"

namespace mope {
namespace {

using engine::Column;
using engine::Schema;
using engine::ValueType;

TEST(CsvPipelineTest, CsvToEncryptedSqlEndToEnd) {
  const Schema schema({Column{"age", ValueType::kInt},
                       Column{"income", ValueType::kDouble},
                       Column{"name", ValueType::kString}});
  std::string csv = "age,income,name\n";
  for (int i = 0; i < 300; ++i) {
    const int age = 17 + (i * 35) % 74;
    csv += std::to_string(age) + "," + std::to_string(1000.0 + 10.0 * i) +
           ",person_" + std::to_string(i) + "\n";
  }
  auto rows = workload::ParseCsv(schema, csv);
  ASSERT_TRUE(rows.ok()) << rows.status();
  ASSERT_EQ(rows->size(), 300u);

  proxy::MopeSystem system(0xC5F);
  proxy::EncryptedColumnSpec spec;
  spec.column = "age";
  spec.domain = 120;
  spec.k = 5;
  spec.mode = proxy::QueryMode::kAdaptiveUniform;
  spec.batch_size = 16;
  ASSERT_TRUE(system.LoadTable("people", schema, *rows, spec).ok());

  proxy::EncryptedSqlSession session(&system);

  // Aggregate with residual predicate.
  auto count = session.Execute(
      "SELECT COUNT(*) FROM people WHERE age BETWEEN 30 AND 49 "
      "AND income > 1500.0");
  ASSERT_TRUE(count.ok()) << count.status();
  int64_t expected = 0;
  for (const auto& row : *rows) {
    const int64_t age = std::get<int64_t>(row[0]);
    const double income = std::get<double>(row[1]);
    if (age >= 30 && age <= 49 && income > 1500.0) ++expected;
  }
  EXPECT_EQ(std::get<int64_t>(count->rows[0][0]), expected);

  // ORDER BY + LIMIT run client-side over the fetched rows.
  auto top = session.Execute(
      "SELECT name, income FROM people WHERE age BETWEEN 30 AND 49 "
      "ORDER BY income DESC LIMIT 3");
  ASSERT_TRUE(top.ok()) << top.status();
  ASSERT_EQ(top->rows.size(), 3u);
  EXPECT_GE(std::get<double>(top->rows[0][1]),
            std::get<double>(top->rows[1][1]));
  EXPECT_GE(std::get<double>(top->rows[1][1]),
            std::get<double>(top->rows[2][1]));

  // Round-trip the results back out as CSV.
  const Schema out_schema({Column{"name", ValueType::kString},
                           Column{"income", ValueType::kDouble}});
  const std::string out_csv = workload::WriteCsv(out_schema, top->rows);
  EXPECT_NE(out_csv.find("person_"), std::string::npos);
  auto reparsed = workload::ParseCsv(out_schema, out_csv);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->size(), 3u);
}

TEST(CsvPipelineTest, RotationIsTransparentToSqlSession) {
  const Schema schema({Column{"v", ValueType::kInt}});
  std::vector<engine::Row> rows;
  for (int64_t v = 0; v < 100; ++v) rows.push_back(engine::Row{v});

  proxy::MopeSystem system(0xC60);
  proxy::EncryptedColumnSpec spec;
  spec.column = "v";
  spec.domain = 100;
  spec.k = 4;
  spec.mode = proxy::QueryMode::kAdaptiveUniform;
  ASSERT_TRUE(system.LoadTable("t", schema, rows, spec).ok());

  proxy::EncryptedSqlSession session(&system);
  auto before = session.Execute("SELECT COUNT(*) FROM t WHERE v BETWEEN 20 AND 59");
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(system.RotateKey("t", "v").ok());
  auto after = session.Execute("SELECT COUNT(*) FROM t WHERE v BETWEEN 20 AND 59");
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_EQ(std::get<int64_t>(before->rows[0][0]),
            std::get<int64_t>(after->rows[0][0]));
  EXPECT_EQ(std::get<int64_t>(after->rows[0][0]), 40);
}

}  // namespace
}  // namespace mope
