/// One traced Execute produces the whole span tree of the paper's data path:
/// parse → per-segment fetch (fake-query sampling → MOPE encrypt → server
/// round trips → decrypt/filter) → local execution — first over the embedded
/// in-memory connection, then over a real TCP daemon where every round trip
/// additionally shows up as a net.roundtrip span and the frames carry the
/// trace id (exercised end-to-end; the frame-level encoding is covered in
/// tests/net/frame_compat_test.cc). A ManualClock with auto-advance makes
/// every recorded timing deterministic and strictly monotone.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "net/remote_connection.h"
#include "net/server.h"
#include "obs/clock.h"
#include "obs/trace.h"
#include "proxy/sql_session.h"
#include "proxy/system.h"

namespace mope {
namespace {

using engine::Column;
using engine::Row;
using engine::Schema;
using engine::ValueType;

constexpr uint64_t kSeed = 0x7ACE;
constexpr uint64_t kDomain = 365;

Schema MakeSchema() {
  return Schema({Column{"day", ValueType::kInt},
                 Column{"amount", ValueType::kDouble}});
}

std::vector<Row> MakeRows() {
  std::vector<Row> rows;
  for (int64_t day = 0; day < static_cast<int64_t>(kDomain); ++day) {
    rows.push_back({day, day * 1.5});
  }
  return rows;
}

proxy::EncryptedColumnSpec MakeSpec() {
  proxy::EncryptedColumnSpec spec;
  spec.column = "day";
  spec.domain = kDomain;
  spec.k = 7;
  spec.mode = proxy::QueryMode::kAdaptiveUniform;
  spec.batch_size = 8;
  return spec;
}

constexpr char kSql[] =
    "SELECT COUNT(*) FROM sales WHERE day BETWEEN 10 AND 40";

TEST(TracePropagationTest, EmbeddedExecuteBuildsTheFullSpanTree) {
  proxy::MopeSystem system(kSeed);
  ASSERT_TRUE(
      system.LoadTable("sales", MakeSchema(), MakeRows(), MakeSpec()).ok());
  proxy::EncryptedSqlSession session(&system);
  obs::ManualClock clock(0, 100);
  session.EnableTracing(&clock);

  auto result = session.Execute(kSql);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(std::get<int64_t>(result->rows[0][0]), 31);

  const obs::Trace* trace = session.last_trace();
  ASSERT_NE(trace, nullptr);
  EXPECT_GT(trace->trace_id(), 0u);

  // The stages of one query, in span form.
  EXPECT_EQ(trace->CountSpans("session.parse"), 1u);
  EXPECT_EQ(trace->CountSpans("session.fetch_segment"), 1u);  // one range
  EXPECT_GE(trace->CountSpans("proxy.sample"), 1u);
  EXPECT_GE(trace->CountSpans("proxy.encrypt"), 1u);
  EXPECT_GE(trace->CountSpans("proxy.decrypt_filter"), 1u);
  EXPECT_EQ(trace->CountSpans("session.local_exec"), 1u);
  EXPECT_TRUE(trace->TimingsMonotone());

  // The proxy stages nest under the segment fetch.
  const std::vector<obs::Span> spans = trace->spans();
  uint32_t fetch_id = 0;
  for (size_t i = 0; i < spans.size(); ++i) {
    if (spans[i].name == "session.fetch_segment") {
      fetch_id = static_cast<uint32_t>(i + 1);
    }
    if (spans[i].name == "proxy.sample" || spans[i].name == "proxy.encrypt") {
      EXPECT_EQ(spans[i].parent, fetch_id) << spans[i].name;
    }
  }

  // Fine-grained events arrive as per-trace counters, not spans.
  const auto counters = trace->counters();
  ASSERT_TRUE(counters.count("ope.encrypt_calls"));
  ASSERT_TRUE(counters.count("ope.decrypt_calls"));
  EXPECT_GT(counters.at("ope.encrypt_calls"), 0u);
  EXPECT_GT(counters.at("ope.decrypt_calls"), 0u);

  // Each Execute gets its own trace.
  const uint64_t first_id = trace->trace_id();
  ASSERT_TRUE(session.Execute(kSql).ok());
  ASSERT_NE(session.last_trace(), nullptr);
  EXPECT_GT(session.last_trace()->trace_id(), first_id);

  // And switching tracing off stops recording entirely.
  session.DisableTracing();
  ASSERT_TRUE(session.Execute(kSql).ok());
  EXPECT_EQ(session.last_trace(), nullptr);
}

TEST(TracePropagationTest, TracedQueryOverRealTcpRecordsRoundTrips) {
  proxy::MopeSystem owner(kSeed);
  ASSERT_TRUE(
      owner.LoadTable("sales", MakeSchema(), MakeRows(), MakeSpec()).ok());
  auto daemon = net::TcpServer::Start(owner.server(), net::TcpServerOptions{});
  ASSERT_TRUE(daemon.ok()) << daemon.status().ToString();

  proxy::MopeSystem remote(kSeed);
  net::RemoteOptions options;
  options.port = (*daemon)->port();
  ASSERT_TRUE(remote
                  .AttachRemoteTable(
                      "sales", MakeSpec(),
                      std::make_unique<net::RemoteConnection>(options))
                  .ok());

  proxy::EncryptedSqlSession session(&remote);
  obs::ManualClock clock(0, 100);
  session.EnableTracing(&clock);
  auto result = session.Execute(kSql);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(std::get<int64_t>(result->rows[0][0]), 31);

  const obs::Trace* trace = session.last_trace();
  ASSERT_NE(trace, nullptr);
  EXPECT_TRUE(trace->TimingsMonotone());
  // Every wire exchange of this statement appears as one span: the session's
  // schema fetch plus each batched range request (server_requests counts only
  // the latter). No faults injected, so retries cannot inflate the count.
  const auto& stats = session.last_stats();
  ASSERT_GT(stats.server_requests, 0u);
  EXPECT_EQ(trace->CountSpans("net.roundtrip"), stats.server_requests + 1);
  // And the client-side stages are all still there, same as embedded.
  EXPECT_EQ(trace->CountSpans("session.parse"), 1u);
  EXPECT_GE(trace->CountSpans("proxy.encrypt"), 1u);
  EXPECT_GE(trace->CountSpans("proxy.decrypt_filter"), 1u);
  EXPECT_GT(trace->counters().at("ope.encrypt_calls"), 0u);

  (*daemon)->Stop();
}

}  // namespace
}  // namespace mope
