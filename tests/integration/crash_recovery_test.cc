/// Process-level crash-recovery harness (the "kill -9 the database" test).
///
/// A forked child seeds a deterministic workload into a real on-disk data
/// directory through DurableCatalog (WAL-first, fsync per record) and then
/// dies via _exit at a randomized-but-deterministic operation index — no
/// destructors, no flush, exactly what SIGKILL leaves behind. The parent
/// recovers the directory and asserts the recovered catalog is exactly the
/// workload prefix the child completed, and that every index —
/// the in-memory BPlusTree and the rebuilt paged one — passes its
/// invariant checks.
///
/// Sub-operation crash states (torn pages, half-written WAL records) are
/// covered deterministically by the InMemEnv crash-at-every-point tests in
/// tests/storage/storage_engine_test.cc; this harness adds the real fork /
/// real file system / real fsync dimension.

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <string>

#include "common/random.h"
#include "engine/durability.h"
#include "engine/table.h"
#include "storage/env.h"

namespace mope::engine {
namespace {

constexpr uint64_t kMaxOps = 400;

Schema WorkloadSchema() {
  return Schema({Column{"ct", ValueType::kInt},
                 Column{"note", ValueType::kString}});
}

Row WorkloadRow(uint64_t i) {
  return {static_cast<int64_t>(i * 37 % 1000), "payload " + std::to_string(i)};
}

DurableCatalog::Options HarnessOptions() {
  DurableCatalog::Options options;
  options.wal_sync_every = 1;  // each committed op must survive the kill
  options.pool_frames = 32;
  return options;
}

void WipeDataDir(const std::string& dir) {
  storage::Env* env = storage::Env::Posix();
  for (const char* file : {"pages.db", "wal.log", "storage.meta"}) {
    const std::string path = dir + "/" + file;
    if (env->FileExists(path)) {
      ASSERT_TRUE(env->RemoveFile(path).ok()) << path;
    }
  }
}

/// Child body: run `ops` workload operations against `dir`, checkpoint at
/// `checkpoint_at` (or never, if >= ops), then die without cleanup.
[[noreturn]] void RunChildWorkload(const std::string& dir, uint64_t ops,
                                   uint64_t checkpoint_at) {
  Catalog catalog;
  auto durable = DurableCatalog::Open(dir, &catalog, HarnessOptions());
  if (!durable.ok()) _exit(10);
  auto table = catalog.CreateTable("workload", WorkloadSchema());
  if (!table.ok()) _exit(11);
  if (!(*table)->CreateIndex("ct").ok()) _exit(12);
  for (uint64_t i = 0; i < ops; ++i) {
    if (i == checkpoint_at && !(*durable)->Checkpoint().ok()) _exit(13);
    if (!(*table)->Insert(WorkloadRow(i)).ok()) _exit(14);
  }
  // SIGKILL semantics: no destructors, no flush, no checkpoint.
  _exit(42);
}

void VerifyRecoveredPrefix(const std::string& dir, uint64_t ops) {
  Catalog recovered;
  auto durable = DurableCatalog::Open(dir, &recovered, HarnessOptions());
  ASSERT_TRUE(durable.ok()) << durable.status();

  auto table = recovered.GetTable("workload");
  ASSERT_TRUE(table.ok()) << table.status();
  // wal_sync_every=1: every completed insert was durable when the child
  // died, so recovery yields exactly the child's prefix.
  ASSERT_EQ((*table)->row_count(), ops);
  for (uint64_t i = 0; i < ops; ++i) {
    EXPECT_EQ((*table)->row(i), WorkloadRow(i)) << i;
  }

  // The rebuilt in-memory index is structurally sound and queryable.
  ASSERT_TRUE((*table)->HasIndex("ct"));
  auto index = (*table)->GetIndex("ct");
  ASSERT_TRUE(index.ok());
  EXPECT_TRUE((*index)->CheckInvariants().ok());
  EXPECT_EQ((*index)->CountRange(0, 999), ops);
}

void RunCrashRound(const std::string& dir, uint64_t ops,
                   uint64_t checkpoint_at) {
  const pid_t pid = fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    RunChildWorkload(dir, ops, checkpoint_at);  // never returns
  }
  int wstatus = 0;
  ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus));
  ASSERT_EQ(WEXITSTATUS(wstatus), 42) << "child workload failed";
  VerifyRecoveredPrefix(dir, ops);
}

TEST(CrashRecoveryHarness, KilledChildRecoversToExactPrefix) {
  const std::string dir = ::testing::TempDir() + "/mope_crash_recovery";
  ASSERT_TRUE(storage::Env::Posix()->CreateDir(dir).ok());
  for (const uint64_t seed : {1u, 2u, 3u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    WipeDataDir(dir);
    Rng rng(seed);
    // Randomized-but-deterministic kill point; sometimes a checkpoint lands
    // mid-workload so recovery crosses a WAL truncation.
    const uint64_t ops = 1 + rng.UniformUint64(kMaxOps);
    const uint64_t checkpoint_at =
        (seed % 2 == 0) ? rng.UniformUint64(ops) : kMaxOps + 1;
    RunCrashRound(dir, ops, checkpoint_at);
  }
}

TEST(CrashRecoveryHarness, SurvivesKillRecoverKillAgain) {
  const std::string dir = ::testing::TempDir() + "/mope_crash_recovery_twice";
  ASSERT_TRUE(storage::Env::Posix()->CreateDir(dir).ok());
  WipeDataDir(dir);

  // Round 1: child writes 100 rows and dies.
  RunCrashRound(dir, 100, /*checkpoint_at=*/kMaxOps + 1);

  // Round 2: a second child recovers the same dir, appends 50 more rows on
  // top (RowIds must continue seamlessly), and dies too.
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    Catalog catalog;
    auto durable = DurableCatalog::Open(dir, &catalog, HarnessOptions());
    if (!durable.ok()) _exit(20);
    auto table = catalog.GetTable("workload");
    if (!table.ok()) _exit(21);
    if ((*table)->row_count() != 100) _exit(22);
    for (uint64_t i = 100; i < 150; ++i) {
      if (!(*table)->Insert(WorkloadRow(i)).ok()) _exit(23);
    }
    _exit(42);
  }
  int wstatus = 0;
  ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus));
  ASSERT_EQ(WEXITSTATUS(wstatus), 42);
  VerifyRecoveredPrefix(dir, 150);
}

}  // namespace
}  // namespace mope::engine
