#include "crypto/drbg.h"

#include <gtest/gtest.h>

#include <set>

#include "common/math_util.h"

namespace mope::crypto {
namespace {

Key128 Seed(uint8_t fill) {
  Key128 k;
  k.fill(fill);
  return k;
}

TEST(CtrDrbgTest, DeterministicFromSeed) {
  CtrDrbg a(Seed(0x11)), b(Seed(0x11));
  for (int i = 0; i < 64; ++i) EXPECT_EQ(a.NextWord(), b.NextWord());
}

TEST(CtrDrbgTest, DifferentSeedsDiverge) {
  CtrDrbg a(Seed(0x11)), b(Seed(0x12));
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextWord() == b.NextWord()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(CtrDrbgTest, NoShortCycles) {
  CtrDrbg d(Seed(0x22));
  std::set<uint64_t> seen;
  for (int i = 0; i < 10000; ++i) seen.insert(d.NextWord());
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(CtrDrbgTest, BitBalance) {
  // Population count over many words should be ~50%.
  CtrDrbg d(Seed(0x33));
  uint64_t ones = 0;
  constexpr int kWords = 10000;
  for (int i = 0; i < kWords; ++i) {
    ones += static_cast<uint64_t>(__builtin_popcountll(d.NextWord()));
  }
  const double frac = static_cast<double>(ones) / (64.0 * kWords);
  EXPECT_NEAR(frac, 0.5, 0.01);
}

TEST(CtrDrbgTest, UniformDoubleStatistics) {
  CtrDrbg d(Seed(0x44));
  double sum = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double u = d.UniformDouble();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.02);
}

TEST(CtrDrbgTest, ImplementsBitSourcePolymorphically) {
  CtrDrbg d(Seed(0x55));
  mope::BitSource* src = &d;
  for (int i = 0; i < 100; ++i) {
    EXPECT_LT(src->UniformUint64(17), 17u);
  }
}

}  // namespace
}  // namespace mope::crypto
