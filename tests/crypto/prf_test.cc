#include "crypto/prf.h"

#include <gtest/gtest.h>

#include <set>

namespace mope::crypto {
namespace {

Key128 TestKey(uint8_t fill = 0x5A) {
  Key128 k;
  k.fill(fill);
  return k;
}

TEST(PrfTest, DeterministicForSameInput) {
  Prf prf(TestKey());
  const std::vector<uint8_t> msg{1, 2, 3, 4};
  EXPECT_EQ(prf.Eval(msg), prf.Eval(msg));
}

TEST(PrfTest, DifferentInputsDifferentOutputs) {
  Prf prf(TestKey());
  EXPECT_NE(prf.Eval({1, 2, 3}), prf.Eval({1, 2, 4}));
  EXPECT_NE(prf.Eval({1, 2, 3}), prf.Eval({1, 2, 3, 0}));
}

TEST(PrfTest, LengthFramingPreventsPaddingCollisions) {
  // Without the length prefix, {1} and {1, 0} would collide under
  // zero-padding. They must not.
  Prf prf(TestKey());
  EXPECT_NE(prf.Eval({1}), prf.Eval({1, 0}));
  EXPECT_NE(prf.Eval({}), prf.Eval({0}));
}

TEST(PrfTest, EmptyInputIsValid) {
  Prf prf(TestKey());
  const Block out = prf.Eval(nullptr, 0);
  // Must be deterministic and not all-zero (overwhelmingly).
  EXPECT_EQ(out, prf.Eval(nullptr, 0));
  Block zero{};
  EXPECT_NE(out, zero);
}

TEST(PrfTest, DifferentKeysDifferentOutputs) {
  Prf a(TestKey(0x01)), b(TestKey(0x02));
  const std::vector<uint8_t> msg{9, 9, 9};
  EXPECT_NE(a.Eval(msg), b.Eval(msg));
}

TEST(PrfTest, LongInputsSpanningManyBlocks) {
  Prf prf(TestKey());
  std::vector<uint8_t> long_msg(1000);
  for (size_t i = 0; i < long_msg.size(); ++i) {
    long_msg[i] = static_cast<uint8_t>(i);
  }
  const Block a = prf.Eval(long_msg);
  long_msg[999] ^= 0x80;
  const Block b = prf.Eval(long_msg);
  EXPECT_NE(a, b);
}

TEST(PrfTest, OutputsLookDistinct) {
  // 1000 distinct tags -> 1000 distinct outputs (birthday-safe at 128 bits).
  Prf prf(TestKey());
  std::set<Block> seen;
  for (uint64_t i = 0; i < 1000; ++i) {
    TagBuilder tag(0x01);
    tag.AppendU64(i);
    seen.insert(prf.Eval(tag.bytes()));
  }
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(TagBuilderTest, AppendU64BigEndian) {
  TagBuilder tag(0xAA);
  tag.AppendU64(0x0102030405060708ULL);
  const auto& bytes = tag.bytes();
  ASSERT_EQ(bytes.size(), 9u);
  EXPECT_EQ(bytes[0], 0xAA);
  EXPECT_EQ(bytes[1], 0x01);
  EXPECT_EQ(bytes[8], 0x08);
}

TEST(TagBuilderTest, StructurallyDifferentTagsDiffer) {
  TagBuilder a(0x01), b(0x02);
  a.AppendU64(5);
  b.AppendU64(5);
  EXPECT_NE(a.bytes(), b.bytes());
}

TEST(TagBuilderTest, AppendBytes) {
  TagBuilder tag(0x00);
  const uint8_t data[3] = {7, 8, 9};
  tag.AppendBytes(data, 3);
  EXPECT_EQ(tag.bytes().size(), 4u);
  EXPECT_EQ(tag.bytes()[3], 9);
}

}  // namespace
}  // namespace mope::crypto
