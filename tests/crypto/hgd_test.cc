#include "crypto/hgd.h"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/math_util.h"
#include "common/random.h"
#include "crypto/drbg.h"

namespace mope::crypto {
namespace {

TEST(HgdTest, DegenerateCases) {
  mope::Rng rng(1);
  EXPECT_EQ(SampleHypergeometric(10, 0, 5, &rng), 0u);   // no successes
  EXPECT_EQ(SampleHypergeometric(10, 10, 5, &rng), 5u);  // all successes
  EXPECT_EQ(SampleHypergeometric(10, 4, 0, &rng), 0u);   // no draws
  EXPECT_EQ(SampleHypergeometric(10, 4, 10, &rng), 4u);  // draw everything
}

TEST(HgdTest, AlwaysInSupport) {
  mope::Rng rng(2);
  for (int trial = 0; trial < 2000; ++trial) {
    const uint64_t total = 1 + rng.UniformUint64(100);
    const uint64_t success = rng.UniformUint64(total + 1);
    const uint64_t draws = rng.UniformUint64(total + 1);
    const uint64_t x = SampleHypergeometric(total, success, draws, &rng);
    const uint64_t fail = total - success;
    const uint64_t lo = draws > fail ? draws - fail : 0;
    const uint64_t hi = std::min(draws, success);
    EXPECT_GE(x, lo);
    EXPECT_LE(x, hi);
  }
}

TEST(HgdTest, DeterministicGivenSameCoinStream) {
  Key128 seed{};
  seed[0] = 0x77;
  CtrDrbg a(seed), b(seed);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(SampleHypergeometric(1000, 300, 500, &a),
              SampleHypergeometric(1000, 300, 500, &b));
  }
}

struct HgdMomentCase {
  uint64_t total;
  uint64_t success;
  uint64_t draws;
};

class HgdMomentTest : public ::testing::TestWithParam<HgdMomentCase> {};

TEST_P(HgdMomentTest, MeanAndVarianceMatchTheory) {
  const auto [total, success, draws] = GetParam();
  mope::Rng rng(0xBEEF ^ total ^ (success << 20) ^ (draws << 40));
  constexpr int kSamples = 30000;
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    const double x =
        static_cast<double>(SampleHypergeometric(total, success, draws, &rng));
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / kSamples;
  const double var = sumsq / kSamples - mean * mean;

  const double n = static_cast<double>(draws);
  const double K = static_cast<double>(success);
  const double N = static_cast<double>(total);
  const double expect_mean = n * K / N;
  const double expect_var =
      n * (K / N) * (1 - K / N) * (N - n) / (N - 1);

  const double mean_tol = 4.0 * std::sqrt(std::max(expect_var, 0.01) / kSamples);
  EXPECT_NEAR(mean, expect_mean, std::max(mean_tol, 0.01));
  EXPECT_NEAR(var, expect_var, std::max(0.15 * expect_var, 0.02));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HgdMomentTest,
    ::testing::Values(HgdMomentCase{20, 7, 12}, HgdMomentCase{100, 50, 10},
                      HgdMomentCase{1000, 100, 500},
                      HgdMomentCase{1000, 999, 500},
                      HgdMomentCase{8192, 1024, 4096},
                      HgdMomentCase{65536, 1000, 32768},
                      HgdMomentCase{50, 25, 25}, HgdMomentCase{2, 1, 1}));

TEST(HgdTest, ExactDistributionSmallCase) {
  // HG(N=10, K=4, n=5): compare empirical frequencies to the exact pmf.
  mope::Rng rng(99);
  constexpr int kSamples = 200000;
  std::array<int, 5> counts{};  // support {0..4}
  for (int i = 0; i < kSamples; ++i) {
    const uint64_t x = SampleHypergeometric(10, 4, 5, &rng);
    ASSERT_LE(x, 4u);
    ++counts[x];
  }
  for (uint64_t k = 0; k <= 4; ++k) {
    const double expected =
        std::exp(mope::LogHypergeometricPmf(10, 4, 5, k));
    const double observed = static_cast<double>(counts[k]) / kSamples;
    EXPECT_NEAR(observed, expected, 0.005) << "k=" << k;
  }
}

TEST(HgdTest, ConsumesExactlyOneDoublePerCall) {
  // Coin-stream alignment is part of the OPE determinism contract.
  Key128 seed{};
  CtrDrbg a(seed), b(seed);
  (void)SampleHypergeometric(1000, 700, 300, &a);
  (void)b.UniformDouble();
  // Streams must now be aligned.
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.NextWord(), b.NextWord());
}


TEST(HgdLinearTest, MatchesAnchoredSamplerInDistribution) {
  // Same pmf, different bin visit order: compare empirical frequencies.
  mope::Rng rng_a(123), rng_b(123);
  constexpr int kSamples = 100000;
  std::array<int, 6> anchored{}, linear{};
  for (int i = 0; i < kSamples; ++i) {
    anchored[SampleHypergeometric(12, 5, 6, &rng_a)]++;
    linear[SampleHypergeometricLinear(12, 5, 6, &rng_b)]++;
  }
  for (size_t k = 0; k < anchored.size(); ++k) {
    EXPECT_NEAR(anchored[k], linear[k], 4.0 * std::sqrt(kSamples / 4.0))
        << "k=" << k;
  }
}

TEST(HgdLinearTest, DegenerateCases) {
  mope::Rng rng(3);
  EXPECT_EQ(SampleHypergeometricLinear(10, 0, 5, &rng), 0u);
  EXPECT_EQ(SampleHypergeometricLinear(10, 10, 5, &rng), 5u);
  EXPECT_EQ(SampleHypergeometricLinear(10, 4, 0, &rng), 0u);
}

TEST(HgdSampleTest, MatchesUncheckedSamplerOnSameStream) {
  Key128 seed{};
  seed[3] = 0x5A;
  CtrDrbg a(seed), b(seed);
  mope::BoundedBitSource bounded(&a, 64);
  for (int i = 0; i < 50; ++i) {
    const auto checked = HgdSample(1000, 300, 500, &bounded);
    ASSERT_TRUE(checked.ok()) << checked.status();
    EXPECT_EQ(checked.value(), SampleHypergeometric(1000, 300, 500, &b));
  }
}

TEST(HgdSampleTest, RejectsParametersOutOfRangeWithoutAborting) {
  mope::Rng rng(9);
  mope::BoundedBitSource bounded(&rng, 64);
  const auto too_many_successes = HgdSample(10, 11, 5, &bounded);
  ASSERT_FALSE(too_many_successes.ok());
  EXPECT_TRUE(too_many_successes.status().IsInvalidArgument());
  const auto too_many_draws = HgdSample(10, 5, 11, &bounded);
  ASSERT_FALSE(too_many_draws.ok());
  EXPECT_TRUE(too_many_draws.status().IsInvalidArgument());
}

TEST(HgdSampleTest, CoinExhaustionPropagatesAsInternalStatus) {
  mope::Rng rng(10);
  mope::BoundedBitSource dry(&rng, 0);
  const auto sample = HgdSample(1000, 300, 500, &dry);
  ASSERT_FALSE(sample.ok());
  EXPECT_TRUE(sample.status().IsInternal());
}

TEST(HgdSampleTest, SucceedsWithinBudget) {
  // One hypergeometric draw consumes exactly one 64-bit word.
  mope::Rng rng(11);
  mope::BoundedBitSource bounded(&rng, 1);
  const auto sample = HgdSample(1000, 300, 500, &bounded);
  ASSERT_TRUE(sample.ok()) << sample.status();
  EXPECT_FALSE(bounded.exhausted());
  EXPECT_EQ(bounded.remaining(), 0u);
}

TEST(HgdLinearTest, AlwaysInSupport) {
  mope::Rng rng(4);
  for (int trial = 0; trial < 500; ++trial) {
    const uint64_t total = 1 + rng.UniformUint64(60);
    const uint64_t success = rng.UniformUint64(total + 1);
    const uint64_t draws = rng.UniformUint64(total + 1);
    const uint64_t x = SampleHypergeometricLinear(total, success, draws, &rng);
    const uint64_t fail = total - success;
    EXPECT_GE(x, draws > fail ? draws - fail : 0);
    EXPECT_LE(x, std::min(draws, success));
  }
}

}  // namespace
}  // namespace mope::crypto
