#include "crypto/aes.h"

#include <gtest/gtest.h>

namespace mope::crypto {
namespace {

Key128 KeyFromBytes(const uint8_t (&bytes)[16]) {
  Key128 k;
  std::copy(std::begin(bytes), std::end(bytes), k.begin());
  return k;
}

TEST(Aes128Test, Fips197AppendixCVector) {
  // FIPS-197 Appendix C.1: AES-128(key=000102...0f,
  // pt=00112233445566778899aabbccddeeff) = 69c4e0d86a7b0430d8cdb78070b4c55a.
  const uint8_t key_bytes[16] = {0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06,
                                 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d,
                                 0x0e, 0x0f};
  const uint8_t pt[16] = {0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77,
                          0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff};
  const uint8_t expected[16] = {0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04,
                                0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
                                0xc5, 0x5a};
  Aes128 aes(KeyFromBytes(key_bytes));
  uint8_t out[16];
  aes.EncryptBlock(pt, out);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(out[i], expected[i]) << i;
}

TEST(Aes128Test, Fips197AppendixBVector) {
  // FIPS-197 Appendix B: key=2b7e151628aed2a6abf7158809cf4f3c,
  // pt=3243f6a8885a308d313198a2e0370734 -> 3925841d02dc09fbdc118597196a0b32.
  const uint8_t key_bytes[16] = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2,
                                 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
                                 0x4f, 0x3c};
  const uint8_t pt[16] = {0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d,
                          0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34};
  const uint8_t expected[16] = {0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09,
                                0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a,
                                0x0b, 0x32};
  Aes128 aes(KeyFromBytes(key_bytes));
  uint8_t out[16];
  aes.EncryptBlock(pt, out);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(out[i], expected[i]) << i;
}

TEST(Aes128Test, InPlaceEncryptionWorks) {
  const uint8_t key_bytes[16] = {0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06,
                                 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d,
                                 0x0e, 0x0f};
  Aes128 aes(KeyFromBytes(key_bytes));
  uint8_t buf[16] = {0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77,
                     0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff};
  uint8_t separate[16];
  aes.EncryptBlock(buf, separate);
  aes.EncryptBlock(buf, buf);  // in place
  for (int i = 0; i < 16; ++i) EXPECT_EQ(buf[i], separate[i]);
}

TEST(Aes128Test, BlockOverloadMatchesRawPointers) {
  Key128 key{};
  key[0] = 0xAB;
  Aes128 aes(key);
  Block in{};
  in[5] = 0x42;
  const Block out = aes.EncryptBlock(in);
  uint8_t raw[16];
  aes.EncryptBlock(in.data(), raw);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(out[i], raw[i]);
}

TEST(Aes128Test, DifferentKeysDifferentCiphertexts) {
  Key128 k1{}, k2{};
  k2[15] = 1;
  Aes128 a(k1), b(k2);
  Block pt{};
  EXPECT_NE(a.EncryptBlock(pt), b.EncryptBlock(pt));
}

TEST(Aes128Test, DifferentPlaintextsDifferentCiphertexts) {
  Key128 key{};
  Aes128 aes(key);
  Block p1{}, p2{};
  p2[0] = 1;
  EXPECT_NE(aes.EncryptBlock(p1), aes.EncryptBlock(p2));
}


TEST(Aes128Test, DecryptInvertsEncrypt) {
  const uint8_t key_bytes[16] = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2,
                                 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
                                 0x4f, 0x3c};
  Aes128 aes(KeyFromBytes(key_bytes));
  Block pt{};
  for (int trial = 0; trial < 64; ++trial) {
    for (size_t i = 0; i < 16; ++i) {
      pt[i] = static_cast<uint8_t>(trial * 31 + i * 7);
    }
    EXPECT_EQ(aes.DecryptBlock(aes.EncryptBlock(pt)), pt);
  }
}

TEST(Aes128Test, Fips197DecryptVector) {
  // Inverse of the Appendix C.1 vector.
  const uint8_t key_bytes[16] = {0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06,
                                 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d,
                                 0x0e, 0x0f};
  const uint8_t ct[16] = {0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30,
                          0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4, 0xc5, 0x5a};
  const uint8_t expected[16] = {0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66,
                                0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
                                0xee, 0xff};
  Aes128 aes(KeyFromBytes(key_bytes));
  uint8_t out[16];
  aes.DecryptBlock(ct, out);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(out[i], expected[i]) << i;
}

TEST(Aes128Test, InPlaceDecryptionWorks) {
  Key128 key{};
  key[3] = 0x77;
  Aes128 aes(key);
  Block buf{};
  buf[0] = 0x11;
  const Block expected = aes.DecryptBlock(buf);
  aes.DecryptBlock(buf.data(), buf.data());
  EXPECT_EQ(buf, expected);
}

}  // namespace
}  // namespace mope::crypto
