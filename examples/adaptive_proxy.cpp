/// Learning the query distribution online (Section 4).
///
/// A client issues range queries against a geographic dataset (the SanFran
/// longitude workload). The proxy starts with no knowledge of the query
/// distribution, learns it from a buffer of observed queries, and its
/// fake-query overhead converges toward the non-adaptive optimum — while
/// the stream the server observes stays uniform (checked with a chi-square
/// test, and with the gap attack, which comes up empty).

#include <cstdio>

#include "attack/gap_attack.h"
#include "common/math_util.h"
#include "dist/completion.h"
#include "proxy/system.h"
#include "workload/datasets.h"
#include "workload/generator.h"

using namespace mope;  // NOLINT

int main() {
  const dist::Distribution sanfran =
      workload::MakeDataset(workload::DatasetKind::kSanFran);
  const uint64_t domain = sanfran.size();
  Rng rng(0xADA);

  // Database: 100k road-network records, distributed like the dataset.
  std::vector<engine::Row> rows;
  const auto counts = workload::DeterministicCounts(sanfran, 100000);
  for (uint64_t bin = 0; bin < domain; ++bin) {
    for (uint64_t c = 0; c < counts[bin]; ++c) {
      rows.push_back(engine::Row{static_cast<int64_t>(bin),
                                 static_cast<int64_t>(rows.size())});
    }
  }

  proxy::MopeSystem system(0x5F);
  proxy::EncryptedColumnSpec spec;
  spec.column = "longitude_bin";
  spec.domain = domain;
  spec.k = 10;
  spec.mode = proxy::QueryMode::kAdaptiveUniform;
  spec.batch_size = 50;
  auto status = system.LoadTable(
      "roadnet",
      engine::Schema({{"longitude_bin", engine::ValueType::kInt},
                      {"node_id", engine::ValueType::kInt}}),
      rows, spec);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  // Reference: what the non-adaptive QueryU would pay with full knowledge.
  auto starts = workload::BuildStartDistribution(sanfran, {10.0}, 10, 20000, &rng);
  auto plan = dist::MakeUniformPlan(starts);
  std::printf("non-adaptive QueryU steady state: %.0f fakes per real query\n\n",
              plan->expected_fakes_per_real());

  std::printf("%8s %16s %16s %14s\n", "round", "fakes/10 queries",
              "rows/10 queries", "buffer size");
  Histogram perceived(domain);
  auto proxy = system.GetProxy("roadnet", "longitude_bin").value();
  for (int round = 0; round < 40; ++round) {
    uint64_t fakes = 0, shipped = 0;
    for (int i = 0; i < 10; ++i) {
      const query::RangeQuery q =
          workload::GenerateQuery(sanfran, {10.0}, &rng);
      auto resp = system.Query("roadnet", "longitude_bin", q);
      if (!resp.ok()) {
        std::fprintf(stderr, "%s\n", resp.status().ToString().c_str());
        return 1;
      }
      fakes += resp->fake_queries_sent;
      shipped += resp->rows_received;
    }
    if (round < 5 || round % 10 == 9) {
      std::printf("%8d %16llu %16llu %14llu\n", round,
                  static_cast<unsigned long long>(fakes),
                  static_cast<unsigned long long>(shipped),
                  static_cast<unsigned long long>(proxy->totals().real_queries_sent));
    }
  }

  // The server's perspective: reconstruct the perceived start stream by
  // replaying the proxy totals is internal; instead run the gap attack on a
  // fresh simulated stream with the learned mix to confirm uniformity.
  std::printf(
      "\nserver-side signal: %llu total queries observed, of which %llu "
      "fake\n",
      static_cast<unsigned long long>(proxy->totals().real_queries_sent +
                                      proxy->totals().fake_queries_sent),
      static_cast<unsigned long long>(proxy->totals().fake_queries_sent));
  std::printf(
      "(Figures 1-3 benches demonstrate the gap attack failing against this "
      "mix.)\n");
  return 0;
}
