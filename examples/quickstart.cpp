/// Quickstart: encrypted range queries in ~40 lines.
///
/// Builds the paper's three-party architecture in-process — a client, the
/// trusted proxy (holds the MOPE key and mixes in fake queries), and an
/// unmodified database server that only ever sees ciphertexts — loads a
/// small salary table, and answers a range query.

#include <cstdio>

#include "proxy/system.h"

using mope::engine::Column;
using mope::engine::Row;
using mope::engine::Schema;
using mope::engine::ValueType;

int main() {
  // 1. The data owner's plaintext table: (salary, employee id).
  Schema schema({Column{"salary", ValueType::kInt},
                 Column{"employee", ValueType::kString}});
  std::vector<Row> rows;
  const char* names[] = {"ada", "grace", "edsger", "barbara", "donald",
                         "tony", "leslie", "frances"};
  const int64_t salaries[] = {81000, 95000, 72000, 99000, 88000,
                              76000, 91000, 84000};
  for (int i = 0; i < 8; ++i) {
    rows.push_back(Row{salaries[i] / 1000, std::string(names[i])});
  }

  // 2. Stand up the system and load the table: the salary column (domain
  //    0..199, in thousands) is MOPE-encrypted before it reaches the server,
  //    and queries run through AdaptiveQueryU — no prior knowledge of the
  //    query distribution needed.
  mope::proxy::MopeSystem system(/*seed=*/2026);
  mope::proxy::EncryptedColumnSpec spec;
  spec.column = "salary";
  spec.domain = 200;
  spec.k = 10;  // fixed query length
  spec.mode = mope::proxy::QueryMode::kAdaptiveUniform;
  auto status = system.LoadTable("staff", schema, rows, spec);
  if (!status.ok()) {
    std::fprintf(stderr, "load failed: %s\n", status.ToString().c_str());
    return 1;
  }

  // 3. A client range query: salaries between 80k and 92k.
  auto response = system.Query("staff", "salary", {80, 92});
  if (!response.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 response.status().ToString().c_str());
    return 1;
  }

  std::printf("salaries in [80k, 92k]:\n");
  for (const Row& row : response->rows) {
    std::printf("  %-10s %lldk\n", std::get<std::string>(row[1]).c_str(),
                static_cast<long long>(std::get<int64_t>(row[0])));
  }
  std::printf(
      "\nwhat it cost to hide the access pattern: %llu real + %llu fake "
      "queries,\n%llu rows shipped for %zu returned.\n",
      static_cast<unsigned long long>(response->real_queries_sent),
      static_cast<unsigned long long>(response->fake_queries_sent),
      static_cast<unsigned long long>(response->rows_received),
      response->rows.size());

  // 4. What the server actually stored: ciphertexts, not salaries.
  const auto table = system.server()->catalog()->GetTable("staff");
  std::printf("\nserver-side view of the salary column: ");
  for (uint64_t r = 0; r < (*table)->row_count(); ++r) {
    std::printf("%lld ",
                static_cast<long long>(std::get<int64_t>((*table)->row(r)[0])));
  }
  std::printf("\n");
  return 0;
}
