/// mope_shell — an interactive SQL shell over the encrypted system.
///
/// Boots the three-party architecture with a TPC-H-style warehouse whose
/// l_shipdate column is MOPE-encrypted, then reads SQL from stdin and runs
/// it through the CryptDB-style EncryptedSqlSession: range predicates on
/// l_shipdate are rewritten into mixed real+fake encrypted range queries;
/// everything else executes client-side over the fetched rows.
///
/// Usage:
///   mope_shell                      # interactive (reads stdin)
///   echo "SELECT ..." | mope_shell  # scripted
///   mope_shell -c "SELECT ..."      # one-shot
///   mope_shell --connect HOST:PORT  # proxy-only: data lives in mope_serverd
///
/// With --connect the shell is the trusted proxy of the paper's Figure 4 in
/// its own process: the ciphertext stays in a remote mope_serverd, and this
/// process re-derives the MOPE key from the shared seed (0x5811) — the key
/// never crosses the wire. Two-process quickstart:
///
///   mope_serverd --tpch --port 5811 &
///   mope_shell --connect 127.0.0.1:5811
///
/// Meta-commands: \help  \stats  \serverstats  \history  \explain SQL
/// \leakage  \trace [--chrome FILE]  \rotate  \tables  \snapshot PATH  \quit
/// (\rotate and \snapshot need the embedded server; unavailable remotely.
/// \serverstats works for both: embedded reads the registry directly,
/// --connect fetches it from the daemon over the wire. `-c` accepts
/// meta-commands too: `mope_shell --connect H:P -c '\serverstats'`.)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <utility>

#include "engine/snapshot.h"
#include "net/remote_connection.h"
#include "obs/clock.h"
#include "obs/leakage.h"
#include "obs/timeseries.h"
#include "obs/trace_export.h"
#include "proxy/connection_registry.h"
#include "proxy/sql_session.h"
#include "workload/tpch.h"

namespace {

using namespace mope;  // NOLINT

void PrintResult(const sql::SqlResult& result) {
  // EXPLAIN output is a pre-formatted plan tree: column padding would
  // mangle the indentation, so print it verbatim.
  if (result.columns.size() == 1 && result.columns[0] == "QUERY PLAN") {
    std::printf("QUERY PLAN\n----------\n");
    for (const auto& row : result.rows) {
      std::printf("%s\n", engine::ValueToString(row[0]).c_str());
    }
    return;
  }
  for (const auto& col : result.columns) std::printf("%18s", col.c_str());
  std::printf("\n");
  for (size_t i = 0; i < result.columns.size(); ++i) std::printf("%18s", "---");
  std::printf("\n");
  size_t shown = 0;
  for (const auto& row : result.rows) {
    for (const auto& value : row) {
      std::printf("%18s", engine::ValueToString(value).c_str());
    }
    std::printf("\n");
    if (++shown == 25 && result.rows.size() > 25) {
      std::printf("... (%zu rows total)\n", result.rows.size());
      break;
    }
  }
  std::printf("(%zu rows)\n", result.rows.size());
}

void PrintHelp() {
  std::printf(
      "Encrypted SQL over MOPE. The LINEITEM table's l_shipdate column is\n"
      "encrypted (day index, 0 = 1992-01-01); queries need a range predicate\n"
      "on it. The PART table is attached client-side for joins.\n\n"
      "  SELECT SUM(l_extendedprice * l_discount) FROM lineitem\n"
      "    WHERE l_shipdate BETWEEN 366 AND 730 AND l_discount < 0.05\n\n"
      "EXPLAIN <select> shows the fetch decision and local plan with\n"
      "estimates; EXPLAIN ANALYZE <select> executes it and annotates each\n"
      "operator with actuals plus the query's resource vector (real/fake\n"
      "mix, HGD draws, server counter deltas, wire bytes).\n\n"
      "meta-commands:\n"
      "  \\help           this text        \\stats   session traffic\n"
      "  \\tables         schemas          \\rotate  rotate the MOPE key\n"
      "  \\explain SQL    shorthand for EXPLAIN ANALYZE SQL\n"
      "  \\serverstats    the server's metrics registry (over the wire\n"
      "                  when --connect; the proxy never leaves its process)\n"
      "  \\history [PREFIX [N]]\n"
      "                  metric history: every \\history call snapshots the\n"
      "                  server's registry into a client-side ring-buffer\n"
      "                  sampler; with PREFIX it prints the last N (default\n"
      "                  8) samples + rollups of each matching series\n"
      "  \\leakage        live leakage-audit verdict from the server's\n"
      "                  leakage.* gauges (enable with `\\leakage on`\n"
      "                  embedded, or `mope_serverd --audit` remotely)\n"
      "  \\trace          toggle per-query tracing (prints the span tree\n"
      "                  after each statement)\n"
      "  \\trace --chrome FILE\n"
      "                  tracing on, and each statement's span tree is also\n"
      "                  written to FILE as Chrome trace-event JSON\n"
      "                  (load in chrome://tracing or ui.perfetto.dev)\n"
      "  \\snapshot PATH  persist the encrypted server catalog\n"
      "  \\quit           exit\n");
}

/// Kind heuristic for wire-fetched metric names: a StatsReply is untyped
/// (flat name/value pairs), so \history infers just enough to pick the
/// right rollups — quantile companions are derived levels, the leakage/alert
/// gauges are signed levels, everything else accumulates like a counter.
obs::MetricKind InferMetricKind(const std::string& name) {
  const auto ends_with = [&name](const char* suffix) {
    const size_t n = std::strlen(suffix);
    return name.size() >= n && name.compare(name.size() - n, n, suffix) == 0;
  };
  if (ends_with(".p50") || ends_with(".p95") || ends_with(".p99")) {
    return obs::MetricKind::kDerived;
  }
  if (name.rfind("leakage.", 0) == 0 || name.rfind("alerts.", 0) == 0) {
    return obs::MetricKind::kGauge;
  }
  return obs::MetricKind::kCounter;
}

}  // namespace

int main(int argc, char** argv) {
  std::string connect;   // host:port of a mope_serverd, or empty = embedded
  std::string one_shot;  // -c SQL
  bool have_one_shot = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--connect" && i + 1 < argc) {
      connect = argv[++i];
    } else if (arg == "-c" && i + 1 < argc) {
      one_shot = argv[++i];
      have_one_shot = true;
    } else {
      std::fprintf(stderr,
                   "usage: mope_shell [--connect HOST:PORT] [-c SQL]\n");
      return 2;
    }
  }

  workload::TpchConfig config;
  config.scale_factor = 0.002;
  const workload::TpchData data = workload::GenerateTpch(config);

  // Same seed as mope_serverd --tpch: in --connect mode this process
  // re-derives the exact key the server's ciphertexts were produced under.
  proxy::MopeSystem system(0x5811);
  proxy::EncryptedColumnSpec spec;
  spec.column = "l_shipdate";
  spec.domain = workload::kTpchDateDomain;
  spec.k = 30;
  spec.mode = proxy::QueryMode::kAdaptiveUniform;
  spec.batch_size = 64;
  Status status;
  if (connect.empty()) {
    status = system.LoadTable("lineitem", data.lineitem_schema, data.lineitem,
                              spec);
  } else {
    net::RegisterTcpScheme();
    auto conn = proxy::MakeConnection("tcp://" + connect);
    if (!conn.ok()) {
      std::fprintf(stderr, "cannot connect: %s\n",
                   conn.status().ToString().c_str());
      return 1;
    }
    status = system.AttachRemoteTable("lineitem", spec,
                                      std::move(conn).value());
  }
  if (!status.ok()) {
    std::fprintf(stderr, "boot failed: %s\n", status.ToString().c_str());
    return 1;
  }
  proxy::EncryptedSqlSession session(&system);
  status = session.AttachClientTable("part", data.part_schema, data.part);
  if (!status.ok()) {
    std::fprintf(stderr, "boot failed: %s\n", status.ToString().c_str());
    return 1;
  }

  // \history state: a client-side ring-buffer sampler fed by wire-fetched
  // StatsReply snapshots (the daemon's own sampler is server-side; this one
  // gives the *proxy* operator history without any HTTP endpoint).
  obs::MetricsRegistry history_registry;
  obs::TimeSeriesOptions history_options;
  history_options.window_capacity = 64;
  obs::TimeSeriesSampler history(&history_registry, history_options);
  unsigned long long history_snapshots = 0;  // \history calls so far

  std::string chrome_path;  // non-empty: export each trace as Chrome JSON
  bool tracing = false;     // \trace toggle; gates the span-tree dump
  auto run = [&session, &chrome_path, &tracing](const std::string& sql) {
    auto result = session.Execute(sql);
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      return;
    }
    PrintResult(*result);
    const auto& stats = session.last_stats();
    std::printf(
        "[traffic: %llu real + %llu fake queries in %llu requests; "
        "%llu rows fetched]\n",
        static_cast<unsigned long long>(stats.real_queries),
        static_cast<unsigned long long>(stats.fake_queries),
        static_cast<unsigned long long>(stats.server_requests),
        static_cast<unsigned long long>(stats.rows_fetched));
    // EXPLAIN ANALYZE leaves a trace behind even when \trace is off (the
    // actuals need one); only dump the span tree when the user asked for it.
    if (tracing && session.last_trace() != nullptr) {
      std::printf("%s", session.last_trace()->RenderTree().c_str());
      if (!chrome_path.empty()) {
        std::ofstream out(chrome_path, std::ios::trunc);
        if (out) {
          out << obs::ExportChromeTrace(*session.last_trace());
          std::printf("[chrome trace written to %s]\n", chrome_path.c_str());
        } else {
          std::printf("error: cannot write %s\n", chrome_path.c_str());
        }
      }
    }
  };

  // Handles one input line — meta-command or SQL. Shared between the
  // interactive loop and `-c`, so scripts can fetch \serverstats too.
  auto handle_line = [&](const std::string& line) {
    if (line == "\\help") {
      PrintHelp();
    } else if (line == "\\stats") {
      auto proxy = system.GetProxy("lineitem", "l_shipdate");
      if (proxy.ok()) {
        const auto& totals = (*proxy)->totals();
        std::printf("session totals: %llu real, %llu fake, %llu requests, "
                    "%llu rows shipped\n",
                    static_cast<unsigned long long>(totals.real_queries_sent),
                    static_cast<unsigned long long>(totals.fake_queries_sent),
                    static_cast<unsigned long long>(totals.server_requests),
                    static_cast<unsigned long long>(totals.rows_received));
      }
    } else if (line == "\\serverstats") {
      auto proxy = system.GetProxy("lineitem", "l_shipdate");
      if (!proxy.ok()) {
        std::printf("error: %s\n", proxy.status().ToString().c_str());
        return;
      }
      auto stats = (*proxy)->FetchServerStats();
      if (!stats.ok()) {
        std::printf("error: %s\n", stats.status().ToString().c_str());
        return;
      }
      // The "queries" section first: request totals by kind and dispatch
      // latency quantiles, pulled out of the flat snapshot (the daemon's
      // /statusz renders the same section from the same counters).
      const auto lookup = [&stats](const char* name) -> unsigned long long {
        for (const auto& [n, v] : *stats) {
          if (n == name) return static_cast<unsigned long long>(v);
        }
        return 0;
      };
      std::printf(
          "queries: range_batch=%llu count_batch=%llu schema=%llu "
          "stats=%llu\n"
          "dispatch_ns: p50=%llu p95=%llu p99=%llu\n",
          lookup("server.requests.range_batch"),
          lookup("server.requests.count_batch"),
          lookup("server.requests.schema"), lookup("server.requests.stats"),
          lookup("server.dispatch_ns.p50"), lookup("server.dispatch_ns.p95"),
          lookup("server.dispatch_ns.p99"));
      std::printf("server metrics (%zu entries):\n", stats->size());
      for (const auto& [name, value] : *stats) {
        std::printf("  %-40s %llu\n", name.c_str(),
                    static_cast<unsigned long long>(value));
      }
    } else if (line == "\\history" || line.rfind("\\history ", 0) == 0) {
      auto proxy = system.GetProxy("lineitem", "l_shipdate");
      if (!proxy.ok()) {
        std::printf("error: %s\n", proxy.status().ToString().c_str());
        return;
      }
      auto stats = (*proxy)->FetchServerStats();
      if (!stats.ok()) {
        std::printf("error: %s\n", stats.status().ToString().c_str());
        return;
      }
      // One wire snapshot = one sample of every server metric; repeated
      // \history calls are what build the series.
      const uint64_t now_ns = obs::SystemClock()->NowNanos();
      for (const auto& [name, value] : *stats) {
        history.Ingest(now_ns, name, InferMetricKind(name), value);
      }
      ++history_snapshots;
      std::string prefix;
      size_t window = 8;
      if (line.rfind("\\history ", 0) == 0) {
        const std::string rest = line.substr(sizeof("\\history ") - 1);
        const size_t space = rest.find(' ');
        prefix = rest.substr(0, space);
        if (space != std::string::npos) {
          const unsigned long n =
              std::strtoul(rest.c_str() + space + 1, nullptr, 10);
          if (n == 0 || n > history.max_window()) {
            std::printf("window must be in [1, %zu]\n", history.max_window());
            return;
          }
          window = n;
        }
      }
      if (prefix.empty()) {
        std::printf("snapshot ingested: %zu series, %llu snapshots held\n"
                    "usage: \\history PREFIX [N] prints matching series\n",
                    history.series_count(), history_snapshots);
        return;
      }
      auto views = history.Query(prefix, window);
      if (!views.ok()) {
        std::printf("error: %s\n", views.status().ToString().c_str());
        return;
      }
      for (const auto& view : *views) {
        std::printf("%s (%s):", view.name.c_str(),
                    obs::MetricKindName(view.kind));
        for (const auto& pt : view.points) {
          if (view.kind == obs::MetricKind::kGauge) {
            std::printf(" %lld", static_cast<long long>(pt.value));
          } else {
            std::printf(" %llu", static_cast<unsigned long long>(pt.value));
          }
        }
        std::printf("\n");
        const auto& r = view.rollup;
        if (view.kind == obs::MetricKind::kGauge) {
          std::printf("  [%zu samples  min=%lld max=%lld mean=%.6g]\n",
                      r.samples, static_cast<long long>(r.min),
                      static_cast<long long>(r.max), r.mean);
        } else if (view.kind == obs::MetricKind::kCounter) {
          std::printf("  [%zu samples  min=%llu max=%llu mean=%.6g "
                      "delta=%llu rate=%.6g/s]\n",
                      r.samples, static_cast<unsigned long long>(r.min),
                      static_cast<unsigned long long>(r.max), r.mean,
                      static_cast<unsigned long long>(r.delta),
                      r.rate_per_sec);
        } else {
          std::printf("  [%zu samples  min=%llu max=%llu mean=%.6g]\n",
                      r.samples, static_cast<unsigned long long>(r.min),
                      static_cast<unsigned long long>(r.max), r.mean);
        }
      }
    } else if (line.rfind("\\explain ", 0) == 0) {
      run("EXPLAIN ANALYZE " + line.substr(sizeof("\\explain ") - 1));
    } else if (line == "\\leakage" || line == "\\leakage on") {
      if (line == "\\leakage on") {
        if (!connect.empty()) {
          std::printf("the auditor runs inside the server: start "
                      "mope_serverd with --audit instead\n");
          return;
        }
        auto enabled = system.EnableLeakageAudit(spec.domain);
        if (!enabled.ok()) {
          std::printf("error: %s\n", enabled.ToString().c_str());
          return;
        }
        std::printf("leakage auditing on (server-side, ciphertext-only)\n");
        return;
      }
      auto proxy = system.GetProxy("lineitem", "l_shipdate");
      if (!proxy.ok()) {
        std::printf("error: %s\n", proxy.status().ToString().c_str());
        return;
      }
      // Same path \serverstats uses: the verdict is rendered from the
      // metrics snapshot, so it works identically embedded and remote.
      auto stats = (*proxy)->FetchServerStats();
      if (!stats.ok()) {
        std::printf("error: %s\n", stats.status().ToString().c_str());
        return;
      }
      std::printf("%s", obs::LeakageAuditor::DescribeStats(*stats).c_str());
    } else if (line == "\\trace" || line.rfind("\\trace --chrome ", 0) == 0) {
      if (line.rfind("\\trace --chrome ", 0) == 0) {
        chrome_path = line.substr(sizeof("\\trace --chrome ") - 1);
        if (chrome_path.empty()) {
          std::printf("usage: \\trace --chrome FILE\n");
          return;
        }
        tracing = true;
        session.EnableTracing();
        std::printf("tracing on; chrome trace JSON goes to %s\n",
                    chrome_path.c_str());
        return;
      }
      tracing = !tracing;
      if (tracing) {
        session.EnableTracing();
        std::printf("tracing on (span tree prints after each statement)\n");
      } else {
        session.DisableTracing();
        chrome_path.clear();
        std::printf("tracing off\n");
      }
    } else if (line == "\\rotate") {
      auto rotated = system.RotateKey("lineitem", "l_shipdate");
      if (rotated.ok()) {
        std::printf("re-encrypted %llu rows under a fresh key/offset\n",
                    static_cast<unsigned long long>(rotated.value()));
      } else {
        std::printf("error: %s\n", rotated.status().ToString().c_str());
      }
    } else if (line.rfind("\\snapshot ", 0) == 0) {
      if (!connect.empty()) {
        std::printf("\\snapshot needs the embedded server "
                    "(the data lives in mope_serverd)\n");
        return;
      }
      // The snapshot is pure ciphertext — safe to persist server-side.
      const std::string path = line.substr(10);
      auto saved = engine::SaveCatalog(*system.server()->catalog(), path);
      std::printf("%s\n", saved.ok()
                              ? ("saved encrypted catalog to " + path).c_str()
                              : saved.ToString().c_str());
    } else if (line == "\\tables") {
      std::printf("lineitem(l_orderkey, l_partkey, l_quantity, "
                  "l_extendedprice, l_discount, l_shipdate*, l_commitdate, "
                  "l_receiptdate, l_returnflag)   * = MOPE-encrypted\n"
                  "part(p_partkey, p_type, p_ispromo, p_retailprice)   "
                  "[client-side]\n");
    } else if (!line.empty() && line[0] == '\\') {
      std::printf("unknown meta-command %s (try \\help)\n", line.c_str());
    } else {
      run(line);
    }
  };

  if (have_one_shot) {
    handle_line(one_shot);
    return 0;
  }

  if (connect.empty()) {
    std::printf("mope_shell — %zu LINEITEM rows, l_shipdate MOPE-encrypted.\n",
                data.lineitem.size());
  } else {
    std::printf("mope_shell — proxying to mope_serverd at %s "
                "(l_shipdate MOPE-encrypted, key derived locally).\n",
                connect.c_str());
  }
  std::printf("Type \\help for help.\n");
  std::string line;
  while (true) {
    std::printf("mope> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (line.empty()) continue;
    if (line == "\\quit" || line == "\\q") break;
    handle_line(line);
  }
  return 0;
}
