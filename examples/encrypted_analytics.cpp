/// Encrypted analytics over a TPC-H-style warehouse.
///
/// The scenario the paper's evaluation is built on: an outsourced LINEITEM
/// table whose ship-date column is MOPE-encrypted, answering the Q6
/// ("forecast revenue change") and Q14 ("promotion effect") templates — here
/// written as ordinary SQL and executed through the CryptDB-style
/// EncryptedSqlSession, which rewrites the shipdate range into mixed
/// real+fake encrypted range queries (QueryP with a 30-day period, batched
/// 100 ranges per request) and evaluates everything else client-side.
/// Every number is cross-checked against plaintext SQL on the same data.

#include <cstdio>

#include "common/random.h"
#include "proxy/sql_session.h"
#include "sql/planner.h"
#include "workload/tpch.h"

namespace {

using mope::Rng;
using mope::engine::Catalog;
using mope::engine::Row;
using namespace mope::workload;  // NOLINT

mope::dist::Distribution TemplateStarts(uint64_t k, bool q6, Rng* rng) {
  mope::Histogram hist(kTpchDateDomain);
  for (int i = 0; i < 20000; ++i) {
    const mope::query::RangeQuery q =
        q6 ? SampleQ6(rng).shipdate : SampleQ14(rng).shipdate;
    for (const auto& piece : mope::query::Decompose(q, k, kTpchDateDomain)) {
      hist.Add(piece.start);
    }
  }
  return std::move(mope::dist::Distribution::FromHistogram(hist)).value();
}

void Check(const char* what, double encrypted, double plaintext) {
  std::printf("  %-28s encrypted %14.2f | plaintext %14.2f | %s\n", what,
              encrypted, plaintext,
              std::abs(encrypted - plaintext) < 1e-6 * (1 + std::abs(plaintext))
                  ? "MATCH"
                  : "MISMATCH");
}

}  // namespace

int main() {
  // Generate the warehouse and keep a plaintext copy for verification.
  TpchConfig config;
  config.scale_factor = 0.002;
  const TpchData data = GenerateTpch(config);
  std::printf("TPC-H style warehouse: %zu lineitem, %zu orders, %zu parts\n",
              data.lineitem.size(), data.orders.size(), data.part.size());

  Catalog plain;
  auto li = plain.CreateTable("lineitem", data.lineitem_schema);
  for (const Row& row : data.lineitem) (void)(*li)->Insert(row);
  (void)(*li)->CreateIndex("l_shipdate");
  auto part = plain.CreateTable("part", data.part_schema);
  for (const Row& row : data.part) (void)(*part)->Insert(row);

  Rng rng(7);

  // Outsource LINEITEM with an encrypted ship date. QueryP with a 30-day
  // period: the server may learn where in the month queries fall, never the
  // month itself.
  mope::proxy::MopeSystem system(99);
  mope::proxy::EncryptedColumnSpec spec;
  spec.column = "l_shipdate";
  spec.domain = kTpchDateDomain;
  spec.k = 30;
  spec.mode = mope::proxy::QueryMode::kPeriodic;
  spec.period = kPeriod1Month;
  spec.batch_size = 100;
  const auto starts = TemplateStarts(spec.k, /*q6=*/false, &rng);
  auto status = system.LoadTable("lineitem", data.lineitem_schema,
                                 data.lineitem, spec, &starts);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  mope::proxy::EncryptedSqlSession session(&system);
  // PART is a small dimension table that never left the client.
  status = session.AttachClientTable("part", data.part_schema, data.part);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  auto run_both = [&](const char* label, const std::string& sql) {
    auto enc = session.Execute(sql);
    auto base = mope::sql::ExecuteSql(&plain, sql);
    if (!enc.ok() || !base.ok()) {
      std::fprintf(stderr, "%s failed: %s / %s\n", label,
                   enc.status().ToString().c_str(),
                   base.status().ToString().c_str());
      std::exit(1);
    }
    Check(label, std::get<double>(enc->rows[0][0]),
          std::get<double>(base->rows[0][0]));
    const auto& stats = session.last_stats();
    std::printf("  %-28s traffic: %llu real + %llu fake ranges, %llu "
                "requests, %llu rows shipped\n",
                "", static_cast<unsigned long long>(stats.real_queries),
                static_cast<unsigned long long>(stats.fake_queries),
                static_cast<unsigned long long>(stats.server_requests),
                static_cast<unsigned long long>(stats.rows_fetched));
  };

  // --- TPC-H Q6: revenue from discounted small-quantity lineitems.
  const Q6Params q6 = SampleQ6(&rng);
  std::printf("\nQ6 — shipdate %s..%s, discount %.2f±0.01, qty < %.0f:\n",
              FormatDate(TpchDateFromIndex(q6.shipdate.first)).c_str(),
              FormatDate(TpchDateFromIndex(q6.shipdate.last)).c_str(),
              (q6.discount_lo + q6.discount_hi) / 2, q6.quantity_lt);
  run_both("revenue", Q6Sql(q6));

  // --- TPC-H Q14: promo vs total revenue in one month (joins PART).
  const Q14Params q14 = SampleQ14(&rng);
  std::printf("\nQ14 — shipdate %s..%s:\n",
              FormatDate(TpchDateFromIndex(q14.shipdate.first)).c_str(),
              FormatDate(TpchDateFromIndex(q14.shipdate.last)).c_str());
  run_both("promo_revenue", Q14PromoSql(q14));
  run_both("total_revenue", Q14TotalSql(q14));
  return 0;
}
