/// Security lab: watch the attacks succeed and fail.
///
/// Plays the adversary against four configurations of the same encrypted
/// column — plain OPE, naive MOPE (no fakes), MOPE+QueryU and MOPE+QueryP —
/// and reports what each leaks: the gap attack's offset recovery, the phase
/// attack's low-bits recovery, and the window one-wayness games of
/// Section 7. A compact, runnable version of the paper's security story.

#include <cstdio>

#include "attack/gap_attack.h"
#include "attack/wow.h"
#include "common/math_util.h"
#include "common/random.h"
#include "dist/completion.h"
#include "ope/mope.h"

using namespace mope;  // NOLINT

namespace {

void GapAttackDemo() {
  std::printf("--- 1. The gap attack (why naive MOPE fails) ---\n");
  constexpr uint64_t kDomain = 365;  // a year of dates
  constexpr uint64_t kK = 7;         // week-long queries
  Rng rng(0x5EC);

  // The secret: an actual MOPE scheme over the date domain.
  const auto key = ope::MopeKey::Generate(kDomain, &rng);
  auto scheme = ope::MopeScheme::Create(
      {kDomain, ope::SuggestRange(kDomain)}, key);
  std::printf("secret offset j = %llu (the server must not learn this)\n",
              static_cast<unsigned long long>(key.offset));

  // The server observes each encrypted query's start rank. Simulate by
  // ranking ciphertext starts: Enc is monotone on shifted values, so the
  // rank of Enc(start) among all ciphertexts equals the shifted start.
  attack::GapAttack attack(kDomain);
  std::vector<double> w(kDomain, 0.0);
  for (uint64_t s = 0; s + kK <= kDomain; ++s) w[s] = 1.0 + (s % 30);
  auto q = std::move(dist::Distribution::FromWeights(std::move(w))).value();
  for (int i = 0; i < 50000; ++i) {
    attack.ObserveStart((q.Sample(&rng) + key.offset) % kDomain);
  }
  auto est = attack.EstimateOffset();
  std::printf("gap attack against naive queries: recovered j = %s\n\n",
              est.ok() ? std::to_string(est.value()).c_str() : "(nothing)");
}

void WowDemo() {
  std::printf("--- 2. Window one-wayness games (Section 7) ---\n");
  attack::WowConfig config;
  config.domain = 1024;
  config.range = 8192;
  config.db_size = 24;
  config.window = 48;
  config.num_queries = 40000;
  config.k = 8;
  config.period = 32;
  config.trials = 80;

  std::vector<double> w(config.domain);
  for (uint64_t i = 0; i < config.domain; ++i) w[i] = (i % 32 < 8) ? 1.0 : 0.05;
  auto q = std::move(dist::Distribution::FromWeights(std::move(w))).value();

  struct RowSpec {
    const char* name;
    attack::WowScheme scheme;
    const char* verdict;
  };
  const RowSpec rows[] = {
      {"plain OPE", attack::WowScheme::kOpe,
       "location leaks: scaling adversary wins"},
      {"MOPE, naive queries", attack::WowScheme::kMopeNaive,
       "gap attack reorients the space"},
      {"MOPE + QueryU", attack::WowScheme::kMopeQueryU,
       "location advantage pinned to ~w/M"},
      {"MOPE + QueryP[32]", attack::WowScheme::kMopeQueryP,
       "leaks only the low bits of j"},
  };
  Rng rng(0x5EC2);
  std::printf("%-22s %9s %9s %11s  %s\n", "scheme", "loc adv", "dist adv",
              "offset rec", "reading");
  for (const RowSpec& row : rows) {
    auto result = attack::RunWowExperiment(config, row.scheme, &q, &rng);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      continue;
    }
    std::printf("%-22s %9.3f %9.3f %11.3f  %s\n", row.name,
                result->location_advantage, result->distance_advantage,
                result->offset_recovery_rate, row.verdict);
  }
  std::printf("random-guess location baseline: w/M = %.3f\n\n",
              static_cast<double>(config.window + 1) /
                  static_cast<double>(config.domain));
}

void TradeoffDemo() {
  std::printf("--- 3. The rho dial: security vs efficiency (Sec. 3.2) ---\n");
  // A spiky query distribution on a 1024 domain.
  constexpr uint64_t kDomain = 1024;
  std::vector<double> w(kDomain, 0.01);
  for (uint64_t i = 0; i < kDomain; i += 128) w[i] = 1.0;
  auto q = std::move(dist::Distribution::FromWeights(std::move(w))).value();

  std::printf("%10s %22s %24s\n", "period", "E[fakes per query]",
              "offset bits leaked");
  auto uniform = dist::MakeUniformPlan(q);
  std::printf("%10s %22.1f %24s\n", "n/a (U)",
              uniform->expected_fakes_per_real(), "0 of 10");
  for (uint64_t period : {2ULL, 8ULL, 32ULL, 128ULL, 512ULL, 1024ULL}) {
    auto plan = dist::MakePeriodicPlan(q, period);
    std::printf("%10llu %22.1f %21d of 10\n",
                static_cast<unsigned long long>(period),
                plan->expected_fakes_per_real(), FloorLog2(period));
  }
  std::printf(
      "(rho = 1 is QueryU; rho = M forwards everything and exposes Q.)\n");
}

}  // namespace

int main() {
  GapAttackDemo();
  WowDemo();
  TradeoffDemo();
  return 0;
}
